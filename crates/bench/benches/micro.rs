//! Microbenchmarks of the from-scratch substrates: erasure coding,
//! compression, the columnar format, the KV engine and checksums.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ec::{Redundancy, ReedSolomon, Stripe};
use format::{LakeFileReader, LakeFileWriter};
use kvstore::KvStore;
use workloads::packets::PacketGen;

fn bench_ec(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_ec");
    let data = vec![0xA5u8; 1024 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("rs_10_2_encode_1mib", |b| {
        b.iter(|| Stripe::encode(&data, Redundancy::ErasureCode { k: 10, m: 2 }).unwrap())
    });
    let rs = ReedSolomon::new(10, 2).unwrap();
    let shards: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 104_858]).collect();
    let encoded = rs.encode(&shards).unwrap();
    group.bench_function("rs_10_2_reconstruct_2_losses", |b| {
        b.iter(|| {
            let mut survivors: Vec<Option<Vec<u8>>> =
                encoded.iter().cloned().map(Some).collect();
            survivors[0] = None;
            survivors[11] = None;
            rs.reconstruct(&survivors).unwrap()
        })
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut gen = PacketGen::new(1, 0, 1000);
    let data: Vec<u8> = gen.batch(500).iter().flat_map(|p| p.to_wire()).collect();
    let mut group = c.benchmark_group("micro_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("lz_compress_packets", |b| {
        b.iter(|| format::compress::compress(&data))
    });
    let compressed = format::compress::compress(&data);
    group.bench_function("lz_decompress_packets", |b| {
        b.iter(|| format::compress::decompress(&compressed).unwrap())
    });
    group.finish();
}

fn bench_format(c: &mut Criterion) {
    let mut gen = PacketGen::new(2, 0, 1000);
    let rows: Vec<_> = gen.batch(2_000).iter().map(|p| p.to_row()).collect();
    let writer = LakeFileWriter::new(PacketGen::schema(), 1024).unwrap();
    let mut group = c.benchmark_group("micro_format");
    group.sample_size(20);
    group.bench_function("lakefile_encode_2k_rows", |b| {
        b.iter(|| writer.encode(&rows).unwrap())
    });
    let bytes = writer.encode(&rows).unwrap();
    group.bench_function("lakefile_full_scan_2k_rows", |b| {
        b.iter(|| {
            LakeFileReader::open(bytes.clone())
                .unwrap()
                .scan(&format::Expr::True, None)
                .unwrap()
        })
    });
    let pred = format::Expr::Pred(format::Predicate::cmp(
        "province",
        format::CmpOp::Eq,
        "beijing",
    ));
    group.bench_function("lakefile_filtered_scan_2k_rows", |b| {
        b.iter(|| {
            LakeFileReader::open(bytes.clone())
                .unwrap()
                .scan(&pred, Some(&[1]))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_kvstore");
    group.bench_function("put_get_1k_keys", |b| {
        b.iter(|| {
            let mut kv = KvStore::new();
            for i in 0..1000u32 {
                kv.put(i.to_be_bytes().to_vec(), vec![0u8; 64]);
            }
            (0..1000u32)
                .filter(|i| kv.get(&i.to_be_bytes()).is_some())
                .count()
        })
    });
    let mut kv = KvStore::new();
    for i in 0..10_000u32 {
        kv.put(i.to_be_bytes().to_vec(), vec![0u8; 32]);
    }
    group.bench_function("recover_10k_keys", |b| {
        b.iter(|| KvStore::recover(kv.wal_bytes().to_vec()).unwrap())
    });
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0x5Au8; 64 * 1024];
    let mut group = c.benchmark_group("micro_crc32");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("crc32_64k", |b| {
        b.iter(|| common::checksum::crc32(&data))
    });
    group.finish();
}

criterion_group!(benches, bench_ec, bench_compress, bench_format, bench_kv, bench_crc);
criterion_main!(benches);
