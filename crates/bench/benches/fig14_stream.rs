//! Criterion wrapper for Fig 14: the stream-storage paths.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_stream");
    group.sample_size(10);
    group.bench_function("produce_5k_msgs_no_scm", |b| {
        b.iter(|| bench::fig14::stream_load(200_000, 5_000, false))
    });
    group.bench_function("produce_5k_msgs_with_scm", |b| {
        b.iter(|| bench::fig14::stream_load(200_000, 5_000, true))
    });
    group.bench_function("rescale_100_to_1000_streams", |b| {
        b.iter(|| bench::fig14::elasticity(100, 1_000, 1_000))
    });
    group.bench_function("space_consumption_2k_packets", |b| {
        b.iter(|| bench::fig14::space_consumption(2_000))
    });
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
