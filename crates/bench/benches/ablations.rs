//! Ablations over the design choices DESIGN.md calls out: EC width,
//! metadata flush threshold, transport, and the cardinality estimator
//! behind the QD-tree.

use criterion::{criterion_group, criterion_main, Criterion};
use ec::{Redundancy, Stripe};
use lakebrain::cardinality::{CardinalityEstimator, ExactEstimator, SamplingEstimator};
use lakebrain::qdtree::{QdTree, QdTreeConfig};
use lakebrain::spn::Spn;
use workloads::queries::QueryGen;
use workloads::tpch::LineitemGen;

fn bench_ec_widths(c: &mut Criterion) {
    let data = vec![0x3Cu8; 512 * 1024];
    let mut group = c.benchmark_group("ablation_ec_width");
    for (k, m) in [(4usize, 2usize), (10, 2), (22, 2), (10, 4)] {
        group.bench_function(format!("encode_k{k}_m{m}"), |b| {
            b.iter(|| Stripe::encode(&data, Redundancy::ErasureCode { k, m }).unwrap())
        });
    }
    group.finish();
}

fn bench_meta_flush_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_meta_flush");
    group.sample_size(10);
    for threshold in [4u64, 64, 1024] {
        group.bench_function(format!("insert_100_commits_threshold_{threshold}"), |b| {
            b.iter(|| {
                let clock = common::SimClock::new();
                let pool = std::sync::Arc::new(simdisk::StoragePool::new(
                    "p",
                    simdisk::MediaKind::NvmeSsd,
                    4,
                    512 * 1024 * 1024,
                    clock,
                ));
                let plog = std::sync::Arc::new(
                    plog::PlogStore::new(
                        pool,
                        plog::PlogConfig {
                            shard_count: 16,
                            redundancy: Redundancy::Replicate { copies: 2 },
                            shard_capacity: 256 * 1024 * 1024,
                        },
                    )
                    .unwrap(),
                );
                let store = lake::TableStore::new(plog, threshold);
                store
                    .create_table("t", workloads::packets::PacketGen::schema(), None, 10_000, 0)
                    .unwrap();
                let mut gen = workloads::packets::PacketGen::new(1, 0, 1000);
                for _ in 0..100 {
                    let rows: Vec<_> = gen.batch(5).iter().map(|p| p.to_row()).collect();
                    store.insert("t", &rows, 0).unwrap();
                }
                store
            })
        });
    }
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let schema = LineitemGen::schema();
    let mut gen = LineitemGen::new(1);
    let rows = gen.generate_rows(6_000);
    let mut qg = QueryGen::new(2, schema.clone(), &rows);
    let workload = qg.workload(20, 2);
    let spn = Spn::learn(schema.clone(), &rows);
    let sampler = SamplingEstimator::new(schema.clone(), &rows, 33);

    let mut group = c.benchmark_group("ablation_estimators");
    group.sample_size(10);
    group.bench_function("qdtree_build_exact", |b| {
        b.iter(|| {
            let exact = ExactEstimator::new(&schema, &rows);
            QdTree::build(schema.clone(), &workload, &exact, QdTreeConfig::default())
        })
    });
    group.bench_function("qdtree_build_sampling", |b| {
        b.iter(|| QdTree::build(schema.clone(), &workload, &sampler, QdTreeConfig::default()))
    });
    group.bench_function("qdtree_build_spn", |b| {
        b.iter(|| QdTree::build(schema.clone(), &workload, &spn, QdTreeConfig::default()))
    });
    group.bench_function("estimate_only_spn", |b| {
        b.iter(|| workload.iter().map(|q| spn.estimate_rows(q)).sum::<f64>())
    });
    group.finish();
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_transport");
    group.sample_size(10);
    for (name, transport) in [
        ("rdma", simdisk::Transport::Rdma),
        ("tcp", simdisk::Transport::Tcp),
    ] {
        group.bench_function(format!("produce_2k_msgs_{name}"), |b| {
            b.iter(|| {
                let mut cfg = streamlake::StreamLakeConfig::small();
                cfg.transport = transport;
                let sl = streamlake::StreamLake::new(cfg);
                sl.stream()
                    .create_topic("t", stream::TopicConfig::with_streams(4))
                    .unwrap();
                let mut p = sl.producer();
                let mut last = 0u64;
                for i in 0..2_000u64 {
                    if let Some(ack) =
                        p.send("t", format!("k{i}"), vec![0u8; 512], i * 1_000).unwrap()
                    {
                        last = last.max(ack.ack_time);
                    }
                }
                last
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ec_widths,
    bench_meta_flush_threshold,
    bench_estimators,
    bench_transports
);
criterion_main!(benches);
