//! Criterion wrapper for Fig 15: metadata acceleration vs the file-based
//! catalog path.

use criterion::{criterion_group, criterion_main, Criterion};
use lake::{MetadataMode, ScanOptions};

fn bench_metadata(c: &mut Criterion) {
    let testbed = bench::fig15::build_testbed(48, 5);
    let predicate = format::Expr::all(vec![
        format::Predicate::cmp("start_time", format::CmpOp::Ge, bench::fig15::T0),
        format::Predicate::cmp("start_time", format::CmpOp::Lt, bench::fig15::T0 + 3600),
    ]);
    let mut group = c.benchmark_group("fig15_metadata");
    for (name, mode) in [
        ("accelerated", MetadataMode::Accelerated),
        ("file_based", MetadataMode::FileBased),
    ] {
        group.bench_function(format!("hour_query_{name}_48_partitions"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let opts = ScanOptions { predicate: predicate.clone(), mode, ..Default::default() };
                testbed
                    .sl
                    .tables()
                    .select("dpi_hours", &opts, i * common::clock::secs(100))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metadata);
criterion_main!(benches);
