//! Table 1: StreamLake vs. HDFS + Kafka on the end-to-end pipeline.
//!
//! Paper rows: storage usage (GB), message-stream throughput (msgs/s) and
//! batch processing time (s) at 10M, 50M, 100M, 500M and 1B packets. Here
//! the packet counts are scaled ~1000× down; the reported *ratios* are the
//! reproduction targets: storage HK/S ≈ 4.2–4.4, stream K/S ≈ 1.0, batch
//! H/S below 1 at the smallest workload and ≈ 1.2–1.55 beyond.

use baselines::{BaselinePipeline, MiniHdfs, MiniKafka};
use common::size::MIB;
use common::SimClock;
use simdisk::{MediaKind, StoragePool};
use std::sync::Arc;
use streamlake::{StreamLake, StreamLakeConfig, StreamLakePipeline};
use workloads::packets::PacketGen;

/// The Fig 13 query day.
pub const T0: i64 = 1_656_806_400;

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Packets in this workload.
    pub packets: usize,
    /// StreamLake physical storage bytes.
    pub storage_s: u64,
    /// HDFS+Kafka physical storage bytes.
    pub storage_hk: u64,
    /// StreamLake stream throughput (msgs per virtual second).
    pub stream_s: f64,
    /// Kafka stream throughput.
    pub stream_k: f64,
    /// StreamLake batch time (virtual ns).
    pub batch_s: u64,
    /// HDFS batch time (virtual ns).
    pub batch_h: u64,
}

impl Table1Row {
    /// Storage ratio HK/S.
    pub fn storage_ratio(&self) -> f64 {
        self.storage_hk as f64 / self.storage_s as f64
    }

    /// Stream ratio K/S.
    pub fn stream_ratio(&self) -> f64 {
        self.stream_k / self.stream_s
    }

    /// Batch ratio H/S.
    pub fn batch_ratio(&self) -> f64 {
        self.batch_h as f64 / self.batch_s as f64
    }
}

/// Run one workload size through both pipelines.
pub fn run_size(packets: usize, seed: u64) -> Table1Row {
    let mut gen = PacketGen::new(seed, T0, 1000);
    let batch = gen.batch(packets);
    let url = batch[0].url.clone();

    // --- baseline ---------------------------------------------------------
    let clock = SimClock::new();
    let per_device = (packets as u64 * 1300 * 16 / 6).max(256 * MIB);
    let hdfs_pool = Arc::new(StoragePool::new(
        "hdfs",
        MediaKind::SasHdd,
        6,
        per_device,
        clock.clone(),
    ));
    let kafka_pool = Arc::new(StoragePool::new(
        "kafka",
        MediaKind::NvmeSsd,
        6,
        per_device,
        clock,
    ));
    let baseline = BaselinePipeline::new(
        MiniHdfs::new(hdfs_pool, 16 * MIB, 3),
        // Kafka rolls (and replicates) at producer-batch granularity so
        // both systems offer the same per-batch durability.
        MiniKafka::new(kafka_pool, 3, 64 * 1024),
    );
    let b = baseline
        .run(&batch, &url, T0, T0 + 86_400, 0)
        .expect("baseline pipeline");

    // --- StreamLake --------------------------------------------------------
    let mut cfg = StreamLakeConfig::evaluation();
    cfg.ssd_capacity = (packets as u64 * 1300).max(256 * MIB);
    cfg.hdd_capacity = cfg.ssd_capacity * 4;
    let pipeline = StreamLakePipeline::new(StreamLake::new(cfg));
    let s = pipeline
        .run(&batch, &url, T0, T0 + 86_400, &common::ctx::IoCtx::new(0))
        .expect("streamlake pipeline");
    assert_eq!(b.query_rows, s.query_rows, "pipelines must agree on the answer");

    Table1Row {
        packets,
        storage_s: s.physical_bytes,
        storage_hk: b.total_bytes(),
        stream_s: s.stream_msgs_per_sec,
        stream_k: b.stream_msgs_per_sec,
        batch_s: s.batch_time,
        batch_h: b.batch_time,
    }
}

/// Run the full sweep (paper sizes scaled ~1000×).
pub fn run(sizes: &[usize]) -> Vec<Table1Row> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| run_size(n, 42 + i as u64))
        .collect()
}

/// Default scaled workload sizes.
pub fn default_sizes() -> Vec<usize> {
    vec![10_000, 25_000, 50_000, 75_000, 100_000]
}

/// Print the table in the paper's layout.
pub fn print(rows: &[Table1Row]) {
    println!("Table 1: StreamLake (S) vs HDFS (H) + Kafka (K), scaled ~1000x");
    print!("{:<26}", "#-Data Packet");
    for r in rows {
        print!("{:>14}", r.packets);
    }
    println!();
    let mib = |b: u64| format!("{:.0} MiB", b as f64 / MIB as f64);
    print!("{:<26}", "Storage (MiB)  StreamLake");
    for r in rows {
        print!("{:>14}", mib(r.storage_s));
    }
    println!();
    print!("{:<26}", "               HDFS+Kafka");
    for r in rows {
        print!("{:>14}", mib(r.storage_hk));
    }
    println!();
    print!("{:<26}", "               Ratio HK/S");
    for r in rows {
        print!("{:>14.2}", r.storage_ratio());
    }
    println!();
    print!("{:<26}", "Stream (msg/s) StreamLake");
    for r in rows {
        print!("{:>14.0}", r.stream_s);
    }
    println!();
    print!("{:<26}", "               Kafka");
    for r in rows {
        print!("{:>14.0}", r.stream_k);
    }
    println!();
    print!("{:<26}", "               Ratio K/S");
    for r in rows {
        print!("{:>14.2}", r.stream_ratio());
    }
    println!();
    print!("{:<26}", "Batch (s)      StreamLake");
    for r in rows {
        print!("{:>14.2}", r.batch_s as f64 / 1e9);
    }
    println!();
    print!("{:<26}", "               HDFS");
    for r in rows {
        print!("{:>14.2}", r.batch_h as f64 / 1e9);
    }
    println!();
    print!("{:<26}", "               Ratio H/S");
    for r in rows {
        print!("{:>14.2}", r.batch_ratio());
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_at_small_scale() {
        let rows = run(&[4_000, 12_000]);
        for r in &rows {
            assert!(
                r.storage_ratio() > 3.0 && r.storage_ratio() < 6.5,
                "storage ratio {} out of the paper band",
                r.storage_ratio()
            );
            assert!(
                r.stream_ratio() > 0.7 && r.stream_ratio() < 1.4,
                "stream throughput must be competitive, ratio {}",
                r.stream_ratio()
            );
        }
        // batch: StreamLake loses at the smallest size (fixed commit
        // overhead), gains as the workload grows
        assert!(
            rows[1].batch_ratio() > rows[0].batch_ratio(),
            "H/S must grow with workload: {} then {}",
            rows[0].batch_ratio(),
            rows[1].batch_ratio()
        );
    }
}
