//! The experiment harness: one module per table/figure of the paper's §VII.
//!
//! Each module exposes a `run…` function returning structured rows and a
//! `print…` helper producing the paper-style table. The `repro_*` binaries
//! call these at full (laptop) scale to regenerate every number recorded in
//! `EXPERIMENTS.md`; the criterion benches call them at reduced scale.
//!
//! Scale note: the paper's workloads (10M–1B packets, 100 TB–1 PB message
//! volumes, TPC-H SF 2–100) are scaled down ~1000× so every experiment
//! runs in minutes on one core. All comparisons are *relative* — both
//! systems always run on identical simulated hardware — so the shapes
//! (who wins, by what factor, where crossovers fall) carry over.

pub mod chores;
pub mod fig1;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod table1;
