//! Fig 14: the message streaming service in isolation.
//!
//! (a) produce latency vs offered rate, with (Set-2) and without (Set-1)
//!     the SCM cache; (b) achieved throughput vs offered rate; (c) rescale
//!     1000 → 10000 partitions; (d) space multiplier per redundancy
//!     strategy at fault tolerance 1–3.

use common::clock::{micros, Nanos};
use common::ctx::{IoCtx, QosClass};
use common::metrics::HistogramSummary;
use common::size::{GIB, MIB};
use ec::{Redundancy, Stripe};
use format::{LakeFileWriter, Value};
use streamlake::{StreamLake, StreamLakeConfig};
use workloads::openmessaging::{LatencyRecorder, LoadSpec};
use workloads::packets::PacketGen;

/// One point of Fig 14(a)/(b).
#[derive(Debug, Clone, Copy)]
pub struct StreamPoint {
    /// Offered rate (msgs per virtual second).
    pub offered_rate: u64,
    /// Mean produce latency (virtual ns).
    pub mean_latency: Nanos,
    /// p99 produce latency.
    pub p99_latency: Nanos,
    /// Achieved throughput (msgs per virtual second).
    pub achieved_rate: f64,
}

/// Drive an OpenMessaging-style constant-rate load against one deployment.
///
/// `scm` selects Set-2 (16 GiB persistent memory as a staging cache).
pub fn stream_load(offered_rate: u64, messages: u64, scm: bool) -> StreamPoint {
    let mut cfg = StreamLakeConfig::evaluation();
    cfg.scm_capacity = if scm { 64 * MIB } else { 0 };
    cfg.ssd_capacity = 2 * GIB;
    let sl = StreamLake::new(cfg);
    let mut topic_cfg = stream::TopicConfig::with_streams(8);
    topic_cfg.scm_cache = scm;
    topic_cfg.quota = u64::MAX / 2; // unthrottled: we measure the substrate
    sl.stream().create_topic("bench", topic_cfg).unwrap();

    let spec = LoadSpec::new(offered_rate, messages);
    let mut latency = LatencyRecorder::new();
    let mut producer = sl.producer();
    // OpenMessaging-style 1 ms linger: the batch grows with the offered
    // rate so the queueing-in-batch delay stays ~constant and the measured
    // latency reflects the storage path, not the linger budget.
    let batch = ((offered_rate / 4000).max(1) as usize).min(1024);
    producer.set_batch_size(batch);
    let payload = vec![0x5Au8; spec.message_bytes];
    let mut last_ack: Nanos = 0;
    let mut batch_arrivals: Vec<Nanos> = Vec::with_capacity(batch);
    for i in 0..spec.total_messages {
        let at = spec.arrival(i);
        batch_arrivals.push(at);
        if let Some(ack) = producer
            .send("bench", format!("k{}", i % 1024), payload.clone(), &IoCtx::new(at))
            .unwrap()
        {
            // per-message latency: from each message's arrival to the ack
            for &arr in &batch_arrivals {
                latency.record(ack.ack_time.saturating_sub(arr));
            }
            batch_arrivals.clear();
            last_ack = last_ack.max(ack.ack_time);
        }
    }
    for ack in producer.flush(&IoCtx::new(spec.duration())).unwrap() {
        for &arr in &batch_arrivals {
            latency.record(ack.ack_time.saturating_sub(arr));
        }
        batch_arrivals.clear();
        last_ack = last_ack.max(ack.ack_time);
    }
    let elapsed = last_ack.max(spec.duration()) as f64 / 1e9;
    StreamPoint {
        offered_rate,
        mean_latency: latency.mean().unwrap_or(0.0) as Nanos,
        p99_latency: latency.percentile(0.99).unwrap_or(0),
        achieved_rate: spec.total_messages as f64 / elapsed.max(1e-9),
    }
}

/// Fig 14(a)+(b): sweep offered rates for Set-1 (no SCM) and Set-2 (SCM).
pub fn latency_throughput_sweep(
    rates: &[u64],
    messages: u64,
) -> (Vec<StreamPoint>, Vec<StreamPoint>) {
    let set1 = rates.iter().map(|&r| stream_load(r, messages, false)).collect();
    let set2 = rates.iter().map(|&r| stream_load(r, messages, true)).collect();
    (set1, set2)
}

/// Fig 14(c): the elasticity numbers.
#[derive(Debug, Clone, Copy)]
pub struct ElasticityReport {
    /// Streams before/after.
    pub from: u32,
    /// Target stream count.
    pub to: u32,
    /// Virtual time the rescale took.
    pub elapsed: Nanos,
    /// Bytes migrated (StreamLake: always 0).
    pub bytes_migrated: u64,
    /// Bytes a Kafka reassignment of the same topic would move.
    pub kafka_bytes_migrated: u64,
    /// Virtual time the Kafka reassignment took.
    pub kafka_elapsed: Nanos,
}

/// Rescale a loaded topic 1000 → 10000 partitions on StreamLake, and the
/// same reassignment on mini-Kafka for contrast.
pub fn elasticity(from: u32, to: u32, preload_msgs: usize) -> ElasticityReport {
    let mut cfg = StreamLakeConfig::evaluation();
    cfg.ssd_capacity = 2 * GIB;
    let sl = StreamLake::new(cfg);
    sl.stream()
        .create_topic("big", stream::TopicConfig::with_streams(from))
        .unwrap();
    let mut p = sl.producer();
    for i in 0..preload_msgs {
        p.send("big", format!("k{i}"), vec![0u8; 512], &IoCtx::new(0)).unwrap();
    }
    p.flush(&IoCtx::new(0)).unwrap();
    let report = sl.stream().scale_topic("big", to, &IoCtx::new(0)).unwrap();

    // Kafka for contrast: same preload, scale partitions
    let clock = common::SimClock::new();
    let pool = std::sync::Arc::new(simdisk::StoragePool::new(
        "kafka",
        simdisk::MediaKind::NvmeSsd,
        6,
        2 * GIB,
        clock,
    ));
    let kafka = baselines::MiniKafka::new(pool, 3, MIB);
    kafka.create_topic("big", from as usize).unwrap();
    for i in 0..preload_msgs {
        kafka
            .produce(
                "big",
                baselines::kafka::KafkaMessage {
                    key: format!("k{i}").into_bytes(),
                    value: vec![0u8; 512],
                },
                0,
            )
            .unwrap();
    }
    kafka.flush(0).unwrap();
    let (kafka_bytes, kafka_elapsed) = kafka.scale_partitions("big", to as usize, 0).unwrap();

    ElasticityReport {
        from,
        to,
        elapsed: report.elapsed,
        bytes_migrated: report.bytes_migrated,
        kafka_bytes_migrated: kafka_bytes,
        kafka_elapsed,
    }
}

/// One bar of Fig 14(d).
#[derive(Debug, Clone, Copy)]
pub struct SpacePoint {
    /// Fault tolerance (node failures survivable).
    pub fault_tolerance: usize,
    /// Replication multiplier (stored/logical).
    pub replication: f64,
    /// Erasure-coding multiplier.
    pub ec: f64,
    /// EC after columnar re-encoding.
    pub ec_colstore: f64,
}

/// Fig 14(d): measured space multipliers on real packet data.
pub fn space_consumption(packets: usize) -> Vec<SpacePoint> {
    let mut gen = PacketGen::new(77, 0, 1000);
    let batch = gen.batch(packets);
    let row_bytes: Vec<u8> = batch
        .iter()
        .flat_map(|p| {
            let mut w = p.to_wire();
            w.push(b'\n');
            w
        })
        .collect();
    let logical = row_bytes.len() as f64;
    // columnar re-encode through the lake file format
    let rows: Vec<Vec<Value>> = batch.iter().map(|p| p.to_row()).collect();
    let writer = LakeFileWriter::new(PacketGen::schema(), 4096).unwrap();
    let col_bytes = writer.encode(&rows).unwrap();

    (1..=3)
        .map(|ft| {
            let rep = Redundancy::replication_for_ft(ft);
            let ec = Redundancy::ec_for_ft(10, ft);
            let stored = |data: &[u8], red: Redundancy| {
                Stripe::encode(data, red).unwrap().stored_bytes() as f64
            };
            SpacePoint {
                fault_tolerance: ft,
                replication: stored(&row_bytes, rep) / logical,
                ec: stored(&row_bytes, ec) / logical,
                ec_colstore: stored(&col_bytes, ec) / logical,
            }
        })
        .collect()
}

/// Print Fig 14 in a paper-like layout.
pub fn print(set1: &[StreamPoint], set2: &[StreamPoint], el: &ElasticityReport, space: &[SpacePoint]) {
    println!("Fig 14(a)/(b): produce latency and throughput vs offered rate");
    println!(
        "{:>12} | {:>14} {:>14} | {:>14} {:>14}",
        "rate (msg/s)", "Set-1 mean", "Set-2 mean", "Set-1 achv", "Set-2 achv"
    );
    for (a, b) in set1.iter().zip(set2) {
        println!(
            "{:>12} | {:>11.1} us {:>11.1} us | {:>14.0} {:>14.0}",
            a.offered_rate,
            a.mean_latency as f64 / 1e3,
            b.mean_latency as f64 / 1e3,
            a.achieved_rate,
            b.achieved_rate
        );
    }
    println!("\nFig 14(c): rescale {} -> {} streams", el.from, el.to);
    println!(
        "  StreamLake: {:.3} s, {} bytes migrated",
        el.elapsed as f64 / 1e9,
        el.bytes_migrated
    );
    println!(
        "  Kafka     : {:.3} s, {} bytes migrated",
        el.kafka_elapsed as f64 / 1e9,
        el.kafka_bytes_migrated
    );
    println!("\nFig 14(d): space multiplier vs fault tolerance");
    println!("{:>4} {:>14} {:>10} {:>14}", "FT", "Replication", "EC", "EC+Col-store");
    for s in space {
        println!(
            "{:>4} {:>13.2}x {:>9.2}x {:>13.2}x",
            s.fault_tolerance, s.replication, s.ec, s.ec_colstore
        );
    }
}

/// Span phases every request in the produce path must touch; the smoke
/// gate fails when any of them records zero samples.
pub const REQUIRED_PHASES: [&str; 4] = ["queue", "device", "wan", "meta"];

/// A tiny Fig 14-style run with full latency attribution: a constant-rate
/// produce load (queue/device/wan spans) followed by a Fig 14(c)-style
/// metadata-only rescale (meta spans), all under contexts minted from the
/// deployment's span sink. Returns the per-phase histogram view.
pub fn phase_breakdown(messages: u64) -> Vec<(String, HistogramSummary)> {
    let sl = StreamLake::new(StreamLakeConfig::small());
    sl.stream()
        .create_topic("bench", stream::TopicConfig::with_streams(4))
        .unwrap();
    let root = sl.root_ctx(QosClass::Foreground);
    let mut producer = sl.producer();
    producer.set_batch_size(8);
    let payload = vec![0x5Au8; 512];
    for i in 0..messages {
        let at = i * micros(100);
        producer
            .send("bench", format!("k{}", i % 64), payload.clone(), &root.at(at))
            .unwrap();
    }
    let t_end = messages * micros(100);
    producer.flush(&root.at(t_end)).unwrap();
    sl.stream().scale_topic("bench", 8, &root.at(t_end)).unwrap();
    sl.span_sink().phase_view()
}

/// Names from [`REQUIRED_PHASES`] absent from `view` (zero samples).
pub fn missing_phases(view: &[(String, HistogramSummary)]) -> Vec<&'static str> {
    REQUIRED_PHASES
        .iter()
        .filter(|p| !view.iter().any(|(name, s)| name == *p && s.count > 0))
        .copied()
        .collect()
}

/// Print the per-phase latency breakdown table.
pub fn print_phase_breakdown(view: &[(String, HistogramSummary)]) {
    println!("\nFig 14 per-phase latency attribution (virtual us per span)");
    println!(
        "{:>8} | {:>8} {:>10} {:>10} {:>10} {:>10}",
        "phase", "samples", "mean", "p50", "p99", "max"
    );
    for (name, s) in view {
        println!(
            "{:>8} | {:>8} {:>9.1}u {:>9.1}u {:>9.1}u {:>9.1}u",
            name,
            s.count,
            s.mean / 1e3,
            s.p50 as f64 / 1e3,
            s.p99 as f64 / 1e3,
            s.max as f64 / 1e3
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_breakdown_attributes_every_phase_deterministically() {
        let view = phase_breakdown(200);
        assert!(missing_phases(&view).is_empty(), "view: {view:?}");
        // bit-for-bit reproducible: a second identical run matches
        let again = phase_breakdown(200);
        assert_eq!(view, again);
    }

    #[test]
    fn scm_lowers_latency_at_low_rate_not_throughput_at_high() {
        // Fig 14(a): persistent memory reduces latency at modest rates;
        // Fig 14(b): it does not raise peak throughput.
        let low1 = stream_load(50_000, 4_000, false);
        let low2 = stream_load(50_000, 4_000, true);
        assert!(
            low2.mean_latency < low1.mean_latency,
            "set-2 {} must beat set-1 {} at low rate",
            low2.mean_latency,
            low1.mean_latency
        );
        let high1 = stream_load(1_500_000, 20_000, false);
        let high2 = stream_load(1_500_000, 20_000, true);
        let ratio = high2.achieved_rate / high1.achieved_rate;
        assert!(
            (0.8..1.25).contains(&ratio),
            "scm must not change peak throughput materially: {ratio}"
        );
    }

    #[test]
    fn throughput_scales_with_offered_rate_until_saturation() {
        let a = stream_load(100_000, 5_000, false);
        let b = stream_load(400_000, 20_000, false);
        assert!(
            b.achieved_rate > 2.5 * a.achieved_rate,
            "linear region: {} then {}",
            a.achieved_rate,
            b.achieved_rate
        );
    }

    #[test]
    fn rescale_is_fast_and_migration_free() {
        // scaled-down Fig 14(c): 100 -> 1000 partitions
        let el = elasticity(100, 1000, 2_000);
        assert_eq!(el.bytes_migrated, 0);
        assert!(
            el.elapsed < common::clock::secs(10),
            "rescale took {} ns",
            el.elapsed
        );
        assert!(el.kafka_bytes_migrated > 0, "kafka must move data");
    }

    #[test]
    fn space_multipliers_match_figure_shape() {
        let space = space_consumption(2_000);
        for s in &space {
            // replication stores FT+1 copies; EC stays near (10+m)/10
            assert!((s.replication - (s.fault_tolerance + 1) as f64).abs() < 0.01);
            assert!(s.ec < s.replication);
            assert!(s.ec_colstore < s.ec, "columnar re-encode must shrink further");
        }
        // paper: EC/EC+Col-store save 3-5x at FT=3
        let ft3 = &space[2];
        assert!(ft3.replication / ft3.ec_colstore > 3.0);
    }
}
