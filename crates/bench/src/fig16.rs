//! Fig 16: LakeBrain.
//!
//! (a) auto-compaction vs the static 30-second policy: query-performance
//!     improvement over a no-compaction baseline, across data volumes, plus
//!     the block-utilization comparison;
//! (b) bytes skipped on `lineitem` under Full / Day / Ours partitioning
//!     across scale factors;
//! (c) query runtime under the three partitionings (scanned bytes over the
//!     substrate's bandwidth plus per-file overheads).

use common::clock::Nanos;
use lakebrain::cardinality::CardinalityEstimator;
use lakebrain::compaction::{
    evaluate_policy, train_compaction_agent, CompactionPolicy, DqnPolicy, IntervalPolicy,
};
use lakebrain::env::EnvConfig;
use lakebrain::partitioning::{
    bucket_assigner, evaluate_layout, full_assigner, qdtree_assigner, LayoutReport,
};
use lakebrain::qdtree::{QdTree, QdTreeConfig};
use lakebrain::spn::Spn;
use workloads::queries::QueryGen;
use workloads::tpch::LineitemGen;

/// One point of Fig 16(a).
#[derive(Debug, Clone, Copy)]
pub struct CompactionPoint {
    /// Data-volume label (mean small files ingested per step — the scaled
    /// stand-in for the paper's 24–90 GB).
    pub ingest_files: f64,
    /// Query-perf improvement of auto-compaction over no compaction (%).
    pub auto_improvement: f64,
    /// Query-perf improvement of the 30 s static policy (%).
    pub default_improvement: f64,
    /// Mean block utilization under auto-compaction.
    pub auto_utilization: f64,
    /// Mean block utilization under the static policy.
    pub default_utilization: f64,
}

/// Fig 16(a): sweep data volumes.
pub fn compaction_sweep(volumes: &[f64], train_episodes: usize, eval_steps: usize) -> Vec<CompactionPoint> {
    struct Never;
    impl CompactionPolicy for Never {
        fn decide(&mut self, _: &[f64], _: Nanos) -> bool {
            false
        }
        fn name(&self) -> &'static str {
            "never"
        }
    }
    volumes
        .iter()
        .map(|&v| {
            let cfg = EnvConfig { partitions: 6, base_ingest_files: v, ..Default::default() };
            let agent = train_compaction_agent(cfg, train_episodes, 120, 42);
            let mut auto = DqnPolicy::new(agent);
            let mut default = IntervalPolicy::every_30s();
            // average over evaluation seeds
            let seeds = [7u64, 8, 9, 10];
            let mut cost = [0.0f64; 3];
            let mut util = [0.0f64; 2];
            for &s in &seeds {
                let (c, u, _) = evaluate_policy(&mut auto, cfg, eval_steps, s);
                cost[0] += c;
                util[0] += u;
                let (c, u, _) = evaluate_policy(&mut default, cfg, eval_steps, s);
                cost[1] += c;
                util[1] += u;
                let (c, _, _) = evaluate_policy(&mut Never, cfg, eval_steps, s);
                cost[2] += c;
            }
            CompactionPoint {
                ingest_files: v,
                auto_improvement: (1.0 - cost[0] / cost[2]) * 100.0,
                default_improvement: (1.0 - cost[1] / cost[2]) * 100.0,
                auto_utilization: util[0] / seeds.len() as f64,
                default_utilization: util[1] / seeds.len() as f64,
            }
        })
        .collect()
}

/// One row of Fig 16(b)/(c).
#[derive(Debug, Clone, Copy)]
pub struct PartitionPoint {
    /// Scale factor (scaled-down TPC-H).
    pub scale_factor: f64,
    /// Layout report for Full.
    pub full: LayoutReport,
    /// Layout report for Day.
    pub day: LayoutReport,
    /// Layout report for Ours (QD-tree + SPN).
    pub ours: LayoutReport,
}

impl PartitionPoint {
    /// Estimated query runtime under a layout (virtual seconds).
    ///
    /// Three terms: streaming the scanned bytes at NVMe bandwidth; a
    /// per-file access cost amortized by parallel I/O (the scan engine
    /// keeps ~32 reads in flight, so the 80 us device access amortizes to
    /// ~4 us per file less the layout fragments); and a per-row
    /// decode + filter cost on the rows that could not be skipped.
    pub fn runtime(report: &LayoutReport) -> f64 {
        let bandwidth = 2.0 * 1024.0 * 1024.0 * 1024.0;
        let per_file = 4e-6;
        let per_row = 1e-7;
        report.scanned_bytes as f64 / bandwidth
            + report.scanned_files as f64 * per_file
            + report.scanned_rows as f64 * per_row
    }
}

/// Fig 16(b)/(c): train the SPN on a 3% sample of the smallest SF, build
/// the QD-tree once from the workload, evaluate across scale factors.
pub fn partition_sweep(scale_factors: &[f64]) -> Vec<PartitionPoint> {
    let schema = LineitemGen::schema();
    // train once on a fixed SF-1 training set, as the paper trains on SF 2
    // and evaluates on SF 2..100
    let mut train_gen = LineitemGen::new(1);
    let train_rows = train_gen.generate_sf(1.0);
    let sample: Vec<_> = train_rows.iter().step_by(10).cloned().collect();
    let spn = Spn::learn(schema.clone(), &sample).with_total_rows(train_rows.len() as f64);

    let mut qg = QueryGen::new(2, schema.clone(), &train_rows);
    let mut workload: Vec<format::Expr> =
        (0..15).map(|_| qg.range_query("l_shipdate", 90)).collect();
    workload.extend(qg.workload(30, 2));

    let tree = QdTree::build(
        schema.clone(),
        &workload,
        &spn,
        QdTreeConfig { min_leaf_rows: train_rows.len() as f64 / 64.0, max_depth: 10 },
    );

    scale_factors
        .iter()
        .map(|&sf| {
            let mut gen = LineitemGen::new(100 + (sf * 10.0) as u64);
            let rows = gen.generate_sf(sf);
            let full = evaluate_layout(&schema, &rows, &full_assigner(), &workload, 2048).unwrap();
            let day_assign = bucket_assigner(&schema, "l_shipdate", 30).unwrap();
            let day = evaluate_layout(&schema, &rows, &day_assign, &workload, 2048).unwrap();
            let qd_assign = qdtree_assigner(&tree);
            let ours = evaluate_layout(&schema, &rows, &qd_assign, &workload, 2048).unwrap();
            PartitionPoint { scale_factor: sf, full, day, ours }
        })
        .collect()
}

/// The SPN-accuracy ablation behind §VI-B's estimator argument: mean
/// absolute selectivity error of SPN vs uniform sampling at equal budget.
pub fn estimator_ablation(rows_n: usize, queries: usize) -> (f64, f64) {
    let schema = LineitemGen::schema();
    let mut gen = LineitemGen::new(3);
    let rows = gen.generate_rows(rows_n);
    let sample: Vec<_> = rows.iter().step_by(33).cloned().collect();
    let spn = Spn::learn(schema.clone(), &sample).with_total_rows(rows.len() as f64);
    let sampler =
        lakebrain::cardinality::SamplingEstimator::new(schema.clone(), &rows, 33);
    let exact = lakebrain::cardinality::ExactEstimator::new(&schema, &rows);
    let mut qg = QueryGen::new(5, schema.clone(), &rows);
    // selective conjunctions (3-4 predicates) are where tiny samples break
    // down — the regime the paper's estimator argument is about
    let workload = qg.workload(queries, 4);
    let mut err_spn = 0.0;
    let mut err_sample = 0.0;
    for q in &workload {
        let truth = exact.selectivity(q);
        err_spn += (spn.selectivity(q) - truth).abs();
        err_sample += (sampler.selectivity(q) - truth).abs();
    }
    (err_spn / queries as f64, err_sample / queries as f64)
}

/// Print Fig 16.
pub fn print(compaction: &[CompactionPoint], partitions: &[PartitionPoint]) {
    println!("Fig 16(a): query-perf improvement over no compaction (%)");
    println!(
        "{:>14} | {:>18} {:>18} | {:>12} {:>12}",
        "ingest (f/st)", "auto-compaction", "default (30s)", "util auto", "util default"
    );
    for c in compaction {
        println!(
            "{:>14.1} | {:>17.1}% {:>17.1}% | {:>12.3} {:>12.3}",
            c.ingest_files,
            c.auto_improvement,
            c.default_improvement,
            c.auto_utilization,
            c.default_utilization
        );
    }
    println!("\nFig 16(b): bytes skipped for lineitem (%)");
    println!(
        "{:>5} | {:>8} {:>8} {:>8}",
        "SF", "Full", "Day", "Ours"
    );
    for p in partitions {
        println!(
            "{:>5} | {:>7.1}% {:>7.1}% {:>7.1}%",
            p.scale_factor,
            p.full.skip_fraction() * 100.0,
            p.day.skip_fraction() * 100.0,
            p.ours.skip_fraction() * 100.0
        );
    }
    println!("\nFig 16(c): workload runtime (virtual s)");
    println!("{:>5} | {:>9} {:>9} {:>9}", "SF", "Full", "Day", "Ours");
    for p in partitions {
        println!(
            "{:>5} | {:>9.4} {:>9.4} {:>9.4}",
            p.scale_factor,
            PartitionPoint::runtime(&p.full),
            PartitionPoint::runtime(&p.day),
            PartitionPoint::runtime(&p.ours)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_shape_ours_beats_day_beats_full() {
        let points = partition_sweep(&[1.0, 2.0]);
        for p in &points {
            assert!(p.ours.skip_fraction() > p.day.skip_fraction(), "sf {}", p.scale_factor);
            assert!(p.day.skip_fraction() > p.full.skip_fraction());
            // runtime ordering follows
            assert!(
                PartitionPoint::runtime(&p.ours) < PartitionPoint::runtime(&p.full),
                "sf {}",
                p.scale_factor
            );
        }
        // the advantage persists (paper: "particularly evident" at scale)
        let last = points.last().unwrap();
        assert!(last.ours.skip_fraction() - last.day.skip_fraction() > 0.02);
    }

    #[test]
    fn spn_is_more_accurate_than_equal_budget_sampling() {
        let (spn_err, sample_err) = estimator_ablation(4000, 40);
        // both should be decent; SPN must not be wildly worse, and typically
        // wins on selective predicates. The 2x slack absorbs sensitivity to
        // the exact training-data stream of the seeded generator.
        assert!(spn_err < 0.2, "spn err {spn_err}");
        assert!(
            spn_err < sample_err * 2.0,
            "spn {spn_err} vs sampling {sample_err}"
        );
    }
}
