//! Shared fixtures for the maintenance-runtime gates: a seeded deployment
//! with work queued for every chore, and the foreground-interference probe
//! used by both `chore_soak` and the `perf_baseline` trajectory row.

use common::clock::{millis, secs, Nanos};
use common::ctx::IoCtx;
use streamlake::{StreamLake, StreamLakeConfig};
use workloads::packets::PacketGen;

/// Packet-generator epoch shared by the maintenance gates.
pub const T0: i64 = 1_656_806_400;

/// One deterministic workload: a topic with produced records, a table with
/// small files, and staged tiering extents — something for every chore.
pub fn seeded_deployment() -> StreamLake {
    let sl = StreamLake::new(StreamLakeConfig::small());
    sl.stream()
        .create_topic("dpi", stream::TopicConfig::with_streams(2))
        .expect("fresh deployment accepts the topic");
    let mut gen = PacketGen::new(1, T0, 500);
    let mut producer = sl.producer();
    producer.set_batch_size(8);
    for p in gen.batch(64) {
        producer.send("dpi", p.key(), p.to_wire(), &IoCtx::new(0)).expect("append");
    }
    producer.flush(&IoCtx::new(0)).expect("flush");
    sl.tables()
        .create_table("t", PacketGen::schema(), None, 100_000, &IoCtx::new(0))
        .expect("fresh deployment accepts the table");
    for i in 0..6 {
        let rows: Vec<_> = gen.batch(20).iter().map(|p| p.to_row()).collect();
        sl.tables().insert("t", &rows, &IoCtx::new(secs(i))).expect("insert");
    }
    for key in 0..4u64 {
        sl.tiering()
            .write(key, &[common::Bytes::from_vec(vec![key as u8; 2048])])
            .expect("stage tiering extent");
    }
    sl
}

/// Foreground append p99 (virtual ack latency) for `n` single-record sends
/// against a fresh seeded deployment, optionally driving every maintenance
/// chore between sends. Deterministic: the figure is a pure function of the
/// workload and the chore schedule, so the active/quiesced ratio isolates
/// maintenance interference with no host noise.
pub fn append_p99(with_chores: bool, n: usize) -> Nanos {
    let sl = seeded_deployment();
    let mut producer = sl.producer();
    producer.set_batch_size(1);
    let mut gen = PacketGen::new(9, T0, 500);
    let mut lats = Vec::new();
    for (i, p) in gen.batch(n).iter().enumerate() {
        let t = secs(120) + (i as u64) * millis(50);
        if with_chores {
            sl.run_maintenance_until(t);
        }
        let ack = producer
            .send("dpi", p.key(), p.to_wire(), &IoCtx::new(t))
            .expect("append")
            .expect("batch size 1 acks immediately");
        lats.push(ack.ack_time - t);
    }
    lats.sort_unstable();
    lats[((lats.len() * 99).div_ceil(100)).min(lats.len()) - 1]
}
