//! Fig 15: metadata acceleration in the lakehouse.
//!
//! (a) metadata-operation time vs number of files/partitions, with and
//!     without the KV write-cache acceleration — the file-based path grows
//!     linearly, the accelerated path stays nearly flat;
//! (b) query time vs compute-side memory — without acceleration the engine
//!     must materialize *all* file metadata and OOMs below the footprint;
//!     with acceleration it pulls only the touched partitions.

use common::clock::Nanos;
use common::ctx::IoCtx;
use common::size::GIB;
use lake::metacache::PER_FILE_META_BYTES;
use lake::{MetadataMode, MetadataCache, ScanOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamlake::{StreamLake, StreamLakeConfig};
use workloads::packets::PacketGen;

/// The query-day base timestamp.
pub const T0: i64 = 1_656_806_400;

/// A loaded deployment for the metadata experiments.
pub struct MetaTestbed {
    /// The deployment.
    pub sl: StreamLake,
    /// Hour partitions in the table.
    pub partitions: usize,
    /// Live data files.
    pub files: usize,
}

/// Build an hour-partitioned table with `partitions` hours ×
/// `files_per_partition` files (the production layout of §VII-D).
pub fn build_testbed(partitions: usize, files_per_partition: usize) -> MetaTestbed {
    let mut cfg = StreamLakeConfig::evaluation();
    cfg.ssd_capacity = 2 * GIB;
    cfg.meta_flush_threshold = 10_000; // flush explicitly at the end
    let sl = StreamLake::new(cfg);
    sl.tables()
        .create_table(
            "dpi_hours",
            PacketGen::schema(),
            Some(lake::catalog::PartitionSpec::hourly("start_time")),
            100_000,
            &IoCtx::new(0),
        )
        .unwrap();
    for h in 0..partitions {
        let mut gen = PacketGen::new(h as u64, T0 + h as i64 * 3600, 1000);
        for _ in 0..files_per_partition {
            let rows: Vec<_> = gen.batch(8).iter().map(|p| p.to_row()).collect();
            sl.tables().insert("dpi_hours", &rows, &IoCtx::new(0)).unwrap();
        }
    }
    sl.sync(&sl.root_ctx(common::ctx::QosClass::Foreground)).unwrap(); // persist metadata so the file-based path works
    let files = sl.tables().live_files("dpi_hours", &IoCtx::new(0)).unwrap().len();
    MetaTestbed { sl, partitions, files }
}

/// One point of Fig 15(a).
#[derive(Debug, Clone, Copy)]
pub struct MetaOpPoint {
    /// Hour partitions in the table.
    pub partitions: usize,
    /// Live files.
    pub files: usize,
    /// Mean metadata time per query, accelerated path (virtual ns).
    pub accelerated: Nanos,
    /// Mean metadata time per query, file-based path.
    pub file_based: Nanos,
}

/// Run `queries` hour-window DAU-style queries against both metadata paths.
pub fn metadata_op_times(testbed: &MetaTestbed, queries: usize) -> MetaOpPoint {
    let mut rng = StdRng::seed_from_u64(9);
    let mut total = [0u64; 2];
    for q in 0..queries {
        let hour = rng.gen_range(0..testbed.partitions) as i64;
        let predicate = format::Expr::all(vec![
            format::Predicate::cmp("start_time", format::CmpOp::Ge, T0 + hour * 3600),
            format::Predicate::cmp("start_time", format::CmpOp::Lt, T0 + (hour + 1) * 3600),
        ]);
        // quiet, far-apart instants so device queues never interfere
        let quiet = common::clock::secs(10_000 + 100 * q as u64);
        for (i, mode) in [MetadataMode::Accelerated, MetadataMode::FileBased]
            .into_iter()
            .enumerate()
        {
            let opts = ScanOptions { predicate: predicate.clone(), mode, ..Default::default() };
            let r = testbed
                .sl
                .tables()
                .select("dpi_hours", &opts, &IoCtx::new(quiet + i as u64 * common::clock::secs(50)))
                .unwrap();
            total[i] += r.stats.metadata_time;
        }
    }
    MetaOpPoint {
        partitions: testbed.partitions,
        files: testbed.files,
        accelerated: total[0] / queries as u64,
        file_based: total[1] / queries as u64,
    }
}

/// Fig 15(a): sweep partition counts.
pub fn partition_sweep(partition_counts: &[usize], files_per_partition: usize, queries: usize) -> Vec<MetaOpPoint> {
    partition_counts
        .iter()
        .map(|&p| {
            let tb = build_testbed(p, files_per_partition);
            metadata_op_times(&tb, queries)
        })
        .collect()
}

/// One point of Fig 15(b).
#[derive(Debug, Clone, Copy)]
pub struct MemoryPoint {
    /// Compute-side memory budget (bytes).
    pub memory_budget: u64,
    /// Query time without acceleration; `None` = OOM.
    pub without: Option<Nanos>,
    /// Query time with acceleration; `None` = OOM (never happens here).
    pub with: Option<Nanos>,
}

/// Fig 15(b): query time vs compute memory.
///
/// Without acceleration the compute engine materializes metadata for every
/// live file (`files × PER_FILE_META_BYTES`); if that exceeds the budget
/// the query OOMs. With acceleration only the touched partition's files
/// are materialized.
pub fn memory_sweep(testbed: &MetaTestbed, budgets: &[u64], queries: usize) -> Vec<MemoryPoint> {
    let full_footprint = MetadataCache::metadata_footprint_bytes(testbed.files as u64);
    let touched_files = testbed.files / testbed.partitions;
    let touched_footprint = MetadataCache::metadata_footprint_bytes(touched_files as u64);
    let op = metadata_op_times(testbed, queries);
    budgets
        .iter()
        .map(|&budget| MemoryPoint {
            memory_budget: budget,
            without: (full_footprint <= budget).then_some(op.file_based),
            with: (touched_footprint <= budget).then_some(op.accelerated),
        })
        .collect()
}

/// Default budget ladder around the testbed's metadata footprint.
pub fn default_budgets(testbed: &MetaTestbed) -> Vec<u64> {
    let full = MetadataCache::metadata_footprint_bytes(testbed.files as u64);
    vec![full / 4, full / 2, full, full * 2, full * 4]
}

/// Print Fig 15.
pub fn print(points: &[MetaOpPoint], memory: &[MemoryPoint]) {
    println!("Fig 15(a): metadata operation time vs partitions/files");
    println!(
        "{:>11} {:>9} | {:>16} {:>16} {:>8}",
        "partitions", "files", "accelerated", "file-based", "ratio"
    );
    for p in points {
        println!(
            "{:>11} {:>9} | {:>13.1} us {:>13.1} us {:>7.1}x",
            p.partitions,
            p.files,
            p.accelerated as f64 / 1e3,
            p.file_based as f64 / 1e3,
            p.file_based as f64 / p.accelerated.max(1) as f64
        );
    }
    println!("\nFig 15(b): query metadata time vs compute memory ({}B/file)", PER_FILE_META_BYTES);
    println!("{:>14} | {:>18} {:>18}", "memory budget", "no acceleration", "accelerated");
    for m in memory {
        let fmt = |v: Option<Nanos>| match v {
            Some(ns) => format!("{:.1} us", ns as f64 / 1e3),
            None => "OOM".to_string(),
        };
        println!(
            "{:>14} | {:>18} {:>18}",
            common::size::human_bytes(m.memory_budget),
            fmt(m.without),
            fmt(m.with)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerated_metadata_stays_flat_while_file_based_grows() {
        let points = partition_sweep(&[12, 48], 4, 8);
        let growth_fb = points[1].file_based as f64 / points[0].file_based.max(1) as f64;
        let growth_acc = points[1].accelerated as f64 / points[0].accelerated.max(1) as f64;
        assert!(
            growth_fb > 2.5,
            "file-based must grow ~linearly in partitions: {growth_fb}"
        );
        assert!(
            growth_acc < growth_fb / 2.0,
            "accelerated growth {growth_acc} must be far below file-based {growth_fb}"
        );
        // and accelerated is absolutely faster at every size
        for p in &points {
            assert!(p.accelerated < p.file_based);
        }
    }

    #[test]
    fn memory_model_ooms_only_without_acceleration() {
        let tb = build_testbed(24, 4);
        let budgets = default_budgets(&tb);
        let points = memory_sweep(&tb, &budgets, 5);
        // smallest budget: no-acceleration OOMs, accelerated survives
        assert!(points[0].without.is_none(), "must OOM below the full footprint");
        assert!(points[0].with.is_some());
        // largest budget: both run, accelerated still faster
        let last = points.last().unwrap();
        assert!(last.without.unwrap() > last.with.unwrap());
    }
}
