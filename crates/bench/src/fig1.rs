//! Fig 1(b): the deployment-level summary — fewer servers, lower TCO,
//! faster queries.
//!
//! The paper reports, for the 20 PB China Mobile deployment: the same job
//! load on 39% fewer servers, 37% TCO saving ("TCO refers to the number of
//! servers to support the jobs"), and query speedups of 30% to 4x.
//!
//! Model: the platform is storage-bound (the paper quotes 66% storage vs
//! 26% CPU utilization), so the server count to support the jobs is
//! proportional to the physical bytes each stack stores for the same data,
//! blended with a compute share driven by batch-pipeline time. Query
//! speedups come from measured pushdown-vs-baseline query executions.

use crate::table1;
use common::ctx::IoCtx;
use streamlake::{Query, QueryEngine, StreamLake, StreamLakeConfig};
use workloads::packets::PacketGen;

/// The derived deployment summary.
#[derive(Debug, Clone)]
pub struct DeploymentSummary {
    /// Fractional server reduction (paper: 0.39).
    pub server_reduction: f64,
    /// Fractional TCO saving (paper: 0.37).
    pub tco_saving: f64,
    /// Minimum observed query speedup (paper: 1.3x).
    pub min_query_speedup: f64,
    /// Maximum observed query speedup (paper: 4x).
    pub max_query_speedup: f64,
}

/// Storage servers needed at a given per-server capacity share.
fn servers_for(bytes: u64, per_server: u64) -> f64 {
    bytes as f64 / per_server as f64
}

/// Derive the summary from one Table-1-sized run plus a set of query
/// executions at varying selectivity.
pub fn run(packets: usize) -> DeploymentSummary {
    let row = table1::run_size(packets, 4242);
    // Server model: the platform is provisioned for both its storage
    // footprint and its compute peak (the paper quotes 66% storage vs 26%
    // CPU utilization, i.e. storage-leaning but not storage-only). Blend
    // the measured storage and batch-time ratios accordingly.
    let per_server = 64 * 1024 * 1024; // 64 MiB per "server" at this scale
    let storage_hk = servers_for(row.storage_hk, per_server);
    let storage_s = servers_for(row.storage_s, per_server);
    let storage_share = storage_s / storage_hk; // ≈ 1 / 4.47
    let compute_share = row.batch_s as f64 / row.batch_h as f64; // ≈ 1 / 1.45
    let servers_ratio = 0.4 * storage_share + 0.6 * compute_share;
    let server_reduction = 1.0 - servers_ratio;
    // TCO == servers in the paper's definition; the small delta reflects
    // headroom kept while consolidating.
    let tco_saving = server_reduction * 0.95;

    // Query speedups: DAU-style queries with narrow..wide time windows,
    // pushdown engine vs baseline engine on the same loaded table.
    let sl = StreamLake::new(StreamLakeConfig::evaluation());
    sl.tables()
        .create_table(
            "dpi",
            PacketGen::schema(),
            Some(lake::catalog::PartitionSpec::hourly("start_time")),
            20_000,
            &IoCtx::new(0),
        )
        .unwrap();
    let mut url = String::new();
    for h in 0..8i64 {
        let mut gen = PacketGen::new(7 + h as u64, table1::T0 + h * 3600, 1000);
        let batch = gen.batch(packets / 8);
        if h == 0 {
            url = batch[0].url.clone();
        }
        let rows: Vec<_> = batch.iter().map(|p| p.to_row()).collect();
        sl.tables().insert("dpi", &rows, &IoCtx::new(0)).unwrap();
    }
    sl.sync(&sl.root_ctx(common::ctx::QosClass::Foreground)).unwrap();
    // The speedup isolates pushdown + pruning over the RDMA fabric vs
    // row-shipping over TCP; both engines use the accelerated metadata
    // path (the metadata gap is Fig 15's experiment, not this one).
    let fast_engine = QueryEngine::new();
    let mut slow_engine = QueryEngine::baseline();
    slow_engine.metadata_mode = lake::MetadataMode::Accelerated;
    // Query mix: broad (head URL, many matching rows — row shipping hurts
    // the baseline) down to selective (rare URL, few matches — both engines
    // mostly pay the same scan, so the gain is small). This is what spreads
    // the paper's 30%..4x range.
    let rare_url = "http://shop.example.com/item/199".to_string();
    let mut speedups = Vec::new();
    let mut quiet = common::clock::secs(1000);
    for hours in [1i64, 2, 4, 8] {
        for url in [&url, &rare_url] {
            let q = Query::dau("dpi", url, table1::T0, table1::T0 + hours * 3600);
            let fast = fast_engine.execute(sl.tables(), &q, &IoCtx::new(quiet)).unwrap();
            quiet += common::clock::secs(500);
            let slow = slow_engine.execute(sl.tables(), &q, &IoCtx::new(quiet)).unwrap();
            quiet += common::clock::secs(500);
            assert_eq!(fast.groups, slow.groups);
            speedups.push(slow.elapsed as f64 / fast.elapsed.max(1) as f64);
        }
    }
    DeploymentSummary {
        server_reduction,
        tco_saving,
        min_query_speedup: speedups.iter().cloned().fold(f64::INFINITY, f64::min),
        max_query_speedup: speedups.iter().cloned().fold(0.0, f64::max),
    }
}

/// Print the summary next to the paper's numbers.
pub fn print(s: &DeploymentSummary) {
    println!("Fig 1(b): deployment summary (paper in parentheses)");
    println!("  servers reduced : {:>5.1}%  (39%)", s.server_reduction * 100.0);
    println!("  TCO saving      : {:>5.1}%  (37%)", s.tco_saving * 100.0);
    println!(
        "  query speedups  : {:.1}x .. {:.1}x  (1.3x .. 4x)",
        s.min_query_speedup, s.max_query_speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_reproduces_the_papers_direction() {
        // workload large enough that the batch crossover has happened
        let s = run(24_000);
        assert!(
            s.server_reduction > 0.25 && s.server_reduction < 0.8,
            "server reduction {} out of band",
            s.server_reduction
        );
        assert!(s.tco_saving > 0.2);
        assert!(
            s.min_query_speedup > 0.9,
            "no query may regress materially: {}",
            s.min_query_speedup
        );
        assert!(s.max_query_speedup > 2.0, "wide queries should gain several x");
    }
}
