//! Regenerate every table and figure in one run (used to produce
//! `EXPERIMENTS.md`). `cargo run --release -p bench --bin repro_all`

fn main() {
    println!("==================== Table 1 ====================");
    let rows = bench::table1::run(&bench::table1::default_sizes());
    bench::table1::print(&rows);

    println!("\n==================== Fig 1(b) ====================");
    let summary = bench::fig1::run(40_000);
    bench::fig1::print(&summary);

    println!("\n==================== Fig 14 ====================");
    let rates = [50_000u64, 100_000, 200_000, 500_000, 1_000_000, 1_500_000];
    let (set1, set2) = bench::fig14::latency_throughput_sweep(&rates, 30_000);
    let el = bench::fig14::elasticity(1_000, 10_000, 5_000);
    let space = bench::fig14::space_consumption(4_000);
    bench::fig14::print(&set1, &set2, &el, &space);

    println!("\n==================== Fig 15 ====================");
    let points = bench::fig15::partition_sweep(&[96, 192, 384, 768, 960], 5, 25);
    let testbed = bench::fig15::build_testbed(96, 5);
    let budgets = bench::fig15::default_budgets(&testbed);
    let memory = bench::fig15::memory_sweep(&testbed, &budgets, 10);
    bench::fig15::print(&points, &memory);

    println!("\n==================== Fig 16 ====================");
    let compaction = bench::fig16::compaction_sweep(&[3.0, 5.0, 7.0, 9.0], 24, 300);
    let partitions = bench::fig16::partition_sweep(&[1.0, 2.0, 5.0, 10.0]);
    bench::fig16::print(&compaction, &partitions);
    let (spn_err, sample_err) = bench::fig16::estimator_ablation(6_000, 60);
    println!(
        "\nEstimator ablation: mean |selectivity error| spn={spn_err:.4} sampling(3%)={sample_err:.4}"
    );
}
