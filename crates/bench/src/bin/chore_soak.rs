//! Maintenance-runtime soak gate: run every registered chore for several
//! virtual hours against a seeded deployment and verify liveness.
//!
//! `scripts/check.sh` runs this after the tier-1 tests. It fails when any
//! chore never ticks, is left stuck in failure backoff, or stops being
//! scheduled before the horizon (permanent starvation) — the regressions a
//! scheduler refactor is most likely to introduce and unit tests are least
//! likely to catch.
//!
//! `cargo run --release -p bench --bin chore_soak`

use common::clock::{secs, Nanos};

/// Virtual soak horizon: four hours, long enough for thousands of ticks of
/// the fastest chore and dozens of the slowest.
const HORIZON: Nanos = secs(4 * 3600);

/// A chore that has not been runnable within this margin of the horizon is
/// considered starved (the longest registered period is 60 s; backoff after
/// a transient failure tops out near 17 min, well inside this bound).
const STARVATION_MARGIN: Nanos = secs(30 * 60);

fn main() {
    let sl = bench::chores::seeded_deployment();
    let events = sl.run_maintenance_until(HORIZON);
    let status = sl.chore_status();

    println!(
        "chore_soak: {} journal events over {} virtual hours",
        events.len(),
        HORIZON / secs(3600)
    );
    println!(
        "{:<12} {:>8} {:>10} {:>9} {:>9} {:>14}",
        "chore", "ticks", "work", "deferred", "failures", "next_due_s"
    );
    let mut failed = false;
    for s in &status {
        println!(
            "{:<12} {:>8} {:>10} {:>9} {:>9} {:>14}",
            s.name,
            s.ticks,
            s.work_done,
            s.deferred,
            s.consecutive_failures,
            s.next_due / secs(1)
        );
        if s.ticks == 0 {
            eprintln!("chore_soak: FAILED — chore `{}` never ticked", s.name);
            failed = true;
        }
        if s.consecutive_failures > 0 {
            eprintln!(
                "chore_soak: FAILED — chore `{}` stuck in backoff ({} consecutive failures)",
                s.name, s.consecutive_failures
            );
            failed = true;
        }
        // Liveness: the scheduler still owes this chore a slot near the
        // horizon. A next_due far past it means the chore was pushed out
        // (deferral loop or runaway backoff) — permanent starvation.
        if s.next_due > HORIZON + STARVATION_MARGIN {
            eprintln!(
                "chore_soak: FAILED — chore `{}` starved: next due {} s, horizon {} s",
                s.name,
                s.next_due / secs(1),
                HORIZON / secs(1)
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("chore_soak: ok — all {} chores live through the horizon", status.len());
}
