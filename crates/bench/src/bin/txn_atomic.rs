//! Stream⇄table atomicity smoke gate.
//!
//! Drives a seeded schedule of cross-subsystem transactions
//! (`StreamLake::transaction()`: produce records AND stage a table commit
//! in one MVCC transaction) through commit, explicit abort, and simulated
//! coordinator crashes at both crash points — pending (before decide) and
//! decided-but-unresolved (after the record flip, before resolution).
//!
//! After every step it probes both sides and fails the gate on any
//! partial-visibility window: the number of stream-visible transactional
//! records must always agree with the number of table-visible rows, before
//! recovery and after `recover_transactions`. It also fails on surviving
//! write intents, leaked coordinator state, or a same-seed replay whose
//! resolution journal is not byte-identical.
//!
//! `cargo run --release -p bench --bin txn_atomic`

use common::ctx::{IoCtx, QosClass};
use format::{DataType, Field, Schema, Value};
use lake::ScanOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamlake::{StreamLake, StreamLakeConfig};

/// Transactions per run.
const ROUNDS: u32 = 24;
/// Records produced per transaction.
const MSGS_PER_TXN: usize = 2;

fn fail(msg: String) -> ! {
    eprintln!("txn_atomic: FAILED — {msg}");
    std::process::exit(1);
}

fn stream_visible(sl: &StreamLake, probe: u32, ctx: &IoCtx) -> usize {
    let mut c = sl.consumer(&format!("probe-{probe}"));
    if let Err(e) = c.subscribe("events") {
        fail(format!("probe subscribe: {e}"));
    }
    match c.poll(100_000, ctx) {
        Ok(records) => records.len(),
        Err(e) => fail(format!("probe poll: {e}")),
    }
}

fn table_visible(sl: &StreamLake, ctx: &IoCtx) -> usize {
    match sl.tables().select("facts", &ScanOptions::default(), ctx) {
        Ok(r) => r.rows.len(),
        Err(e) => fail(format!("probe select: {e}")),
    }
}

/// The invariant the gate exists for: at NO probe point may one service
/// have published a transaction's effects while the other has not.
fn check_atomic(sl: &StreamLake, committed: u32, probe: &mut u32, at: &str, ctx: &IoCtx) {
    *probe += 1;
    let stream_txns = stream_visible(sl, *probe, ctx) / MSGS_PER_TXN;
    let table_txns = table_visible(sl, ctx);
    if stream_txns != table_txns {
        fail(format!(
            "partial visibility {at}: {stream_txns} stream-visible transactions vs \
             {table_txns} table-visible"
        ));
    }
    if stream_txns != committed as usize {
        fail(format!(
            "{at}: {stream_txns} transactions visible, expected {committed}"
        ));
    }
}

fn run(seed: u64) -> Vec<u8> {
    let sl = StreamLake::new(StreamLakeConfig::small());
    if let Err(e) = sl.stream().create_topic("events", stream::TopicConfig::with_streams(4)) {
        fail(format!("create_topic: {e}"));
    }
    let schema = match Schema::new(vec![
        Field::new("k", DataType::Utf8),
        Field::new("n", DataType::Int64),
    ]) {
        Ok(s) => s,
        Err(e) => fail(format!("schema: {e}")),
    };
    let ctx = sl.root_ctx(QosClass::Foreground);
    if let Err(e) = sl.tables().create_table("facts", schema, None, 10_000, &ctx) {
        fail(format!("create_table: {e}"));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut committed = 0u32;
    let mut probe = 0u32;
    let mut fates = [0u32; 4];
    for round in 0..ROUNDS {
        let mut txn = sl.transaction();
        for m in 0..MSGS_PER_TXN {
            if let Err(e) = txn.send("events", format!("r{round}-{m}"), "payload", &ctx) {
                fail(format!("round {round} send: {e}"));
            }
        }
        let row = vec![Value::from(format!("r{round}")), Value::Int(i64::from(round))];
        if let Err(e) = txn.insert("facts", &[row], &ctx) {
            fail(format!("round {round} insert: {e}"));
        }
        let fate = rng.gen_range(0..4u32);
        fates[fate as usize] += 1;
        match fate {
            // Clean two-phase commit, probing the decided-but-unresolved
            // window in the middle: nothing may be visible inside it.
            0 => {
                if let Err(e) = txn.decide(&ctx) {
                    fail(format!("round {round} decide: {e}"));
                }
                check_atomic(&sl, committed, &mut probe, "between decide and resolve", &ctx);
                if let Err(e) = txn.resolve(&ctx) {
                    fail(format!("round {round} resolve: {e}"));
                }
                committed += 1;
            }
            // Explicit abort.
            1 => {
                if let Err(e) = txn.abort() {
                    fail(format!("round {round} abort: {e}"));
                }
            }
            // Coordinator crash before the decision: recovery aborts.
            2 => {
                txn.simulate_crash();
                check_atomic(&sl, committed, &mut probe, "after pending crash", &ctx);
                if let Err(e) = sl.recover_transactions(&ctx) {
                    fail(format!("round {round} recovery: {e}"));
                }
            }
            // Coordinator crash after the decision: recovery rolls the
            // whole transaction forward — on both services.
            _ => {
                if let Err(e) = txn.decide(&ctx) {
                    fail(format!("round {round} decide: {e}"));
                }
                txn.simulate_crash();
                check_atomic(&sl, committed, &mut probe, "after decided crash", &ctx);
                if let Err(e) = sl.recover_transactions(&ctx) {
                    fail(format!("round {round} recovery: {e}"));
                }
                committed += 1;
            }
        }
        check_atomic(&sl, committed, &mut probe, "after round", &ctx);
    }
    if fates.iter().any(|&n| n == 0) {
        fail(format!("seed {seed} did not exercise every fate: {fates:?}"));
    }
    if sl.mvcc().pending_intents() != 0 {
        fail(format!("{} write intents survived the schedule", sl.mvcc().pending_intents()));
    }
    if sl.stream().txns().active_count() != 0 {
        fail(format!(
            "{} coordinator entries leaked",
            sl.stream().txns().active_count()
        ));
    }
    println!(
        "txn_atomic: seed {seed}: {committed}/{ROUNDS} committed \
         (fates commit/abort/crash-pending/crash-decided = {fates:?})"
    );
    sl.mvcc().journal_bytes()
}

fn main() {
    let first = run(20240217);
    let second = run(20240217);
    if first != second {
        fail("same-seed replay diverged: resolution journals differ".to_string());
    }
    println!("txn_atomic: ok — no partial-visibility window; replay byte-identical");
}
