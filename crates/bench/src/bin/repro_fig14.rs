//! Regenerate Fig 14. `cargo run --release -p bench --bin repro_fig14`

fn main() {
    let rates = [50_000u64, 100_000, 200_000, 500_000, 1_000_000, 1_500_000];
    let (set1, set2) = bench::fig14::latency_throughput_sweep(&rates, 30_000);
    let el = bench::fig14::elasticity(1_000, 10_000, 5_000);
    let space = bench::fig14::space_consumption(4_000);
    bench::fig14::print(&set1, &set2, &el, &space);
    bench::fig14::print_phase_breakdown(&bench::fig14::phase_breakdown(4_000));
}
