//! Wall-clock perf baseline: the numbers every later PR is judged against.
//!
//! Four seeded, fixed-size microbenches of the hot data path, measured in
//! real (host) time — this is the one harness binary that deliberately uses
//! `std::time::Instant` (the `slint` R1 determinism rule exempts
//! `crates/bench`, which measures the real host):
//!
//! * `replicate_append` — 3-way replicated PLog appends, MB/s of logical
//!   payload;
//! * `ec_append` — RS(10,2) erasure-coded PLog appends, MB/s;
//! * `degraded_read` — reads of the EC store with `m` devices failed, i.e.
//!   every read pays Reed–Solomon reconstruction, MB/s;
//! * `gf256_mul_acc` — the `gf256::mul_acc_slice` fused multiply-add that
//!   dominates RS encode/reconstruct, MB/s over a 1 MiB buffer;
//! * `checksummed_append` — 3-way replicated appends including the per-shard
//!   CRC32 computed into the index entry, MB/s;
//! * `verified_read` — replicated reads with every touched shard
//!   checksum-verified against the index CRCs, MB/s;
//! * `partitioned_produce` — keyed produce across a 64-partition topic
//!   (key hash → route → per-partition quota → worker → object), MB/s of
//!   logical payload;
//! * `group_rebalance` — consumer-group churn (joins, cooperative ack
//!   cycles, leaves) over a 64-partition topic, rebalance-journal bytes
//!   per second;
//! * `frontdoor_admission` — produce through the full multi-tenant front
//!   door (auth → token bucket → admission control → breakers → engine),
//!   MB/s of logical payload; tracks the per-request overhead of the
//!   admission pipeline itself;
//! * `txn_commit` — MVCC transactions end to end (begin → intent writes →
//!   commit decide → intent resolution), MB/s of committed payload;
//! * `txn_conflict_abort` — the same path under write-write contention:
//!   every round a loser collides on a live intent and aborts while the
//!   winner commits; MB/s of committed payload, so the row prices conflict
//!   detection + abort cleanup on top of the commit path.
//!
//! One additional row is measured in *virtual* time rather than host time:
//! `maintenance_interference`, the foreground append p99 with every
//! maintenance chore active between sends vs fully quiesced, written as
//! `p99_active_ns` / `p99_quiesced_ns` / `ratio`. Being deterministic, the
//! ratio is an exact regression signal for chore-scheduler changes.
//!
//! Each bench runs [`SAMPLES`] timed passes over a fresh store and reports
//! the best pass (least interference from the host). Results land in
//! `BENCH_PERF.json` at the workspace root; `scripts/check.sh` re-runs this
//! binary with `--check`, which re-reads and validates the file so a
//! missing or malformed trajectory fails the gate. The file also records a
//! per-bench regression `floors` object — 80% of the best recorded rate,
//! ratcheting monotonically upward across runs — and `--check` fails when
//! any required bench's current rate sits below its recorded floor.
//!
//! ```text
//! cargo run --release -p bench --bin perf_baseline            # measure + write
//! cargo run --release -p bench --bin perf_baseline -- --check # validate only
//! ```

use common::ctx::IoCtx;
use common::json::Json;
use common::size::MIB;
use common::{Bytes, SimClock};
use ec::Redundancy;
use plog::{GroupCommitConfig, GroupCommitter, PlogConfig, PlogStore, WorkerPool};
use simdisk::{MediaKind, StoragePool};
use std::sync::Arc;
use std::time::Instant;

/// Payload size per appended record.
const RECORD_BYTES: usize = 256 * 1024;
/// Records appended per pass (48 MiB of logical payload).
const RECORDS: usize = 192;
/// Buffer length for the gf256 kernel bench.
const GF256_BUF: usize = MIB as usize;
/// Kernel invocations per gf256 pass.
const GF256_ITERS: usize = 128;
/// Timed passes per bench; the best is reported.
const SAMPLES: usize = 3;

/// Deterministic payload: a fixed-seed xorshift fill, same bytes every run.
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

fn store(redundancy: Redundancy, devices: usize) -> PlogStore {
    let pool = Arc::new(StoragePool::new(
        "perf",
        MediaKind::NvmeSsd,
        devices,
        1024 * MIB,
        SimClock::new(),
    ));
    PlogStore::new(
        pool,
        PlogConfig { shard_count: 16, redundancy, shard_capacity: 512 * MIB },
    )
    .expect("valid perf-baseline config")
    // Host-side parallelism only: shard encode/CRC/device work fans across
    // the pool with a deterministic join order, so virtual-time results are
    // identical with or without it.
    .with_workers(Arc::new(WorkerPool::with_default_size(42)))
}

struct BenchResult {
    name: &'static str,
    bytes: u64,
    nanos: u128,
}

impl BenchResult {
    fn mb_per_s(&self) -> f64 {
        if self.nanos == 0 {
            return 0.0;
        }
        (self.bytes as f64 / (1024.0 * 1024.0)) / (self.nanos as f64 / 1e9)
    }

    fn to_json(&self) -> (&'static str, Json) {
        (
            self.name,
            Json::object([
                ("mb_per_s", Json::Num(self.mb_per_s())),
                ("bytes", Json::Num(self.bytes as f64)),
                ("nanos", Json::Num(self.nanos as f64)),
            ]),
        )
    }
}

/// Run `pass` `SAMPLES` times (plus one untimed warm-up) and keep the best.
fn best_of<F: FnMut() -> u64>(name: &'static str, mut pass: F) -> BenchResult {
    pass(); // warm-up: page in tables, allocator, branch predictors
    let mut best_nanos = u128::MAX;
    let mut bytes = 0;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        bytes = pass();
        best_nanos = best_nanos.min(start.elapsed().as_nanos());
    }
    BenchResult { name, bytes, nanos: best_nanos }
}

fn bench_replicate_append() -> BenchResult {
    let record = payload(1, RECORD_BYTES);
    best_of("replicate_append", || {
        let s = store(Redundancy::Replicate { copies: 3 }, 8);
        for i in 0..RECORDS {
            let key = (i as u64).to_be_bytes();
            s.append(&key, &record[..]).expect("perf append");
        }
        (RECORDS * RECORD_BYTES) as u64
    })
}

fn bench_ec_append() -> BenchResult {
    let record = payload(2, RECORD_BYTES);
    best_of("ec_append", || {
        let s = store(Redundancy::ErasureCode { k: 10, m: 2 }, 12);
        for i in 0..RECORDS {
            let key = (i as u64).to_be_bytes();
            s.append(&key, &record[..]).expect("perf append");
        }
        (RECORDS * RECORD_BYTES) as u64
    })
}

fn bench_degraded_read() -> BenchResult {
    // Build one EC store, fail m devices, then time reconstruction reads.
    let record = payload(3, RECORD_BYTES);
    let s = store(Redundancy::ErasureCode { k: 10, m: 2 }, 12);
    let mut addrs = Vec::with_capacity(RECORDS);
    for i in 0..RECORDS {
        let key = (i as u64).to_be_bytes();
        addrs.push(s.append(&key, &record[..]).expect("perf append"));
    }
    s.pool_for_tests().device(0).fail();
    s.pool_for_tests().device(1).fail();
    best_of("degraded_read", || {
        let mut total = 0u64;
        for addr in &addrs {
            let data = s.read(addr).expect("degraded read within fault tolerance");
            total += data.len() as u64;
        }
        total
    })
}

fn bench_gf256() -> BenchResult {
    let src = payload(4, GF256_BUF);
    let mut dst = payload(5, GF256_BUF);
    best_of("gf256_mul_acc", || {
        for i in 0..GF256_ITERS {
            // cycle the coefficient so no branch predictor learns one table row
            let c = (i as u8) | 2;
            ec::gf256::mul_acc_slice(&mut dst, &src, c);
        }
        (GF256_ITERS * GF256_BUF) as u64
    })
}

fn bench_checksummed_append() -> BenchResult {
    // Dedicated row for the checksummed write path (one CRC32 pass per
    // payload feeding the index entry), tracked separately so integrity
    // regressions are visible even if the generic append row drifts.
    //
    // This row drives the group-commit front door: records enter as `Bytes`
    // clones (no per-append payload copy), coalesce into commit groups, and
    // pay one batched index put per group.
    let record = Bytes::from_vec(payload(6, RECORD_BYTES));
    best_of("checksummed_append", || {
        let s = Arc::new(store(Redundancy::Replicate { copies: 3 }, 8));
        let gc = GroupCommitter::new(s.clone(), GroupCommitConfig::default());
        let ctx = IoCtx::new(0);
        let mut tickets = Vec::with_capacity(RECORDS);
        for i in 0..RECORDS {
            let key = (i as u64).to_be_bytes();
            tickets.push(
                gc.submit(s.shard_of(&key), record.clone(), &ctx).expect("perf submit"),
            );
        }
        gc.flush(&ctx).expect("perf flush");
        for t in tickets {
            gc.take(t).expect("group outcome").expect("perf append");
        }
        (RECORDS * RECORD_BYTES) as u64
    })
}

fn bench_verified_read() -> BenchResult {
    // Replicated reads where every shard touched is verified against the
    // index CRC32s — the integrity tax on the read path.
    let record = payload(7, RECORD_BYTES);
    let s = store(Redundancy::Replicate { copies: 3 }, 8);
    let mut addrs = Vec::with_capacity(RECORDS);
    for i in 0..RECORDS {
        let key = (i as u64).to_be_bytes();
        addrs.push(s.append(&key, &record[..]).expect("perf append"));
    }
    best_of("verified_read", || {
        let mut total = 0u64;
        for addr in &addrs {
            let data = s.read(addr).expect("verified read");
            total += data.len() as u64;
        }
        total
    })
}

/// Records sent per partitioned-produce pass.
const PRODUCE_RECORDS: usize = 4096;
/// Payload bytes per produced message.
const PRODUCE_BYTES: usize = 1024;
/// Partitions of the produce/rebalance bench topic.
const BENCH_PARTITIONS: u32 = 64;
/// Members churned through the rebalance bench.
const BENCH_MEMBERS: usize = 16;

fn stream_service() -> Arc<stream::StreamService> {
    let clock = SimClock::new();
    let pool = Arc::new(StoragePool::new(
        "perf-stream",
        MediaKind::NvmeSsd,
        8,
        1024 * MIB,
        clock.clone(),
    ));
    let plog = Arc::new(
        PlogStore::new(
            pool,
            PlogConfig {
                shard_count: 64,
                redundancy: Redundancy::Replicate { copies: 2 },
                shard_capacity: 512 * MIB,
            },
        )
        .expect("valid perf-baseline config"),
    );
    stream::StreamService::new(
        plog,
        clock,
        stream::StreamServiceOptions { workers: 4, ..Default::default() },
    )
}

fn bench_partitioned_produce() -> BenchResult {
    // The partition-first produce path: key hash → partition route →
    // per-partition quota → worker → stream object, across a 64-partition
    // topic. MB/s of logical payload through the whole stack.
    let record = payload(8, PRODUCE_BYTES);
    best_of("partitioned_produce", || {
        let svc = stream_service();
        svc.create_topic("t", stream::TopicConfig::with_partitions(BENCH_PARTITIONS))
            .expect("perf topic");
        let mut p = svc.producer();
        p.set_batch_size(16);
        let ctx = common::ctx::IoCtx::new(0);
        for i in 0..PRODUCE_RECORDS {
            p.send("t", format!("key-{i}").into_bytes(), record.clone(), &ctx)
                .expect("perf send");
        }
        p.flush(&ctx).expect("perf flush");
        (PRODUCE_RECORDS * PRODUCE_BYTES) as u64
    })
}

fn bench_group_rebalance() -> BenchResult {
    // Consumer-group coordination throughput: churn BENCH_MEMBERS members
    // through a 64-partition group (join, cooperative ack cycle, leave)
    // and report journal bytes rendered per second — the journal is the
    // deterministic artifact every rebalance produces, so bytes/s tracks
    // coordination cost end to end.
    best_of("group_rebalance", || {
        let svc = stream_service();
        svc.create_topic("t", stream::TopicConfig::with_partitions(BENCH_PARTITIONS))
            .expect("perf topic");
        let groups = svc.groups().clone();
        let topics = vec!["t".to_string()];
        let mut t = 0u64;
        let mut members: Vec<String> = Vec::new();
        for i in 0..BENCH_MEMBERS {
            let m = format!("m{i}");
            t += 1_000_000;
            groups.join("g", &m, &topics, &common::ctx::IoCtx::new(t)).expect("join");
            members.push(m);
            // Cooperative cycle: everyone acks until the group stabilizes.
            while !groups.is_stable("g") {
                t += 1_000_000;
                for m in &members {
                    groups.ack("g", m, &common::ctx::IoCtx::new(t)).expect("ack");
                }
            }
        }
        while members.len() > 1 {
            let m = members.pop().expect("nonempty");
            t += 1_000_000;
            groups.leave("g", &m, &common::ctx::IoCtx::new(t)).expect("leave");
            while !groups.is_stable("g") {
                t += 1_000_000;
                for m in &members {
                    groups.ack("g", m, &common::ctx::IoCtx::new(t)).expect("ack");
                }
            }
        }
        groups.journal_bytes().len() as u64
    })
}

/// Requests sent per frontdoor-admission pass.
const DOOR_RECORDS: usize = 4096;

/// Transactions per txn bench pass.
const TXN_COUNT: usize = 256;
/// Intent writes per transaction.
const TXN_KEYS: usize = 64;
/// Payload bytes per intent.
const TXN_VAL_BYTES: usize = 1024;

fn bench_txn_commit() -> BenchResult {
    // The MVCC commit path end to end: begin, TXN_KEYS intent writes (each
    // a record update + intent in one WAL frame), the commit-decide record
    // flip, then intent resolution into committed versions.
    let value = payload(10, TXN_VAL_BYTES);
    best_of("txn_commit", || {
        let mvcc = kvstore::MvccStore::new();
        for t in 0..TXN_COUNT {
            let h = mvcc.begin();
            for k in 0..TXN_KEYS {
                let key = format!("k/{:03}/{:03}", t % 8, k);
                mvcc.put(h.id, key.as_bytes(), &value[..]).expect("perf put");
            }
            mvcc.commit_decide(h.id).expect("perf decide");
            mvcc.resolve_committed(h.id).expect("perf resolve");
        }
        (TXN_COUNT * TXN_KEYS * TXN_VAL_BYTES) as u64
    })
}

fn bench_txn_conflict_abort() -> BenchResult {
    // Write-write contention: each round a second transaction collides on
    // the winner's live intent (Error::Conflict) and aborts before the
    // winner commits. Committed payload per nanosecond prices conflict
    // detection and abort cleanup on top of the commit path.
    let value = payload(11, TXN_VAL_BYTES);
    best_of("txn_conflict_abort", || {
        let mvcc = kvstore::MvccStore::new();
        for t in 0..TXN_COUNT {
            let winner = mvcc.begin();
            let loser = mvcc.begin();
            for k in 0..TXN_KEYS {
                let key = format!("k/{:03}/{:03}", t % 8, k);
                mvcc.put(winner.id, key.as_bytes(), &value[..]).expect("perf put");
            }
            let contended = format!("k/{:03}/000", t % 8);
            let err = mvcc
                .put(loser.id, contended.as_bytes(), &value[..])
                .expect_err("collision on a live intent");
            assert!(matches!(err, common::Error::Conflict(_)));
            mvcc.abort(loser.id).expect("perf abort");
            mvcc.commit_decide(winner.id).expect("perf decide");
            mvcc.resolve_committed(winner.id).expect("perf resolve");
        }
        (TXN_COUNT * TXN_KEYS * TXN_VAL_BYTES) as u64
    })
}

fn bench_frontdoor_admission() -> BenchResult {
    // The full request-processing pipeline in front of the engine: token
    // auth, ACL check, nano-token bucket, admission control, pool + tenant
    // breakers, then the partitioned produce path. The tenant rate is set
    // so the 50 ms burst depth covers the whole pass — the row measures
    // pipeline overhead, not throttling (every send is at virtual t=0).
    let rate = DOOR_RECORDS as u64 * 100;
    let record = payload(9, PRODUCE_BYTES);
    best_of("frontdoor_admission", || {
        let lake = Arc::new(streamlake::StreamLake::new(
            streamlake::StreamLakeConfig::small(),
        ));
        lake.stream()
            .create_topic("t", stream::TopicConfig::with_partitions(BENCH_PARTITIONS))
            .expect("perf topic");
        let door = streamlake::FrontDoor::new(lake, streamlake::FrontDoorConfig::default());
        let p = door.register_tenant("perf", "tok-perf", rate);
        door.access().grant(&p, "topic/", streamlake::Permission::Write);
        let ctx = common::ctx::IoCtx::new(0).with_qos(common::ctx::QosClass::Foreground);
        for i in 0..DOOR_RECORDS {
            door.produce("tok-perf", "t", format!("key-{i}").into_bytes(), record.clone(), &ctx)
                .expect("perf door send");
        }
        (DOOR_RECORDS * PRODUCE_BYTES) as u64
    })
}

/// Foreground interference of the maintenance runtime, in *virtual* time:
/// append p99 with every chore active between sends vs fully quiesced.
/// Unlike the MB/s rows this is deterministic (no host clock), so the ratio
/// is an exact regression signal for scheduler/backpressure changes.
struct InterferenceResult {
    p99_active: u64,
    p99_quiesced: u64,
}

impl InterferenceResult {
    fn ratio(&self) -> f64 {
        if self.p99_quiesced == 0 {
            return 0.0;
        }
        self.p99_active as f64 / self.p99_quiesced as f64
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("p99_active_ns", Json::Num(self.p99_active as f64)),
            ("p99_quiesced_ns", Json::Num(self.p99_quiesced as f64)),
            ("ratio", Json::Num(self.ratio())),
        ])
    }
}

/// Appends measured for the interference row.
const INTERFERENCE_APPENDS: usize = 64;

fn bench_maintenance_interference() -> InterferenceResult {
    InterferenceResult {
        p99_active: bench::chores::append_p99(true, INTERFERENCE_APPENDS),
        p99_quiesced: bench::chores::append_p99(false, INTERFERENCE_APPENDS),
    }
}

fn output_path() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the trajectory lives at the root.
    let manifest = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join("BENCH_PERF.json")
}

const REQUIRED_BENCHES: [&str; 11] = [
    "replicate_append",
    "ec_append",
    "degraded_read",
    "gf256_mul_acc",
    "checksummed_append",
    "verified_read",
    "partitioned_produce",
    "group_rebalance",
    "frontdoor_admission",
    "txn_commit",
    "txn_conflict_abort",
];

/// Fraction of a measured rate that becomes its recorded floor. A later
/// run whose rate lands below an already-recorded floor (>20% regression
/// against the trajectory) fails `--check`.
const FLOOR_FRACTION: f64 = 0.8;

/// Per-bench regression floors recorded in an existing trajectory file.
/// Missing file or missing object means no floors yet (first recording).
fn read_floors(path: &std::path::Path) -> std::collections::BTreeMap<String, f64> {
    let mut floors = std::collections::BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else { return floors };
    let Ok(json) = Json::parse(&text) else { return floors };
    if let Some(obj) = json.get("floors").and_then(|f| f.as_object()) {
        for (name, v) in obj {
            if let Some(f) = v.as_f64() {
                if f.is_finite() && f > 0.0 {
                    floors.insert(name.clone(), f);
                }
            }
        }
    }
    floors
}

/// Validate an existing BENCH_PERF.json; returns a human-readable error.
fn check_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("malformed JSON: {e}"))?;
    let benches = json
        .get("benches")
        .and_then(|b| b.as_object())
        .ok_or("missing `benches` object")?;
    let floors = json
        .get("floors")
        .and_then(|f| f.as_object())
        .ok_or("missing `floors` object (re-run perf_baseline to record one)")?;
    for name in REQUIRED_BENCHES {
        let entry = benches.get(name).ok_or_else(|| format!("missing bench `{name}`"))?;
        let rate = entry
            .get("mb_per_s")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("bench `{name}` has no numeric mb_per_s"))?;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(format!("bench `{name}` reports non-positive rate {rate}"));
        }
        let floor = floors
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("bench `{name}` has no recorded floor"))?;
        if rate < floor {
            return Err(format!(
                "bench `{name}` regressed: {rate:.2} MB/s is below its recorded floor \
                 {floor:.2} MB/s (>20% under the best recorded trajectory)"
            ));
        }
    }
    let interference = json
        .get("maintenance_interference")
        .ok_or("missing `maintenance_interference` object")?;
    for field in ["p99_active_ns", "p99_quiesced_ns", "ratio"] {
        let v = interference
            .get(field)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("maintenance_interference has no numeric {field}"))?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("maintenance_interference reports non-positive {field} {v}"));
        }
    }
    Ok(())
}

fn main() {
    let path = output_path();
    if std::env::args().any(|a| a == "--check") {
        match check_file(&path) {
            Ok(()) => {
                println!("perf_baseline: ok — {} is present and well-formed", path.display());
                return;
            }
            Err(e) => {
                eprintln!("perf_baseline: FAILED — {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // Floors ratchet: each bench's floor only ever rises, so the trajectory
    // remembers the best recorded run even across slower host days.
    let prior_floors = read_floors(&path);

    let results = [
        bench_replicate_append(),
        bench_ec_append(),
        bench_degraded_read(),
        bench_gf256(),
        bench_checksummed_append(),
        bench_verified_read(),
        bench_partitioned_produce(),
        bench_group_rebalance(),
        bench_frontdoor_admission(),
        bench_txn_commit(),
        bench_txn_conflict_abort(),
    ];
    for r in &results {
        println!("{:<20} {:>10.1} MB/s  ({} bytes in {} ns)", r.name, r.mb_per_s(), r.bytes, r.nanos);
    }
    let interference = bench_maintenance_interference();
    println!(
        "{:<20} {:>9.2}x   (append p99 {} ns active vs {} ns quiesced)",
        "maint_interference",
        interference.ratio(),
        interference.p99_active,
        interference.p99_quiesced
    );
    let json = Json::object([
        ("schema", Json::Num(1.0)),
        (
            "workload",
            Json::object([
                ("record_bytes", Json::Num(RECORD_BYTES as f64)),
                ("records", Json::Num(RECORDS as f64)),
                ("gf256_buf_bytes", Json::Num(GF256_BUF as f64)),
                ("gf256_iters", Json::Num(GF256_ITERS as f64)),
                ("samples", Json::Num(SAMPLES as f64)),
            ]),
        ),
        ("benches", Json::Object(results.iter().map(|r| { let (k, v) = r.to_json(); (k.to_string(), v) }).collect())),
        (
            "floors",
            Json::Object(
                results
                    .iter()
                    .map(|r| {
                        let prior = prior_floors.get(r.name).copied().unwrap_or(0.0);
                        (r.name.to_string(), Json::Num(prior.max(FLOOR_FRACTION * r.mb_per_s())))
                    })
                    .collect(),
            ),
        ),
        ("maintenance_interference", interference.to_json()),
    ]);
    if let Err(e) = std::fs::write(&path, json.to_pretty() + "\n") {
        eprintln!("perf_baseline: FAILED to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("perf_baseline: wrote {}", path.display());
}
