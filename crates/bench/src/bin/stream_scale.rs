//! Consumer-group convergence smoke gate: a small partitioned-stream run
//! with member churn that must end with every partition assigned and the
//! rebalance protocol converged.
//!
//! `scripts/check.sh` runs this after the tier-1 tests; it drives a
//! 64-partition topic through join/leave/crash waves and exits nonzero if
//! the group never stabilizes, any partition is left unassigned, or the
//! group delivers a record zero or multiple times — so a coordinator
//! regression fails CI even if no unit test names it.
//!
//! `cargo run --release -p bench --bin stream_scale`

use common::clock::secs;
use common::ctx::IoCtx;
use common::size::MIB;
use common::SimClock;
use ec::Redundancy;
use plog::{PlogConfig, PlogStore};
use simdisk::{MediaKind, StoragePool};
use std::collections::BTreeMap;
use std::sync::Arc;

const PARTITIONS: u32 = 64;
const WAVES: usize = 4;
const JOINS_PER_WAVE: usize = 4;
const MSGS_PER_WAVE: usize = 256;

fn service() -> Arc<stream::StreamService> {
    let clock = SimClock::new();
    let pool = Arc::new(StoragePool::new(
        "smoke",
        MediaKind::NvmeSsd,
        6,
        512 * MIB,
        clock.clone(),
    ));
    let plog = Arc::new(
        PlogStore::new(
            pool,
            PlogConfig {
                shard_count: 64,
                redundancy: Redundancy::Replicate { copies: 2 },
                shard_capacity: 256 * MIB,
            },
        )
        .expect("valid smoke config"),
    );
    stream::StreamService::new(
        plog,
        clock,
        stream::StreamServiceOptions { workers: 3, ..Default::default() },
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("stream_scale: FAILED — {msg}");
    std::process::exit(1);
}

fn main() {
    let svc = service();
    svc.create_topic("t", stream::TopicConfig::with_partitions(PARTITIONS))
        .expect("smoke topic");

    let mut produced = 0usize;
    let mut seen: BTreeMap<(u32, u64), u32> = BTreeMap::new();
    let mut active: Vec<stream::Consumer> = Vec::new();
    let mut seq = 0u64;
    // slint:allow(R7): this bin is the test driver and sole clock owner
    svc.clock().advance(secs(1));

    for wave in 0..WAVES {
        let mut p = svc.producer();
        p.set_batch_size(8);
        let t = svc.clock().now();
        for _ in 0..MSGS_PER_WAVE {
            p.send("t", format!("k{}", seq % 97), seq.to_be_bytes().to_vec(), &IoCtx::new(t))
                .expect("smoke send");
            seq += 1;
        }
        p.flush(&IoCtx::new(t)).expect("smoke flush");
        produced += MSGS_PER_WAVE;

        for _ in 0..JOINS_PER_WAVE {
            let mut c = svc.consumer("g");
            c.subscribe("t").expect("smoke subscribe");
            active.push(c);
        }
        // Drain in sub-session-timeout steps so crashed members from the
        // previous wave expire while polling members stay alive.
        for _ in 0..4 {
            // slint:allow(R7): the driver steps virtual time between poll rounds
            let t = svc.clock().advance(secs(20));
            for c in active.iter_mut() {
                for r in c.poll(usize::MAX, &IoCtx::new(t)).expect("smoke poll") {
                    *seen.entry((r.partition_idx, r.offset)).or_insert(0) += 1;
                }
                c.commit().expect("smoke commit");
            }
        }
        // Churn: one graceful leave, one crash per wave.
        if wave > 0 && active.len() > 2 {
            drop(active.remove(0));
            active.remove(0).abandon();
        }
    }

    // Settle: the group must converge within a bounded number of sweeps.
    let mut dry = 0;
    let mut sweeps = 0;
    while !(dry >= 2 && svc.groups().is_stable("g")) {
        // slint:allow(R7): the driver steps virtual time between poll rounds
        let t = svc.clock().advance(secs(20));
        let mut got_any = false;
        for c in active.iter_mut() {
            for r in c.poll(usize::MAX, &IoCtx::new(t)).expect("smoke poll") {
                *seen.entry((r.partition_idx, r.offset)).or_insert(0) += 1;
                got_any = true;
            }
            c.commit().expect("smoke commit");
        }
        dry = if got_any { 0 } else { dry + 1 };
        sweeps += 1;
        if sweeps > 50 {
            fail("rebalance did not converge within 50 sweeps");
        }
    }

    let unassigned = svc.groups().unassigned("g");
    if !unassigned.is_empty() {
        fail(&format!("{} partitions left unassigned: {:?}", unassigned.len(), &unassigned[..unassigned.len().min(5)]));
    }
    if seen.len() != produced {
        fail(&format!("delivered {} of {produced} records", seen.len()));
    }
    if let Some(((p, o), n)) = seen.iter().find(|(_, &n)| n != 1) {
        fail(&format!("partition {p} offset {o} delivered {n} times"));
    }
    println!(
        "stream_scale: ok — {} partitions, {} members live, {} records exactly-once, {} rebalances journaled",
        PARTITIONS,
        active.len(),
        produced,
        svc.metrics().counter("stream.group.rebalances"),
    );
}
