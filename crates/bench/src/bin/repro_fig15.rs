//! Regenerate Fig 15. `cargo run --release -p bench --bin repro_fig15`

fn main() {
    // partitions scaled ~10x down from the paper's 960..9600 hour range
    let points = bench::fig15::partition_sweep(&[96, 192, 384, 768, 960], 5, 25);
    let testbed = bench::fig15::build_testbed(96, 5);
    let budgets = bench::fig15::default_budgets(&testbed);
    let memory = bench::fig15::memory_sweep(&testbed, &budgets, 10);
    bench::fig15::print(&points, &memory);
}
