//! Regenerate Table 1. `cargo run --release -p bench --bin repro_table1`

fn main() {
    let rows = bench::table1::run(&bench::table1::default_sizes());
    bench::table1::print(&rows);
}
