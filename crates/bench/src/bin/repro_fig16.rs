//! Regenerate Fig 16. `cargo run --release -p bench --bin repro_fig16`

fn main() {
    // (a) data volumes expressed as ingest pressure (scaled from 24..90 GB)
    let compaction = bench::fig16::compaction_sweep(&[3.0, 5.0, 7.0, 9.0], 24, 300);
    // (b)/(c) scale factors (scaled from TPC-H SF 2, 5, 10, 100)
    let partitions = bench::fig16::partition_sweep(&[1.0, 2.0, 5.0, 10.0]);
    bench::fig16::print(&compaction, &partitions);
    let (spn_err, sample_err) = bench::fig16::estimator_ablation(6_000, 60);
    println!(
        "\nEstimator ablation: mean |selectivity error| spn={spn_err:.4} sampling(3%)={sample_err:.4}"
    );
}
