//! Tenant-isolation SLO smoke: the noisy-neighbor scenario end to end.
//!
//! Drives two tenants through the multi-tenant front door in virtual time:
//! a quiet tenant at its fair share (one foreground produce per 10 ms,
//! mid-step) and a noisy tenant bursting 10× its fair share at step
//! boundaries. Prints the quiet tenant's produce p99 quiesced vs contended,
//! the noisy tenant's admission counters, and the journal digest of each
//! run; exits non-zero if
//!
//! * the quiet p99 degrades beyond 1.5× the quiesced baseline (the SLO),
//! * the rate limiter leaks more than the refill + burst allowance, or
//! * two same-seed contended runs disagree on p99 or journal digest.
//!
//! Everything runs on the virtual clock, so the pass/fail is deterministic;
//! `scripts/check.sh` runs this binary as part of the local gate.

use common::clock::{secs, Nanos};
use common::ctx::{IoCtx, QosClass};
use std::sync::Arc;
use streamlake::{FrontDoor, FrontDoorConfig, StreamLake, StreamLakeConfig};
use workloads::LatencyRecorder;

/// Each tenant's fair share, requests per virtual second.
const FAIR_RATE: u64 = 100;
/// Quiet-tenant samples per run (2 virtual seconds at one per 10 ms).
const QUIET_SAMPLES: u64 = 200;
/// The noisy tenant's offered load, as a multiple of its fair share.
const NOISY_MULTIPLE: u64 = 10;
/// The SLO: contended p99 must stay within 3/2 of the quiesced baseline.
const SLO_NUM: u64 = 3;
const SLO_DEN: u64 = 2;

struct RunOutcome {
    quiet_p99: Nanos,
    noisy_admitted: u64,
    noisy_limited: u64,
    digest: u64,
}

fn run(seed: u64, noisy_multiple: u64) -> RunOutcome {
    let lake = Arc::new(StreamLake::new(StreamLakeConfig::small()));
    lake.stream()
        .create_topic("bus", stream::TopicConfig::with_partitions(2))
        .expect("smoke topic");
    let door = FrontDoor::new(lake, FrontDoorConfig { seed, ..Default::default() });
    for (name, token) in [("quiet", "tok-quiet"), ("noisy", "tok-noisy")] {
        let p = door.register_tenant(name, token, FAIR_RATE);
        door.access().grant(&p, "topic/", streamlake::Permission::Write);
    }
    let mut quiet = LatencyRecorder::new();
    let step = secs(1) / FAIR_RATE;
    for i in 0..QUIET_SAMPLES {
        let burst_at = i * step;
        let ctx = IoCtx::new(burst_at).with_qos(QosClass::Foreground);
        for b in 0..noisy_multiple {
            let _ = door.produce("tok-noisy", "bus", format!("n{i}-{b}"), "x", &ctx);
        }
        let at = burst_at + step / 2;
        let ctx = IoCtx::new(at).with_qos(QosClass::Foreground);
        let ack = door
            .produce("tok-quiet", "bus", format!("q{i}"), "y", &ctx)
            .expect("quiet produce admitted")
            .expect("batch_size 1 acks every send");
        quiet.record(ack.ack_time.saturating_sub(at));
    }
    let noisy = door.tenant_stats("noisy").expect("noisy registered");
    RunOutcome {
        quiet_p99: quiet.percentile(0.99).expect("samples recorded"),
        noisy_admitted: noisy.admitted,
        noisy_limited: noisy.rate_limited,
        digest: door.journal_digest(),
    }
}

fn main() {
    let baseline = run(42, 0);
    let contended = run(42, NOISY_MULTIPLE);
    let replay = run(42, NOISY_MULTIPLE);

    println!(
        "quiet p99: {} ns quiesced -> {} ns with noisy tenant at {}x fair share",
        baseline.quiet_p99, contended.quiet_p99, NOISY_MULTIPLE
    );
    println!(
        "noisy tenant: {} admitted, {} rate-limited of {} offered",
        contended.noisy_admitted,
        contended.noisy_limited,
        QUIET_SAMPLES * NOISY_MULTIPLE
    );
    println!("journal digest: {:#018x}", contended.digest);

    let mut failed = false;
    if contended.quiet_p99 * SLO_DEN > baseline.quiet_p99 * SLO_NUM {
        eprintln!(
            "tenant_isolation: FAILED — quiet p99 degraded beyond {SLO_NUM}/{SLO_DEN}x \
             ({} ns -> {} ns)",
            baseline.quiet_p99, contended.quiet_p99
        );
        failed = true;
    }
    // Refill over the run plus the 50 ms burst depth.
    let allowance = FAIR_RATE * 2 + FAIR_RATE / 20 + 1;
    if contended.noisy_admitted > allowance {
        eprintln!(
            "tenant_isolation: FAILED — rate limiter leaked: {} admitted (allowance {})",
            contended.noisy_admitted, allowance
        );
        failed = true;
    }
    if replay.quiet_p99 != contended.quiet_p99 || replay.digest != contended.digest {
        eprintln!(
            "tenant_isolation: FAILED — same-seed replay diverged \
             (p99 {} vs {}, digest {:#x} vs {:#x})",
            contended.quiet_p99, replay.quiet_p99, contended.digest, replay.digest
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("tenant_isolation: ok — SLO held and the journal replayed");
}
