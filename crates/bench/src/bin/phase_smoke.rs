//! Latency-attribution smoke gate: a tiny Fig 14-style run that must
//! light up every span phase (`queue`, `device`, `wan`, `meta`).
//!
//! `scripts/check.sh` runs this after the tier-1 tests; it prints the
//! per-phase breakdown and exits nonzero when any phase records zero
//! samples, so a refactor that silently drops attribution fails CI.
//!
//! `cargo run --release -p bench --bin phase_smoke`

fn main() {
    let view = bench::fig14::phase_breakdown(400);
    bench::fig14::print_phase_breakdown(&view);
    let missing = bench::fig14::missing_phases(&view);
    if !missing.is_empty() {
        eprintln!("phase_smoke: FAILED — phases with zero samples: {missing:?}");
        std::process::exit(1);
    }
    println!("phase_smoke: ok — all {} phases attributed", bench::fig14::REQUIRED_PHASES.len());
}
