//! Regenerate the Fig 1(b) deployment summary.
//! `cargo run --release -p bench --bin repro_fig1`

fn main() {
    let summary = bench::fig1::run(40_000);
    bench::fig1::print(&summary);
}
