//! The multi-tenant front door: the service boundary where client traffic
//! actually arrives (ROADMAP item 3).
//!
//! The paper's StreamLake serves millions of tenants through one shared
//! storage plane; nothing reaches the engine without passing the access
//! layer first. [`FrontDoor`] models that boundary as a deterministic,
//! virtual-time request-processing pipeline over an existing
//! [`StreamLake`]:
//!
//! 1. **Auth + namespace** — the caller's token is authenticated and the
//!    target resource ACL-checked on [`AccessController`]; only valid user
//!    requests become internal requests.
//! 2. **Per-tenant rate limiting** — an integer nano-token bucket per
//!    tenant (the `stream::quota` design), rejecting with a retryable
//!    [`Error::RateLimited`] carrying an *exact* refill hint.
//! 3. **Admission control** — under foreground tail-latency pressure
//!    (windowed p99 over the same `qos.foreground.*` histograms the chore
//!    runtime samples), Background/Maintenance-QoS requests are shed with
//!    a retryable [`Error::Overloaded`]; foreground traffic always passes.
//! 4. **Circuit breakers** — a pool breaker keyed on `simdisk` device
//!    health (failed / suspect counters) and a per-tenant breaker keyed on
//!    consecutive downstream errors. Closed→Open→HalfOpen transitions run
//!    on the virtual clock with seeded jitter, so a chaos run replays its
//!    transition journal byte-for-byte.
//!
//! Every decision is journaled ([`AdmissionEvent`], [`BreakerTransition`]):
//! two same-seed runs over the same arrival schedule must produce
//! identical journals — that journal equality *is* the tenant-isolation
//! determinism contract the SLO suite pins.

use crate::access::{AccessController, Permission, Principal};
use crate::system::StreamLake;
use common::clock::{millis, Nanos};
use common::ctx::{IoCtx, QosClass, QOS_PREFIX};
use common::lockwitness::TrackedMutex;
use common::{Error, Result};
use std::collections::BTreeMap;
use std::sync::Arc;
use stream::object::AppendAck;
use stream::{ConsumedRecord, Consumer, Producer};

/// Nano-tokens per token (shared with `stream::quota`): refill math stays
/// in integers because `tokens/sec × elapsed_ns` *is* the nano-token count.
const NANO: u128 = 1_000_000_000;

/// Cap on the open-duration doubling exponent so repeated trips never
/// overflow the clock.
const OPEN_BACKOFF_MAX_EXP: u32 = 10;

/// What kind of engine operation a request maps to; determines the ACL
/// permission checked in stage 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Produce records into a topic.
    Produce,
    /// Consume records from a topic.
    Consume,
    /// Read from a lakehouse table.
    TableRead,
    /// Write to a lakehouse table.
    TableWrite,
}

impl RequestKind {
    /// The ACL permission stage 1 requires.
    pub fn permission(self) -> Permission {
        match self {
            RequestKind::Produce | RequestKind::TableWrite => Permission::Write,
            RequestKind::Consume | RequestKind::TableRead => Permission::Read,
        }
    }

    /// Stable lower-case name (journals, metrics).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Produce => "produce",
            RequestKind::Consume => "consume",
            RequestKind::TableRead => "table_read",
            RequestKind::TableWrite => "table_write",
        }
    }
}

/// Admission-control (stage 3) policy.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Windowed foreground p99 (queue or device phase) above this sheds
    /// non-foreground requests.
    pub p99_threshold: Nanos,
    /// Recent-sample window the p99 is computed over.
    pub window: usize,
    /// Retry-after hint attached to shed requests.
    pub retry_after: Nanos,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { p99_threshold: millis(2), window: 256, retry_after: millis(1) }
    }
}

/// Circuit-breaker (stage 4) policy.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive downstream errors that open a tenant's breaker.
    pub tenant_error_trip: u32,
    /// The pool breaker trips when more than this many devices are
    /// hard-failed.
    pub max_failed_devices: usize,
    /// … or when more than this many devices are suspect (gray failures).
    pub max_suspect_devices: usize,
    /// Base open duration before the first half-open probe; doubles per
    /// consecutive trip (capped).
    pub open_base: Nanos,
    /// Span of the seeded jitter added to each probe time, so breaker
    /// probe schedules decorrelate across keys yet replay per seed.
    pub probe_jitter: Nanos,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            tenant_error_trip: 5,
            max_failed_devices: 0,
            max_suspect_devices: 3,
            open_base: millis(100),
            probe_jitter: millis(20),
        }
    }
}

/// Front-door construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct FrontDoorConfig {
    /// Seed for the deterministic breaker probe jitter.
    pub seed: u64,
    /// Token-bucket rate (requests/virtual second) for tenants admitted
    /// without an explicit rate.
    pub default_rate: u64,
    /// Token-bucket depth, as a span of virtual time at the tenant's rate
    /// (never below one whole token). A small window keeps an idle-then-
    /// bursting tenant from dumping seconds of banked tokens onto the
    /// devices at one instant — the burst a tenant can ever land is
    /// `rate × burst_window`.
    pub burst_window: Nanos,
    /// Stage-3 admission policy.
    pub admission: AdmissionConfig,
    /// Stage-4 breaker policy.
    pub breaker: BreakerConfig,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        FrontDoorConfig {
            seed: 42,
            default_rate: 1000,
            burst_window: millis(50),
            admission: AdmissionConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Circuit-breaker phase (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Requests flow; health is checked on every admission.
    Closed,
    /// Requests are rejected until the scheduled probe time.
    Open,
    /// Probe requests flow; their outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable lower-case name (journals).
    pub fn name(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }
}

/// The front door's verdict on one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The request passed every stage (`probe` marks half-open probes).
    Admitted {
        /// Whether the request doubles as a breaker probe.
        probe: bool,
    },
    /// Stage 1 rejected the token or the ACL check.
    AuthDenied,
    /// Stage 2: the tenant's token bucket was empty.
    RateLimited {
        /// Exact virtual-time refill hint.
        retry_after: Nanos,
    },
    /// Stage 3: shed under foreground pressure (non-foreground QoS only).
    Shed {
        /// Configured retry hint.
        retry_after: Nanos,
    },
    /// Stage 4: an open breaker rejected the request.
    BreakerOpen {
        /// Which breaker (`pool/ssd` or `tenant/<name>`).
        breaker: String,
        /// Time until the next half-open probe.
        retry_after: Nanos,
    },
}

/// One journaled admission decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// Virtual time of the decision.
    pub at: Nanos,
    /// Tenant name (`None` when authentication itself failed).
    pub tenant: Option<String>,
    /// Request kind.
    pub kind: RequestKind,
    /// The verdict.
    pub decision: Decision,
}

/// One journaled breaker state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Virtual time of the transition.
    pub at: Nanos,
    /// Breaker key (`pool/ssd` or `tenant/<name>`).
    pub breaker: String,
    /// Phase before.
    pub from: BreakerPhase,
    /// Phase after.
    pub to: BreakerPhase,
}

/// Proof that a request passed the pipeline; hand it back to
/// [`FrontDoor::report`] with the downstream outcome so breakers learn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permit {
    /// The admitted tenant.
    pub tenant: String,
    /// This request is the pool breaker's half-open probe.
    pub pool_probe: bool,
    /// This request is the tenant breaker's half-open probe.
    pub tenant_probe: bool,
}

/// Point-in-time per-tenant counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests admitted (probes included).
    pub admitted: u64,
    /// Requests rejected by the token bucket.
    pub rate_limited: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests rejected by an open breaker (pool or tenant).
    pub breaker_rejected: u64,
    /// Downstream errors observed since the last success.
    pub consecutive_errors: u32,
    /// The tenant breaker's current phase.
    pub breaker_phase: BreakerPhase,
}

#[derive(Debug)]
struct Breaker {
    key: String,
    /// Stable index fed to the jitter hash (probe schedules decorrelate
    /// across breakers but replay per seed).
    idx: u64,
    phase: BreakerPhase,
    open_until: Nanos,
    trips: u32,
}

impl Breaker {
    fn new(key: String, idx: u64) -> Self {
        Breaker { key, idx, phase: BreakerPhase::Closed, open_until: 0, trips: 0 }
    }
}

#[derive(Debug)]
struct NanoBucket {
    rate: u64,
    burst_window: Nanos,
    nano: u128,
    last: Nanos,
}

impl NanoBucket {
    fn new(rate: u64, burst_window: Nanos) -> Self {
        let cap = Self::capacity(rate, burst_window);
        NanoBucket { rate, burst_window, nano: cap, last: 0 }
    }

    /// Bucket depth in nano-tokens: `rate × burst_window`, floored at one
    /// whole token so any nonzero rate can make progress. Rate 0 holds
    /// nothing.
    fn capacity(rate: u64, burst_window: Nanos) -> u128 {
        if rate == 0 {
            return 0;
        }
        (rate as u128 * burst_window as u128).max(NANO)
    }

    /// Admit `n` request-tokens at `now`, or the exact virtual-time wait
    /// until the bucket will have refilled enough.
    fn try_acquire(&mut self, n: u64, now: Nanos) -> std::result::Result<(), Nanos> {
        if now > self.last {
            let elapsed = (now - self.last) as u128;
            let cap = Self::capacity(self.rate, self.burst_window);
            self.nano = (self.nano + elapsed * self.rate as u128).min(cap);
            self.last = now;
        }
        let need = n as u128 * NANO;
        if self.nano >= need {
            self.nano -= need;
            Ok(())
        } else if self.rate == 0 {
            Err(Nanos::MAX)
        } else {
            let deficit = need - self.nano;
            let wait = deficit.div_ceil(self.rate as u128);
            Err(wait.min(Nanos::MAX as u128) as Nanos)
        }
    }
}

struct TenantState {
    bucket: NanoBucket,
    breaker: Breaker,
    consecutive_errors: u32,
    admitted: u64,
    rate_limited: u64,
    shed: u64,
    breaker_rejected: u64,
    producer: Producer,
    consumers: BTreeMap<String, Consumer>,
}

struct DoorState {
    /// Ordered so iteration (stats, debugging) is deterministic.
    tenants: BTreeMap<String, TenantState>,
    pool_breaker: Breaker,
    next_tenant_idx: u64,
}

#[derive(Default)]
struct Journal {
    admissions: Vec<AdmissionEvent>,
    transitions: Vec<BreakerTransition>,
}

/// The front door over one [`StreamLake`] deployment. See the module docs
/// for the pipeline contract.
pub struct FrontDoor {
    lake: Arc<StreamLake>,
    access: AccessController,
    config: FrontDoorConfig,
    state: TrackedMutex<DoorState>,
    journal: TrackedMutex<Journal>,
}

impl std::fmt::Debug for FrontDoor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FrontDoor")
            .field("tenants", &st.tenants.keys().collect::<Vec<_>>())
            .field("pool_breaker", &st.pool_breaker.phase)
            .field("seed", &self.config.seed)
            .finish()
    }
}

impl FrontDoor {
    /// A front door routing into `lake`.
    pub fn new(lake: Arc<StreamLake>, config: FrontDoorConfig) -> Self {
        FrontDoor {
            lake,
            access: AccessController::new(),
            config,
            state: TrackedMutex::new("core.frontdoor.state", DoorState {
                tenants: BTreeMap::new(),
                pool_breaker: Breaker::new("pool/ssd".to_string(), 0),
                next_tenant_idx: 1,
            }),
            journal: TrackedMutex::new("core.frontdoor.journal", Journal::default()),
        }
    }

    /// The deployment behind this door.
    pub fn lake(&self) -> &Arc<StreamLake> {
        &self.lake
    }

    /// The auth/ACL surface (register tokens, grant resource prefixes).
    pub fn access(&self) -> &AccessController {
        &self.access
    }

    /// Register a tenant: create its principal/token and its token bucket
    /// at `rate_per_sec`. Grants are separate — use
    /// [`AccessController::grant`] via [`FrontDoor::access`].
    pub fn register_tenant(&self, name: &str, token: &str, rate_per_sec: u64) -> Principal {
        let principal = self.access.register(name, token);
        let mut st = self.state.lock();
        let idx = st.next_tenant_idx;
        st.next_tenant_idx += 1;
        let producer = self.new_producer();
        st.tenants.entry(name.to_string()).or_insert_with(|| TenantState {
            bucket: NanoBucket::new(rate_per_sec, self.config.burst_window),
            breaker: Breaker::new(format!("tenant/{name}"), idx),
            consecutive_errors: 0,
            admitted: 0,
            rate_limited: 0,
            shed: 0,
            breaker_rejected: 0,
            producer,
            consumers: BTreeMap::new(),
        });
        principal
    }

    fn new_producer(&self) -> Producer {
        let mut p = self.lake.stream().producer();
        // Front-door sends are synchronous: one record, one ack, so each
        // admitted request observes its own device latency.
        p.set_batch_size(1);
        p
    }

    /// Run the four pipeline stages for one request. `Ok` returns a
    /// [`Permit`] the caller must [`report`](FrontDoor::report) the
    /// downstream outcome through; `Err` is one of the journaled
    /// rejections (auth, rate limit, shed, breaker).
    pub fn admit(
        &self,
        token: &str,
        kind: RequestKind,
        resource: &str,
        cost: u64,
        ctx: &IoCtx,
    ) -> Result<Permit> {
        let now = ctx.now;
        // Stage 1: auth + ACL (lock rank 15, released before stage 2).
        // Authentication and authorization are journaled apart: an ACL
        // denial names the tenant, an unknown token cannot.
        let principal = match self.access.authenticate(token) {
            Ok(p) => p,
            Err(e) => {
                self.push_admission(AdmissionEvent {
                    at: now,
                    tenant: None,
                    kind,
                    decision: Decision::AuthDenied,
                });
                self.lake.metrics().incr("frontdoor.auth_denied", 1);
                return Err(e);
            }
        };
        if !self.access.allowed(&principal, resource, kind.permission()) {
            self.push_admission(AdmissionEvent {
                at: now,
                tenant: Some(principal.0.clone()),
                kind,
                decision: Decision::AuthDenied,
            });
            self.lake.metrics().incr("frontdoor.auth_denied", 1);
            return Err(Error::InvalidArgument(format!(
                "access denied: {} lacks {:?} on {resource}",
                principal.0,
                kind.permission()
            )));
        }
        let tenant_name = principal.0;

        let mut st = self.state.lock();
        // Principals registered directly on the access controller get a
        // default-rate bucket on first contact.
        if !st.tenants.contains_key(&tenant_name) {
            let idx = st.next_tenant_idx;
            st.next_tenant_idx += 1;
            let producer = self.new_producer();
            st.tenants.insert(tenant_name.clone(), TenantState {
                bucket: NanoBucket::new(self.config.default_rate, self.config.burst_window),
                breaker: Breaker::new(format!("tenant/{tenant_name}"), idx),
                consecutive_errors: 0,
                admitted: 0,
                rate_limited: 0,
                shed: 0,
                breaker_rejected: 0,
                producer,
                consumers: BTreeMap::new(),
            });
        }

        // Stage 2: per-tenant token bucket.
        let tenant = match st.tenants.get_mut(&tenant_name) {
            Some(t) => t,
            None => return Err(Error::NotFound(format!("tenant {tenant_name}"))),
        };
        if let Err(retry_after) = tenant.bucket.try_acquire(cost, now) {
            tenant.rate_limited += 1;
            let rate = tenant.bucket.rate;
            drop(st);
            self.push_admission(AdmissionEvent {
                at: now,
                tenant: Some(tenant_name.clone()),
                kind,
                decision: Decision::RateLimited { retry_after },
            });
            self.lake.metrics().incr("frontdoor.rate_limited", 1);
            return Err(Error::RateLimited {
                message: format!("tenant {tenant_name} over rate {rate}/s"),
                retry_after,
            });
        }

        // Stage 3: admission control — non-foreground traffic is shed
        // while the windowed foreground p99 is over threshold.
        if !ctx.qos.is_foreground() && self.foreground_pressured() {
            let retry_after = self.config.admission.retry_after;
            tenant.shed += 1;
            drop(st);
            self.push_admission(AdmissionEvent {
                at: now,
                tenant: Some(tenant_name.clone()),
                kind,
                decision: Decision::Shed { retry_after },
            });
            self.lake.metrics().incr("frontdoor.shed", 1);
            return Err(Error::Overloaded {
                message: format!("{} request shed under foreground pressure", ctx.qos.name()),
                retry_after,
            });
        }

        // Stage 4: circuit breakers — pool health first, then the tenant's
        // own error-rate breaker.
        let pool_unhealthy = self.pool_unhealthy();
        let pool_probe = match self.gate(&mut st.pool_breaker, pool_unhealthy, now) {
            Ok(probe) => probe,
            Err((breaker, retry_after)) => {
                if let Some(t) = st.tenants.get_mut(&tenant_name) {
                    t.breaker_rejected += 1;
                }
                drop(st);
                return Err(self.reject_breaker(now, &tenant_name, kind, breaker, retry_after));
            }
        };
        let tenant = match st.tenants.get_mut(&tenant_name) {
            Some(t) => t,
            None => return Err(Error::NotFound(format!("tenant {tenant_name}"))),
        };
        // A tenant breaker only trips from `report`, never at admission.
        let tenant_probe = match self.gate(&mut tenant.breaker, false, now) {
            Ok(probe) => probe,
            Err((breaker, retry_after)) => {
                tenant.breaker_rejected += 1;
                drop(st);
                return Err(self.reject_breaker(now, &tenant_name, kind, breaker, retry_after));
            }
        };

        tenant.admitted += 1;
        drop(st);
        self.push_admission(AdmissionEvent {
            at: now,
            tenant: Some(tenant_name.clone()),
            kind,
            decision: Decision::Admitted { probe: pool_probe || tenant_probe },
        });
        self.lake.metrics().incr("frontdoor.admitted", 1);
        if pool_probe || tenant_probe {
            self.lake.metrics().incr("frontdoor.probes", 1);
        }
        Ok(Permit { tenant: tenant_name, pool_probe, tenant_probe })
    }

    /// Feed the downstream outcome of an admitted request back into the
    /// breakers: probes close or re-open their breaker; ordinary failures
    /// grow the tenant's error streak until it trips.
    pub fn report(&self, permit: &Permit, ok: bool, ctx: &IoCtx) {
        let now = ctx.now;
        let mut st = self.state.lock();
        if permit.pool_probe && st.pool_breaker.phase == BreakerPhase::HalfOpen {
            let still_unhealthy = self.pool_unhealthy();
            if ok && !still_unhealthy {
                self.close(&mut st.pool_breaker, now);
            } else {
                self.trip(&mut st.pool_breaker, now);
            }
        }
        let Some(tenant) = st.tenants.get_mut(&permit.tenant) else { return };
        if permit.tenant_probe && tenant.breaker.phase == BreakerPhase::HalfOpen {
            if ok {
                self.close(&mut tenant.breaker, now);
                tenant.consecutive_errors = 0;
            } else {
                self.trip(&mut tenant.breaker, now);
            }
        } else if ok {
            tenant.consecutive_errors = 0;
        } else {
            tenant.consecutive_errors += 1;
            if tenant.consecutive_errors >= self.config.breaker.tenant_error_trip
                && tenant.breaker.phase == BreakerPhase::Closed
            {
                self.trip(&mut tenant.breaker, now);
                tenant.consecutive_errors = 0;
            }
        }
    }

    /// Admit, run `f` against the engine, and report the outcome — the
    /// generic route for table and admin operations.
    pub fn with_lake<T>(
        &self,
        token: &str,
        kind: RequestKind,
        resource: &str,
        cost: u64,
        ctx: &IoCtx,
        f: impl FnOnce(&StreamLake) -> Result<T>,
    ) -> Result<T> {
        let permit = self.admit(token, kind, resource, cost, ctx)?;
        let out = f(&self.lake);
        self.report(&permit, out.is_ok(), ctx);
        out
    }

    /// Produce one record through the pipeline (resource `topic/<topic>`,
    /// cost 1).
    pub fn produce(
        &self,
        token: &str,
        topic: &str,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
        ctx: &IoCtx,
    ) -> Result<Option<AppendAck>> {
        let resource = format!("topic/{topic}");
        let permit = self.admit(token, RequestKind::Produce, &resource, 1, ctx)?;
        let out = {
            let mut st = self.state.lock();
            let tenant = st
                .tenants
                .get_mut(&permit.tenant)
                .ok_or_else(|| Error::NotFound(format!("tenant {}", permit.tenant)))?;
            tenant.producer.send(topic, key, value, ctx)
        };
        self.report(&permit, out.is_ok(), ctx);
        out
    }

    /// Poll up to `max_records` from `topic` as `group`, through the
    /// pipeline (resource `topic/<topic>`, cost 1). The consumer handle is
    /// owned per (tenant, group) so offsets persist across calls.
    pub fn consume(
        &self,
        token: &str,
        group: &str,
        topic: &str,
        max_records: usize,
        ctx: &IoCtx,
    ) -> Result<Vec<ConsumedRecord>> {
        let resource = format!("topic/{topic}");
        let permit = self.admit(token, RequestKind::Consume, &resource, 1, ctx)?;
        let out = {
            let mut st = self.state.lock();
            let tenant = st
                .tenants
                .get_mut(&permit.tenant)
                .ok_or_else(|| Error::NotFound(format!("tenant {}", permit.tenant)))?;
            let consumer = tenant
                .consumers
                .entry(group.to_string())
                .or_insert_with(|| self.lake.stream().consumer(group));
            consumer.subscribe(topic).and_then(|()| consumer.poll(max_records, ctx))
        };
        self.report(&permit, out.is_ok(), ctx);
        out
    }

    /// Per-tenant counters, if the tenant exists.
    pub fn tenant_stats(&self, name: &str) -> Option<TenantStats> {
        let st = self.state.lock();
        st.tenants.get(name).map(|t| TenantStats {
            admitted: t.admitted,
            rate_limited: t.rate_limited,
            shed: t.shed,
            breaker_rejected: t.breaker_rejected,
            consecutive_errors: t.consecutive_errors,
            breaker_phase: t.breaker.phase,
        })
    }

    /// The pool breaker's current phase.
    pub fn pool_breaker_phase(&self) -> BreakerPhase {
        self.state.lock().pool_breaker.phase
    }

    /// Every admission decision since construction, in order.
    pub fn admission_journal(&self) -> Vec<AdmissionEvent> {
        self.journal.lock().admissions.clone()
    }

    /// Every breaker transition since construction, in order.
    pub fn breaker_journal(&self) -> Vec<BreakerTransition> {
        self.journal.lock().transitions.clone()
    }

    /// FNV-1a digest over both journals — cheap byte-identity witness for
    /// high-volume harnesses that don't want to clone full journals.
    pub fn journal_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        let j = self.journal.lock();
        for e in &j.admissions {
            eat(&e.at.to_le_bytes());
            eat(e.tenant.as_deref().unwrap_or("?").as_bytes());
            eat(e.kind.name().as_bytes());
            let (tag, retry): (u8, Nanos) = match &e.decision {
                Decision::Admitted { probe } => (u8::from(*probe), 0),
                Decision::AuthDenied => (2, 0),
                Decision::RateLimited { retry_after } => (3, *retry_after),
                Decision::Shed { retry_after } => (4, *retry_after),
                Decision::BreakerOpen { retry_after, .. } => (5, *retry_after),
            };
            eat(&[tag]);
            eat(&retry.to_le_bytes());
        }
        for t in &j.transitions {
            eat(&t.at.to_le_bytes());
            eat(t.breaker.as_bytes());
            eat(t.from.name().as_bytes());
            eat(t.to.name().as_bytes());
        }
        h
    }

    /// Whether the windowed foreground p99 (queue or device phase) is over
    /// the admission threshold — the same signal the chore runtime's
    /// backpressure samples.
    fn foreground_pressured(&self) -> bool {
        let window = self.config.admission.window;
        let metrics = self.lake.metrics();
        let fg = QosClass::Foreground.name();
        let queue = metrics.histogram_tail(&format!("{QOS_PREFIX}{fg}.queue"), window);
        let device = metrics.histogram_tail(&format!("{QOS_PREFIX}{fg}.device"), window);
        let p99 = match (queue, device) {
            (Some(q), Some(d)) => q.p99.max(d.p99),
            (Some(q), None) => q.p99,
            (None, Some(d)) => d.p99,
            (None, None) => return false,
        };
        p99 > self.config.admission.p99_threshold
    }

    /// Whether the hot pool's device health is past the breaker thresholds.
    fn pool_unhealthy(&self) -> bool {
        let summary = self.lake.ssd_pool().health_summary();
        summary.failed > self.config.breaker.max_failed_devices
            || summary.suspect > self.config.breaker.max_suspect_devices
    }

    /// One breaker's admission gate. `Ok(probe)` admits; `Err((key,
    /// retry_after))` rejects. `unhealthy` trips a closed breaker on the
    /// spot (pool breaker); tenant breakers pass `false` and trip from
    /// [`report`](FrontDoor::report) instead.
    fn gate(
        &self,
        b: &mut Breaker,
        unhealthy: bool,
        now: Nanos,
    ) -> std::result::Result<bool, (String, Nanos)> {
        match b.phase {
            BreakerPhase::Closed => {
                if unhealthy {
                    let retry_after = self.trip(b, now);
                    Err((b.key.clone(), retry_after))
                } else {
                    Ok(false)
                }
            }
            BreakerPhase::Open => {
                if now < b.open_until {
                    Err((b.key.clone(), b.open_until - now))
                } else {
                    b.phase = BreakerPhase::HalfOpen;
                    self.push_transition(BreakerTransition {
                        at: now,
                        breaker: b.key.clone(),
                        from: BreakerPhase::Open,
                        to: BreakerPhase::HalfOpen,
                    });
                    Ok(true)
                }
            }
            // Every request arriving half-open probes; the journal's
            // Admitted{probe} entries record how many it took to settle.
            BreakerPhase::HalfOpen => Ok(true),
        }
    }

    /// Open `b` (from any phase): double the open window per consecutive
    /// trip and schedule the next probe with seeded jitter. Returns the
    /// retry-after span.
    fn trip(&self, b: &mut Breaker, now: Nanos) -> Nanos {
        let from = b.phase;
        b.trips += 1;
        let exp = (b.trips - 1).min(OPEN_BACKOFF_MAX_EXP);
        let open = self.config.breaker.open_base.saturating_mul(1 << exp);
        let jitter = seeded_jitter(self.config.seed, b.idx, b.trips, self.config.breaker.probe_jitter);
        b.open_until = now.saturating_add(open).saturating_add(jitter);
        b.phase = BreakerPhase::Open;
        self.push_transition(BreakerTransition {
            at: now,
            breaker: b.key.clone(),
            from,
            to: BreakerPhase::Open,
        });
        self.lake.metrics().incr("frontdoor.breaker.trips", 1);
        b.open_until - now
    }

    /// Close `b` after a successful probe; the trip streak resets so the
    /// next incident starts from the base open window.
    fn close(&self, b: &mut Breaker, now: Nanos) {
        let from = b.phase;
        b.phase = BreakerPhase::Closed;
        b.trips = 0;
        b.open_until = 0;
        self.push_transition(BreakerTransition {
            at: now,
            breaker: b.key.clone(),
            from,
            to: BreakerPhase::Closed,
        });
    }

    /// Journal + metrics for a breaker rejection; returns the error.
    fn reject_breaker(
        &self,
        now: Nanos,
        tenant: &str,
        kind: RequestKind,
        breaker: String,
        retry_after: Nanos,
    ) -> Error {
        self.push_admission(AdmissionEvent {
            at: now,
            tenant: Some(tenant.to_string()),
            kind,
            decision: Decision::BreakerOpen { breaker: breaker.clone(), retry_after },
        });
        self.lake.metrics().incr("frontdoor.breaker_rejected", 1);
        Error::Overloaded { message: format!("breaker {breaker} open"), retry_after }
    }

    fn push_admission(&self, event: AdmissionEvent) {
        self.journal.lock().admissions.push(event);
    }

    fn push_transition(&self, transition: BreakerTransition) {
        self.journal.lock().transitions.push(transition);
    }
}

/// Deterministic jitter in `[0, span)`: an xorshift64* hash of
/// `(seed, breaker index, trip count)` — the same construction as the
/// chore runtime's retry jitter, so probe schedules are pure functions of
/// the seed.
fn seeded_jitter(seed: u64, breaker_idx: u64, trips: u32, span: Nanos) -> Nanos {
    let mut x = seed
        ^ breaker_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(trips).wrapping_mul(0xD1B5_4A32_D192_ED03)
        | 1;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D) % span.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{StreamLakeConfig};
    use common::clock::secs;
    use stream::TopicConfig;

    fn door() -> FrontDoor {
        let lake = Arc::new(StreamLake::new(StreamLakeConfig::small()));
        lake.stream().create_topic("t", TopicConfig::with_partitions(2)).unwrap();
        let fd = FrontDoor::new(lake, FrontDoorConfig::default());
        let p = fd.register_tenant("alice", "tok-a", 100);
        fd.access().grant(&p, "topic/", Permission::Write);
        fd.access().grant(&p, "topic/", Permission::Read);
        fd
    }

    fn fg(now: Nanos) -> IoCtx {
        IoCtx::new(now).with_qos(QosClass::Foreground)
    }

    #[test]
    fn auth_gate_rejects_unknown_tokens_and_missing_grants() {
        let fd = door();
        let ctx = fg(0);
        assert!(fd.admit("nope", RequestKind::Produce, "topic/t", 1, &ctx).is_err());
        // alice holds topic/ grants but nothing on table/
        assert!(fd.admit("tok-a", RequestKind::TableWrite, "table/x", 1, &ctx).is_err());
        let journal = fd.admission_journal();
        assert_eq!(journal.len(), 2);
        assert!(journal.iter().all(|e| e.decision == Decision::AuthDenied));
        assert_eq!(journal[0].tenant, None);
        assert_eq!(journal[1].tenant, Some("alice".into()), "authenticated, ACL-denied");
    }

    #[test]
    fn rate_limit_hint_is_exact_and_retryable() {
        let fd = door();
        // The burst depth is 50 ms at 100/s = 5 tokens; drain it, then the
        // next request is limited.
        for _ in 0..5 {
            fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(0)).unwrap();
        }
        let err = fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(0)).unwrap_err();
        assert!(err.is_retryable());
        let hint = err.retry_after().expect("rate limit carries a hint");
        // 1 token at 100/s refills in exactly 10 ms.
        assert_eq!(hint, millis(10));
        // One nanosecond early still rejects; at the hint it admits.
        assert!(fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(hint - 1)).is_err());
        assert!(fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(hint)).is_ok());
    }

    #[test]
    fn idle_time_banks_at_most_the_burst_window() {
        let fd = door();
        // 100 virtual seconds idle still refill only to the 5-token cap,
        // so a sleeper tenant cannot dump banked seconds onto the devices.
        let t = secs(100);
        for _ in 0..5 {
            fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(t)).unwrap();
        }
        let err = fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(t)).unwrap_err();
        assert!(matches!(err, Error::RateLimited { .. }));
    }

    #[test]
    fn background_requests_shed_under_foreground_pressure() {
        let fd = door();
        // Synthesize foreground tail pressure in the shared histograms.
        for _ in 0..64 {
            fd.lake().metrics().observe("qos.foreground.queue", millis(5));
        }
        let bg = IoCtx::new(0).with_qos(QosClass::Background);
        let err = fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &bg).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }), "{err}");
        assert!(err.is_retryable());
        // Foreground traffic always passes stage 3.
        assert!(fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(0)).is_ok());
        let stats = fd.tenant_stats("alice").unwrap();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.admitted, 1);
    }

    #[test]
    fn pool_breaker_opens_on_device_death_and_probe_heals() {
        let fd = door();
        fd.produce("tok-a", "t", "k", "v", &fg(0)).unwrap();
        assert_eq!(fd.pool_breaker_phase(), BreakerPhase::Closed);
        fd.lake().ssd_pool().device(0).fail();
        // Death trips the breaker at the next admission.
        let err = fd.produce("tok-a", "t", "k", "v", &fg(millis(1))).unwrap_err();
        let retry = err.retry_after().expect("breaker rejection carries a hint");
        assert_eq!(fd.pool_breaker_phase(), BreakerPhase::Open);
        // Still open before the probe time.
        assert!(fd.produce("tok-a", "t", "k", "v", &fg(millis(2))).is_err());
        // Heal the device, then probe at the scheduled time: closes.
        fd.lake().ssd_pool().device(0).heal();
        let probe_at = millis(1) + retry;
        fd.produce("tok-a", "t", "k", "v", &fg(probe_at)).unwrap();
        assert_eq!(fd.pool_breaker_phase(), BreakerPhase::Closed);
        let phases: Vec<(BreakerPhase, BreakerPhase)> = fd
            .breaker_journal()
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(phases, vec![
            (BreakerPhase::Closed, BreakerPhase::Open),
            (BreakerPhase::Open, BreakerPhase::HalfOpen),
            (BreakerPhase::HalfOpen, BreakerPhase::Closed),
        ]);
    }

    #[test]
    fn failed_probe_reopens_with_longer_window() {
        let fd = door();
        fd.lake().ssd_pool().device(0).fail();
        let err = fd.admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(0)).unwrap_err();
        let first_retry = err.retry_after().unwrap();
        // Probe while the device is still dead: the pipeline admits the
        // probe, but the downstream health check re-opens.
        let probe = fd
            .admit("tok-a", RequestKind::Produce, "topic/t", 1, &fg(first_retry))
            .unwrap();
        assert!(probe.pool_probe);
        fd.report(&probe, true, &fg(first_retry));
        assert_eq!(fd.pool_breaker_phase(), BreakerPhase::Open);
        // The second open window is at least double the base.
        let reopened = fd.breaker_journal().last().cloned().unwrap();
        assert_eq!((reopened.from, reopened.to), (BreakerPhase::HalfOpen, BreakerPhase::Open));
    }

    #[test]
    fn tenant_breaker_trips_on_consecutive_downstream_errors() {
        let fd = door();
        let p = fd.access().register("tenant-only", "tok-t");
        fd.access().grant(&p, "table/", Permission::Write);
        let trip = FrontDoorConfig::default().breaker.tenant_error_trip;
        for i in 0..trip {
            let err = fd.with_lake(
                "tok-t",
                RequestKind::TableWrite,
                "table/x",
                1,
                &fg(u64::from(i)),
                |_| -> Result<()> { Err(Error::Io("downstream blew up".into())) },
            );
            assert!(err.is_err());
        }
        let stats = fd.tenant_stats("tenant-only").unwrap();
        assert_eq!(stats.breaker_phase, BreakerPhase::Open);
        // Next request is rejected by the tenant breaker, not the pool's.
        let err = fd
            .admit("tok-t", RequestKind::TableWrite, "table/x", 1, &fg(secs(0)))
            .unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }));
        let j = fd.admission_journal();
        let last = j.last().unwrap();
        assert!(
            matches!(&last.decision, Decision::BreakerOpen { breaker, .. } if breaker == "tenant/tenant-only"),
            "{last:?}"
        );
        // A successful probe at the scheduled time closes it again.
        let retry = err.retry_after().unwrap();
        let probe = fd
            .admit("tok-t", RequestKind::TableWrite, "table/x", 1, &fg(retry))
            .unwrap();
        assert!(probe.tenant_probe);
        fd.report(&probe, true, &fg(retry));
        assert_eq!(fd.tenant_stats("tenant-only").unwrap().breaker_phase, BreakerPhase::Closed);
    }

    #[test]
    fn produce_and_consume_round_trip_through_the_door() {
        let fd = door();
        for i in 0..5u64 {
            fd.produce("tok-a", "t", format!("k{i}"), format!("v{i}"), &fg(i)).unwrap();
        }
        // The five sends drained the 5-token burst; one token refills at
        // 100/s after 10 ms.
        let records = fd.consume("tok-a", "g", "t", 100, &fg(millis(10))).unwrap();
        assert_eq!(records.len(), 5);
        let stats = fd.tenant_stats("alice").unwrap();
        assert_eq!(stats.admitted, 6);
    }

    #[test]
    fn same_seed_replays_identical_journals() {
        let run = |seed: u64| {
            let lake = Arc::new(StreamLake::new(StreamLakeConfig::small()));
            lake.stream().create_topic("t", TopicConfig::with_partitions(2)).unwrap();
            let fd = FrontDoor::new(lake, FrontDoorConfig { seed, ..Default::default() });
            let p = fd.register_tenant("a", "tok", 10);
            fd.access().grant(&p, "topic/", Permission::Write);
            // A schedule that exercises admits, rate limits, a device
            // death trip, and a healed probe.
            for i in 0..20u64 {
                let t = i * millis(25);
                if i == 6 {
                    fd.lake().ssd_pool().device(1).fail();
                }
                if i == 12 {
                    fd.lake().ssd_pool().device(1).heal();
                }
                let _ = fd.produce("tok", "t", "k", "v", &fg(t));
            }
            (fd.admission_journal(), fd.breaker_journal(), fd.journal_digest())
        };
        let (a1, b1, d1) = run(7);
        let (a2, b2, d2) = run(7);
        assert_eq!(a1, a2, "admission journal must replay byte-identically");
        assert_eq!(b1, b2, "breaker journal must replay byte-identically");
        assert_eq!(d1, d2);
        // A different seed moves the probe schedule (jitter) — digest
        // equality across seeds would mean the seed is ignored.
        let (_, _, d3) = run(8);
        assert_ne!(d1, d3, "seed must shape the journal");
    }

    #[test]
    fn zero_rate_tenant_never_admits() {
        let fd = door();
        let p = fd.register_tenant("frozen", "tok-f", 0);
        fd.access().grant(&p, "topic/", Permission::Write);
        let err = fd.admit("tok-f", RequestKind::Produce, "topic/t", 1, &fg(secs(100))).unwrap_err();
        assert!(matches!(err, Error::RateLimited { .. }));
        assert_eq!(err.retry_after(), Some(Nanos::MAX));
    }
}
