//! The [`StreamLake`] system handle.

use crate::chore::{BackpressureConfig, ChoreConfig, ChoreRuntime, ChoreStatus, TickEvent};
use common::clock::{secs, Nanos};
use common::ctx::{IoCtx, QosClass, SpanSink};
use common::metrics::Metrics;
use common::size::{GIB, MIB};
use common::{Result, SimClock};
use ec::Redundancy;
use kvstore::{MvccStore, WalCompactionChore};
use lake::{CompactionChore, IntervalTrigger, MetaFlushChore, TableStore};
use plog::{PlogConfig, PlogStore, RemoteReplicator, ScrubService};
use simdisk::{DeviceHealth, MediaKind, StoragePool, TieringService, Transport};
use stream::archive::{ArchiveChore, ArchiveService};
use stream::group::OffsetRetentionChore;
use stream::service::{StreamService, StreamServiceOptions};
use stream::{Consumer, Producer};
use std::sync::Arc;

/// Construction parameters for a StreamLake deployment.
#[derive(Debug, Clone)]
pub struct StreamLakeConfig {
    /// SSD pool: device count.
    pub ssd_devices: usize,
    /// SSD pool: capacity per device.
    pub ssd_capacity: u64,
    /// HDD (cold/archive) pool: device count.
    pub hdd_devices: usize,
    /// HDD pool: capacity per device.
    pub hdd_capacity: u64,
    /// SCM staging capacity (0 disables; Set-2 hardware has 16 GiB/node).
    pub scm_capacity: u64,
    /// Logical PLog shard count (paper default 4096; tests use less).
    pub shard_count: usize,
    /// Redundancy for PLog writes.
    pub redundancy: Redundancy,
    /// Stream workers.
    pub workers: usize,
    /// Metadata write-cache flush threshold (pending entries).
    pub meta_flush_threshold: u64,
    /// Data bus transport.
    pub transport: Transport,
    /// Tiering: demote data idle longer than this many virtual seconds.
    pub tier_demote_after_secs: u64,
    /// Seed for the maintenance runtime's deterministic retry jitter.
    pub maintenance_seed: u64,
    /// Backpressure policy for maintenance admission.
    pub backpressure: BackpressureConfig,
    /// Target output file size for the compaction chore.
    pub compaction_target_bytes: u64,
}

impl Default for StreamLakeConfig {
    fn default() -> Self {
        StreamLakeConfig {
            // enough devices for the default k=10, m=2 erasure-coded
            // stripes (every shard lands on a distinct device)
            ssd_devices: 12,
            ssd_capacity: 4 * GIB,
            hdd_devices: 12,
            hdd_capacity: 16 * GIB,
            scm_capacity: 0,
            shard_count: 64,
            redundancy: Redundancy::ErasureCode { k: 10, m: 2 },
            workers: 3,
            meta_flush_threshold: 64,
            transport: Transport::Rdma,
            tier_demote_after_secs: 3600,
            maintenance_seed: 42,
            backpressure: BackpressureConfig::default(),
            compaction_target_bytes: 64 * MIB,
        }
    }
}

impl StreamLakeConfig {
    /// The evaluation configuration: enough devices for wide erasure-coded
    /// stripes (k=10, m=2 — ~83% disk utilization vs 33% for 3-way
    /// replication), as used by the Table 1 / Fig 14 experiments.
    pub fn evaluation() -> Self {
        StreamLakeConfig {
            ssd_devices: 12,
            hdd_devices: 12,
            redundancy: Redundancy::ErasureCode { k: 10, m: 2 },
            ..Default::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn small() -> Self {
        StreamLakeConfig {
            ssd_devices: 4,
            ssd_capacity: 512 * MIB,
            hdd_devices: 4,
            hdd_capacity: 2 * GIB,
            shard_count: 16,
            redundancy: Redundancy::Replicate { copies: 2 },
            ..Default::default()
        }
    }
}

/// One StreamLake deployment: pools, PLogs, streaming, lakehouse, archive,
/// and the maintenance runtime all six background services run under.
#[derive(Debug)]
pub struct StreamLake {
    mvcc: Arc<MvccStore>,
    clock: SimClock,
    metrics: Metrics,
    sink: Arc<SpanSink>,
    ssd: Arc<StoragePool>,
    hdd: Arc<StoragePool>,
    plog: Arc<PlogStore>,
    replica: Arc<PlogStore>,
    stream: Arc<StreamService>,
    tables: Arc<TableStore>,
    archive: Arc<ArchiveService>,
    tiering: Arc<TieringService>,
    scrubber: Arc<ScrubService>,
    replicator: Arc<RemoteReplicator>,
    compaction: Arc<CompactionChore>,
    chores: ChoreRuntime,
}

/// Device health across a deployment's pools, for operator dashboards and
/// tests: `(pool name, per-device health)`.
pub type PoolHealthReport = Vec<(&'static str, Vec<DeviceHealth>)>;

impl StreamLake {
    /// Bring up a deployment.
    pub fn new(config: StreamLakeConfig) -> Self {
        let clock = SimClock::new();
        let metrics = Metrics::new();
        let sink = Arc::new(SpanSink::new(metrics.clone()));
        let ssd = Arc::new(StoragePool::new(
            "ssd-pool",
            MediaKind::NvmeSsd,
            config.ssd_devices,
            config.ssd_capacity,
            clock.clone(),
        ));
        let hdd = Arc::new(StoragePool::new(
            "hdd-pool",
            MediaKind::SasHdd,
            config.hdd_devices,
            config.hdd_capacity,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                ssd.clone(),
                PlogConfig {
                    shard_count: config.shard_count,
                    redundancy: config.redundancy,
                    shard_capacity: config.ssd_capacity, // generous per-shard space
                },
            )
            // slint:allow(R4): config is validated by SystemConfig construction before this point
            .expect("valid plog config")
            .with_metrics(metrics.clone())
            // Host-side parallelism only: per-shard encode/CRC/device work
            // fans across the pool with deterministic join order, so the
            // virtual-time figures are unchanged.
            .with_workers(Arc::new(plog::WorkerPool::with_default_size(
                config.maintenance_seed,
            ))),
        );
        let scrubber = Arc::new(ScrubService::new(plog.clone()));
        // One MVCC store spans the stream transaction coordinator and the
        // table commit path, so a single transaction can cover both
        // ("archive these segments AND commit the snapshot").
        let mvcc = Arc::new(MvccStore::new());
        let stream = StreamService::new(
            plog.clone(),
            clock.clone(),
            StreamServiceOptions {
                workers: config.workers,
                scm_capacity: config.scm_capacity,
                transport: config.transport,
                txn_mvcc: Some(mvcc.clone()),
                ..Default::default()
            },
        );
        let tables = Arc::new(
            TableStore::new(plog.clone(), config.meta_flush_threshold).with_mvcc(mvcc.clone()),
        );
        let archive = Arc::new(ArchiveService::new(hdd.clone()));
        let tiering = Arc::new(TieringService::new(
            ssd.clone(),
            hdd.clone(),
            clock.clone(),
            common::clock::secs(config.tier_demote_after_secs),
            true,
        ));
        // The remote replica site (paper §IV geo-replication): a second
        // PLog store on the cold pool the replicator chore ships into.
        let replica = Arc::new(
            PlogStore::new(
                hdd.clone(),
                PlogConfig {
                    shard_count: config.shard_count,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: config.hdd_capacity,
                },
            )
            // slint:allow(R4): same validated shape as the primary config
            .expect("valid replica plog config"),
        );
        let replicator = Arc::new(RemoteReplicator::new(plog.clone(), replica.clone()));
        let compaction = Arc::new(CompactionChore::new(
            tables.clone(),
            config.compaction_target_bytes,
            Box::new(IntervalTrigger::every_30s()),
        ));

        // The maintenance runtime owns every background service. Periods
        // are part of the deterministic schedule: registration order
        // breaks same-instant ties, so this order is a contract too.
        let chores = ChoreRuntime::new(
            metrics.clone(),
            sink.clone(),
            config.maintenance_seed,
            config.backpressure,
        );
        chores.register(scrubber.clone(), ChoreConfig::every(secs(30)));
        chores.register(tiering.clone(), ChoreConfig::every(secs(60)));
        chores.register(replicator.clone(), ChoreConfig::every(secs(10)));
        chores.register(
            Arc::new(ArchiveChore::new(stream.clone(), archive.clone())),
            ChoreConfig::every(secs(10)),
        );
        chores.register(Arc::new(MetaFlushChore::new(tables.clone())), ChoreConfig::every(secs(5)));
        chores.register(compaction.clone(), ChoreConfig::every(secs(30)));
        chores.register(
            Arc::new(OffsetRetentionChore::new(stream.groups().clone())),
            ChoreConfig::every(secs(60)),
        );
        // Appended last: registration order is part of the deterministic
        // schedule, so new chores must not displace existing ones.
        chores.register(
            Arc::new(WalCompactionChore::new(mvcc.kv().clone(), metrics.clone())),
            ChoreConfig::every(secs(30)),
        );

        StreamLake {
            mvcc,
            clock,
            metrics,
            sink,
            ssd,
            hdd,
            plog,
            replica,
            stream,
            tables,
            archive,
            tiering,
            scrubber,
            replicator,
            compaction,
            chores,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The deployment-wide metrics registry (span phases feed into it).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The span sink every root context reports to.
    pub fn span_sink(&self) -> &Arc<SpanSink> {
        &self.sink
    }

    /// Mint a root request context at the current virtual time, wired to
    /// this deployment's span sink.
    pub fn root_ctx(&self, qos: QosClass) -> IoCtx {
        IoCtx::new(self.clock.now())
            .with_qos(qos)
            .with_sink(self.sink.clone())
    }

    /// The message streaming service.
    pub fn stream(&self) -> &Arc<StreamService> {
        &self.stream
    }

    /// The lakehouse table store.
    pub fn tables(&self) -> &Arc<TableStore> {
        &self.tables
    }

    /// The deployment-wide MVCC store coordinating stream and table
    /// transactions.
    pub fn mvcc(&self) -> &Arc<MvccStore> {
        &self.mvcc
    }

    /// The persistence-log store.
    pub fn plog(&self) -> &Arc<PlogStore> {
        &self.plog
    }

    /// The archive service over the HDD pool.
    pub fn archive(&self) -> &ArchiveService {
        &self.archive
    }

    /// The SSD↔HDD tiering service.
    pub fn tiering(&self) -> &TieringService {
        &self.tiering
    }

    /// The background integrity scrubber over the PLog store.
    pub fn scrubber(&self) -> &ScrubService {
        &self.scrubber
    }

    /// The remote replication service shipping PLog records to the
    /// replica site.
    pub fn replicator(&self) -> &Arc<RemoteReplicator> {
        &self.replicator
    }

    /// The remote replica PLog store (the replication chore's target).
    pub fn replica_plog(&self) -> &Arc<PlogStore> {
        &self.replica
    }

    /// The compaction chore (swap its trigger to put LakeBrain's DQN in
    /// charge instead of the interval baseline).
    pub fn compaction(&self) -> &Arc<CompactionChore> {
        &self.compaction
    }

    /// The maintenance runtime all six background services run under.
    pub fn maintenance(&self) -> &ChoreRuntime {
        &self.chores
    }

    /// Drive maintenance: run every due chore tick up to virtual time
    /// `until`, in deterministic due-time order. Returns the tick journal
    /// of this call.
    pub fn run_maintenance_until(&self, until: Nanos) -> Vec<TickEvent> {
        self.chores.run_until(until)
    }

    /// Per-chore status: last tick, cumulative work, failure streaks and
    /// current (backpressure-scaled) budgets.
    pub fn chore_status(&self) -> Vec<ChoreStatus> {
        self.chores.status()
    }

    /// Per-device health (error, slow-I/O and corruption counters) for
    /// every pool in the deployment.
    pub fn health_report(&self) -> PoolHealthReport {
        vec![("ssd-pool", self.ssd.health()), ("hdd-pool", self.hdd.health())]
    }

    /// The hot (SSD) pool.
    pub fn ssd_pool(&self) -> &Arc<StoragePool> {
        &self.ssd
    }

    /// The cold (HDD) pool.
    pub fn hdd_pool(&self) -> &Arc<StoragePool> {
        &self.hdd
    }

    /// Convenience: a new producer.
    pub fn producer(&self) -> Producer {
        self.stream.producer()
    }

    /// Convenience: a new consumer in `group`.
    pub fn consumer(&self, group: &str) -> Consumer {
        self.stream.consumer(group)
    }

    /// Total physical bytes across both pools (redundancy included).
    pub fn physical_bytes(&self) -> u64 {
        self.ssd.used() + self.hdd.used()
    }

    /// Flush any buffered state (stream object buffers, metadata cache) so
    /// that storage accounting is complete.
    pub fn sync(&self, ctx: &IoCtx) -> Result<()> {
        for table in self.tables.catalog().list() {
            self.tables.meta().flush(&table, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use format::{DataType, Field, Schema, Value};
    use stream::TopicConfig;

    #[test]
    fn end_to_end_stream_and_table_share_one_substrate() {
        let sl = StreamLake::new(StreamLakeConfig::small());
        // stream side
        sl.stream()
            .create_topic("t", TopicConfig::with_streams(2))
            .unwrap();
        let mut p = sl.producer();
        p.set_batch_size(1);
        for i in 0..10 {
            p.send("t", format!("k{i}"), format!("v{i}"), &IoCtx::new(0)).unwrap();
        }
        // table side
        let schema = Schema::new(vec![
            Field::new("k", DataType::Utf8),
            Field::new("n", DataType::Int64),
        ])
        .unwrap();
        sl.tables().create_table("demo", schema, None, 1000, &IoCtx::new(0)).unwrap();
        sl.tables()
            .insert("demo", &[vec![Value::from("a"), Value::Int(1)]], &IoCtx::new(0))
            .unwrap();
        // both live in the same physical pools
        assert!(sl.physical_bytes() > 0);
        let r = sl
            .tables()
            .select("demo", &lake::ScanOptions::default(), &IoCtx::new(0))
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let mut c = sl.consumer("g");
        c.subscribe("t").unwrap();
        assert_eq!(c.poll(100, &IoCtx::new(0)).unwrap().len(), 10);
    }

    #[test]
    fn offset_retention_runs_under_the_maintenance_runtime() {
        let sl = StreamLake::new(StreamLakeConfig::small());
        assert!(
            sl.chore_status().iter().any(|s| s.name == "offset-retention"),
            "the group-offset retention chore must be registered"
        );
        sl.stream()
            .create_topic("t", TopicConfig::with_partitions(2))
            .unwrap();
        {
            let mut c = sl.consumer("ephemeral");
            c.subscribe("t").unwrap();
            c.poll(10, &IoCtx::new(0)).unwrap();
            c.commit().unwrap();
        } // graceful leave: the group is now empty
        // Past the retention window the maintenance runtime sweeps the
        // group's offsets out of the dispatcher KV.
        let retention = sl.stream().groups().config().offset_retention;
        sl.clock().advance(retention + common::clock::secs(120));
        sl.run_maintenance_until(sl.clock().now());
        assert_eq!(
            sl.stream().dispatcher().committed_offset("ephemeral", "t", 0),
            None,
            "expired group offsets must be swept"
        );
    }

    #[test]
    fn default_config_uses_erasure_coding() {
        let cfg = StreamLakeConfig::default();
        assert!(matches!(cfg.redundancy, Redundancy::ErasureCode { .. }));
        assert!(cfg.redundancy.utilization() > 0.8, "EC must beat replication");
    }

    #[test]
    fn sync_flushes_metadata() {
        let sl = StreamLake::new(StreamLakeConfig::small());
        let schema =
            Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        sl.tables().create_table("t", schema, None, 100, &IoCtx::new(0)).unwrap();
        sl.tables().insert("t", &[vec![Value::Int(1)]], &IoCtx::new(0)).unwrap();
        sl.sync(&sl.root_ctx(QosClass::Foreground)).unwrap();
        // file-based metadata reads work after a sync
        let r = sl
            .tables()
            .select(
                "t",
                &lake::ScanOptions {
                    mode: lake::MetadataMode::FileBased,
                    ..Default::default()
                },
                &IoCtx::new(0),
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }
}
