//! The data access layer's security surface (§III).
//!
//! "The Access Layer also plays a crucial role in managing authentication
//! and access control lists, which ensure that only valid user requests
//! are translated into internal requests for further processing."
//!
//! [`AccessController`] authenticates tokens to principals and checks
//! per-resource ACLs before a request may proceed. Resources are named
//! hierarchically (`topic/dpi`, `table/tb_dpi_log_hours`); a grant on a
//! prefix (`table/`) covers everything under it.

use common::{Error, Result};
use std::collections::{HashMap, HashSet};
use common::lockwitness::TrackedRwLock;

/// What an ACL entry permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Consume / select.
    Read,
    /// Produce / insert / update / delete.
    Write,
    /// Create/drop resources and manage grants.
    Admin,
}

/// An authenticated identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Principal(pub String);

/// Authentication + ACL checks for the access layer.
#[derive(Debug)]
pub struct AccessController {
    inner: TrackedRwLock<Inner>,
}

impl Default for AccessController {
    fn default() -> Self {
        AccessController { inner: TrackedRwLock::new("core.access.grants", Inner::default()) }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// token → principal
    tokens: HashMap<String, Principal>,
    /// (principal, resource prefix) → permissions
    grants: HashMap<(Principal, String), HashSet<Permission>>,
}

impl AccessController {
    /// An empty controller (every request denied until users are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user and its authentication token.
    pub fn register(&self, name: &str, token: &str) -> Principal {
        let p = Principal(name.to_string());
        self.inner
            .write()
            .tokens
            .insert(token.to_string(), p.clone());
        p
    }

    /// Resolve a token to its principal.
    pub fn authenticate(&self, token: &str) -> Result<Principal> {
        self.inner
            .read()
            .tokens
            .get(token)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument("authentication failed: unknown token".into()))
    }

    /// Revoke a token (e.g. credential rotation).
    pub fn revoke_token(&self, token: &str) {
        self.inner.write().tokens.remove(token);
    }

    /// Grant `permission` on every resource under `resource_prefix`.
    pub fn grant(&self, principal: &Principal, resource_prefix: &str, permission: Permission) {
        self.inner
            .write()
            .grants
            .entry((principal.clone(), resource_prefix.to_string()))
            .or_default()
            .insert(permission);
    }

    /// Remove a previously granted permission.
    pub fn revoke(&self, principal: &Principal, resource_prefix: &str, permission: Permission) {
        let mut inner = self.inner.write();
        if let Some(perms) = inner
            .grants
            .get_mut(&(principal.clone(), resource_prefix.to_string()))
        {
            perms.remove(&permission);
        }
    }

    /// Whether `principal` holds `permission` on `resource` (directly or
    /// via a prefix grant; `Admin` implies `Read` and `Write`).
    pub fn allowed(&self, principal: &Principal, resource: &str, permission: Permission) -> bool {
        let inner = self.inner.read();
        inner.grants.iter().any(|((p, prefix), perms)| {
            p == principal
                && resource.starts_with(prefix.as_str())
                && (perms.contains(&permission) || perms.contains(&Permission::Admin))
        })
    }

    /// Check a request end-to-end: authenticate the token, then check the
    /// ACL. Returns the principal for audit logging.
    pub fn check(&self, token: &str, resource: &str, permission: Permission) -> Result<Principal> {
        let principal = self.authenticate(token)?;
        if self.allowed(&principal, resource, permission) {
            Ok(principal)
        } else {
            Err(Error::InvalidArgument(format!(
                "access denied: {} lacks {:?} on {resource}",
                principal.0, permission
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> (AccessController, Principal) {
        let ac = AccessController::new();
        let p = ac.register("analyst", "token-123");
        (ac, p)
    }

    #[test]
    fn unknown_token_is_rejected() {
        let (ac, _) = controller();
        assert!(ac.authenticate("wrong").is_err());
        assert!(ac.check("wrong", "table/x", Permission::Read).is_err());
    }

    #[test]
    fn grants_are_resource_scoped() {
        let (ac, p) = controller();
        ac.grant(&p, "table/dpi", Permission::Read);
        assert!(ac.check("token-123", "table/dpi", Permission::Read).is_ok());
        assert!(ac.check("token-123", "table/other", Permission::Read).is_err());
        assert!(ac.check("token-123", "table/dpi", Permission::Write).is_err());
    }

    #[test]
    fn prefix_grants_cover_subresources() {
        let (ac, p) = controller();
        ac.grant(&p, "topic/", Permission::Write);
        assert!(ac.allowed(&p, "topic/dpi", Permission::Write));
        assert!(ac.allowed(&p, "topic/logs", Permission::Write));
        assert!(!ac.allowed(&p, "table/dpi", Permission::Write));
    }

    #[test]
    fn admin_implies_read_and_write() {
        let (ac, p) = controller();
        ac.grant(&p, "table/dpi", Permission::Admin);
        assert!(ac.allowed(&p, "table/dpi", Permission::Read));
        assert!(ac.allowed(&p, "table/dpi", Permission::Write));
    }

    #[test]
    fn revocation_takes_effect() {
        let (ac, p) = controller();
        ac.grant(&p, "table/dpi", Permission::Read);
        ac.revoke(&p, "table/dpi", Permission::Read);
        assert!(!ac.allowed(&p, "table/dpi", Permission::Read));
        // token revocation blocks even valid grants
        ac.grant(&p, "table/dpi", Permission::Read);
        ac.revoke_token("token-123");
        assert!(ac.check("token-123", "table/dpi", Permission::Read).is_err());
    }

    #[test]
    fn principals_are_isolated() {
        let ac = AccessController::new();
        let alice = ac.register("alice", "t-a");
        let _bob = ac.register("bob", "t-b");
        ac.grant(&alice, "table/", Permission::Read);
        assert!(ac.check("t-a", "table/x", Permission::Read).is_ok());
        assert!(ac.check("t-b", "table/x", Permission::Read).is_err());
    }
}
