//! # StreamLake
//!
//! The top-level crate of this reproduction: one handle that wires the
//! whole system of the paper together —
//!
//! * SSD/HDD storage pools and an SCM cache on a simulated OceanStor-class
//!   substrate ([`simdisk`]);
//! * sharded persistence logs with replication or erasure coding
//!   ([`plog`], [`ec`]);
//! * the message streaming service: stream objects, workers, dispatcher,
//!   producers/consumers, transactions ([`stream`]);
//! * lakehouse table objects with ACID commits, snapshots, time travel and
//!   metadata acceleration ([`lake`]);
//! * the LakeBrain optimizer ([`lakebrain`]).
//!
//! ```
//! use common::ctx::QosClass;
//! use streamlake::{StreamLake, StreamLakeConfig};
//!
//! let sl = StreamLake::new(StreamLakeConfig::default());
//! sl.stream()
//!     .create_topic("topic_streamlake_test", stream::TopicConfig::with_streams(3))
//!     .unwrap();
//! let ctx = sl.root_ctx(QosClass::Foreground);
//! let mut producer = sl.producer();
//! producer.set_batch_size(1);
//! producer.send("topic_streamlake_test", "key", "Hello world", &ctx).unwrap();
//! let mut consumer = sl.consumer("quickstart");
//! consumer.subscribe("topic_streamlake_test").unwrap();
//! let records = consumer.poll(10, &ctx).unwrap();
//! assert_eq!(records.len(), 1);
//! ```

pub mod access;
pub mod chore;
pub mod frontdoor;
pub mod pipeline;
pub mod query;
pub mod system;
pub mod txn;

pub use access::{AccessController, Permission, Principal};
pub use chore::{
    BackpressureConfig, ChoreConfig, ChoreRuntime, ChoreStatus, TickEvent, TickOutcome,
};
pub use frontdoor::{
    AdmissionConfig, AdmissionEvent, BreakerConfig, BreakerPhase, BreakerTransition, Decision,
    FrontDoor, FrontDoorConfig, Permit, RequestKind, TenantStats,
};
pub use pipeline::{PipelineReport, StreamLakePipeline};
pub use query::{Aggregate, Query, QueryEngine, QueryOutput};
pub use system::{PoolHealthReport, StreamLake, StreamLakeConfig};
pub use txn::{Transaction, TxnRecoveryReport};
