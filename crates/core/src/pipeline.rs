//! The China Mobile analytic pipeline on StreamLake (Fig 12, right).
//!
//! "In our solution, StreamLake serves as a unified stream and batch
//! processing storage … handles the message streaming and data storage …
//! As StreamLake supports time travel, only updated rows are written to
//! the storage. When a job needs to re-run, it can use time travel to
//! retrieve its input data. During the query jobs … the three filters in
//! the WHERE clause and the COUNT aggregate … are pushed down."
//!
//! Pipeline shape (vs. the copy-per-stage baseline in
//! `baselines::pipeline`):
//!
//! 1. **collection** — packets are produced into a StreamLake topic
//!    (stream objects, not files);
//! 2. **stream→table conversion** — one background conversion produces the
//!    single authoritative table copy;
//! 3. **normalization** — an in-place `transform` commit (old versions
//!    remain reachable via time travel; no full extra copy);
//! 4. **labeling** — another in-place transform;
//! 5. **query** — the DAU query with storage-side pushdown.

use crate::query::{Query, QueryEngine};
use crate::system::StreamLake;
use common::clock::Nanos;
use common::ctx::IoCtx;
use common::Result;
use format::{DataType, Expr, Field, Schema, Value};
use lake::catalog::PartitionSpec;
use lake::conversion::ConversionTask;
use stream::config::ConvertToTable;
use stream::record::Record;
use stream::TopicConfig;
use workloads::packets::Packet;

/// The shared per-record job compute constant (see
/// [`baselines::pipeline::PER_RECORD_JOB_COMPUTE`]).
fn baselines_job_compute() -> Nanos {
    20_000
}

/// Cost/throughput report of one StreamLake pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Virtual time of the batch jobs (conversion + normalize + label +
    /// query).
    pub batch_time: Nanos,
    /// Messages per virtual second achieved on the stream side.
    pub stream_msgs_per_sec: f64,
    /// Physical bytes across the deployment (redundancy included).
    pub physical_bytes: u64,
    /// Provinces in the DAU answer.
    pub query_rows: usize,
    /// Virtual time of the final query alone.
    pub query_time: Nanos,
}

/// The pipeline runner.
#[derive(Debug)]
pub struct StreamLakePipeline {
    /// The deployment the pipeline runs on.
    pub sl: StreamLake,
}

/// Table schema used by the pipeline: the packet fields plus a `label`
/// column the labeling job fills in.
pub fn pipeline_schema() -> Schema {
    let mut fields: Vec<Field> = workloads::packets::PacketGen::schema()
        .fields()
        .to_vec();
    fields.push(Field::new("label", DataType::Utf8));
    // slint:allow(R4): static schema, field set fixed at compile time and covered by tests
    Schema::new(fields).expect("static schema is valid")
}

impl StreamLakePipeline {
    /// A pipeline over a fresh deployment.
    pub fn new(sl: StreamLake) -> Self {
        StreamLakePipeline { sl }
    }

    /// Run the pipeline on `packets`; the final query counts flows to
    /// `query_url` within `[query_lo, query_hi)`.
    pub fn run(
        &self,
        packets: &[Packet],
        query_url: &str,
        query_lo: i64,
        query_hi: i64,
        ctx: &IoCtx,
    ) -> Result<PipelineReport> {
        let sl = &self.sl;
        // --- collection: produce into the stream ------------------------
        let mut cfg = TopicConfig::with_streams(3);
        cfg.convert_2_table = ConvertToTable {
            table_schema: vec!["packet fields + label".into()],
            table_path: "/tables/dpi".into(),
            split_offset: 1, // convert on every run in this scaled setting
            split_time: 36_000,
            delete_msg: true, // one copy: stream data truncates once tabled
            enabled: true,
        };
        sl.stream().create_topic("dpi", cfg.clone())?;
        let mut producer = sl.producer();
        producer.set_batch_size(84);
        let mut last_ack = ctx.now;
        for p in packets {
            if let Some(ack) = producer.send("dpi", p.key(), p.to_wire(), ctx)? {
                last_ack = last_ack.max(ack.ack_time);
            }
        }
        for ack in producer.flush(ctx)? {
            last_ack = last_ack.max(ack.ack_time);
        }
        let stream_secs = ((last_ack - ctx.now) as f64 / 1e9).max(1e-9);
        let stream_msgs_per_sec = packets.len() as f64 / stream_secs;

        // --- conversion: the one authoritative table copy ----------------
        let batch_start = last_ack;
        // identical per-record business logic on both stacks (§VII-A)
        let job_compute =
            packets.len() as u64 * baselines_job_compute();
        sl.tables().create_table(
            "dpi",
            pipeline_schema(),
            Some(PartitionSpec::hourly("start_time")),
            20_000,
            &ctx.at(batch_start),
        )?;
        let mut t = batch_start;
        for route in sl.stream().dispatcher().topic_partitions("dpi")? {
            let object = sl.stream().dispatcher().object_of(&route)?;
            let mut task = ConversionTask::new(
                object,
                "dpi",
                cfg.convert_2_table.clone(),
                Box::new(|r: &Record| {
                    let p = Packet::from_wire(&r.value)?;
                    let mut row = p.to_row();
                    row.push(Value::from("")); // label filled by the label job
                    Ok(row)
                }),
            );
            if let Some(report) = task.run(sl.tables(), &ctx.at(t), true)? {
                t = t.max(report.commit.finished_at);
            }
        }
        t += job_compute; // parse/validate every record

        // --- normalization: in-place transform (time travel keeps history)
        let schema = pipeline_schema();
        let uid_idx = schema.index_of("user_id")?;
        let info = sl.tables().transform(
            "dpi",
            &Expr::True,
            &|row| {
                let mut out = row.clone();
                if let Value::Int(v) = out[uid_idx] {
                    out[uid_idx] =
                        Value::Int((v as u64).wrapping_mul(0x100000001b3) as i64 & 0x7FFF_FFFF);
                }
                Some(out)
            },
            &ctx.at(t),
        )?;
        t = t.max(info.finished_at) + job_compute;

        // --- labeling: in-place transform --------------------------------
        let url_idx = schema.index_of("url")?;
        let label_idx = schema.index_of("label")?;
        let info = sl.tables().transform(
            "dpi",
            &Expr::True,
            &|row| {
                let mut out = row.clone();
                let label = match &out[url_idx] {
                    Value::Str(u) if u.contains("fin_app") => "finance",
                    _ => "other",
                };
                out[label_idx] = Value::from(label);
                Some(out)
            },
            &ctx.at(t),
        )?;
        t = t.max(info.finished_at) + job_compute;

        // --- query: DAU with pushdown -------------------------------------
        let engine = QueryEngine::new();
        let q = Query::dau("dpi", query_url, query_lo, query_hi);
        let out = engine.execute(sl.tables(), &q, &ctx.at(t))?;
        // the pushed-down filter still evaluates every surviving row
        let t_end = t + out.elapsed + job_compute;
        sl.sync(&ctx.at(t_end))?;

        Ok(PipelineReport {
            batch_time: t_end - batch_start,
            stream_msgs_per_sec,
            physical_bytes: sl.physical_bytes(),
            query_rows: out.groups.len(),
            query_time: out.elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::StreamLakeConfig;
    use workloads::packets::PacketGen;

    const T0: i64 = 1_656_806_400;

    #[test]
    fn pipeline_produces_answer_and_accounts_storage() {
        let sl = StreamLake::new(StreamLakeConfig::small());
        let pipeline = StreamLakePipeline::new(sl);
        let mut g = PacketGen::new(1, T0, 1000);
        let packets = g.batch(1500);
        let url = packets[0].url.clone();
        let logical: u64 = packets.iter().map(|p| p.to_wire().len() as u64).sum();
        let report = pipeline.run(&packets, &url, T0, T0 + 86_400, &IoCtx::new(0)).unwrap();
        assert!(report.query_rows > 0);
        assert!(report.stream_msgs_per_sec > 0.0);
        assert!(report.batch_time > 0);
        // The single-copy + in-place-update design must stay well under the
        // baseline's ~15x logical footprint.
        let overhead = report.physical_bytes as f64 / logical as f64;
        assert!(
            overhead < 9.0,
            "StreamLake stores {overhead:.1}x logical; must be far below the baseline's ~15x"
        );
    }

    #[test]
    fn pipeline_answer_matches_ground_truth() {
        let sl = StreamLake::new(StreamLakeConfig::small());
        let pipeline = StreamLakePipeline::new(sl);
        let mut g = PacketGen::new(7, T0, 1000);
        let packets = g.batch(800);
        let url = packets[0].url.clone();
        let report = pipeline.run(&packets, &url, T0, T0 + 86_400, &IoCtx::new(0)).unwrap();
        let truth: std::collections::BTreeSet<&str> = packets
            .iter()
            .filter(|p| p.url == url)
            .map(|p| p.province.as_str())
            .collect();
        assert_eq!(report.query_rows, truth.len());
    }
}
