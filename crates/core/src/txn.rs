//! Cross-subsystem transactions: stream⇄table atomic commits.
//!
//! The paper separates the streaming and lakehouse services but runs them
//! over one storage substrate; "separation is for better reunion" is this
//! module's API: one [`Transaction`] can produce records into topics AND
//! stage a table commit, and either everything becomes visible or nothing
//! does ("archive these segments AND commit the snapshot").
//!
//! Mechanically both sides share one [`MvccStore`] transaction: stream
//! participants are `s/` intents, the staged table metadata are `lake/`
//! intents, and the single durable record flip in
//! [`Transaction::decide`] is the commit point for both. A coordinator
//! crash between decide and resolve is repaired by
//! [`StreamLake::recover_transactions`], which replays the surviving
//! intents — flipping stream visibility and republishing table metadata —
//! before resolving them.
//!
//! [`MvccStore`]: kvstore::MvccStore

use crate::system::StreamLake;
use common::ctx::IoCtx;
use common::{Error, ObjectId, Result, TxnId};
use format::Row;
use lake::{CommitInfo, StagedTableCommit};
use stream::txn::{participant_object, PARTICIPANT_PREFIX};
use stream::Producer;

/// What [`StreamLake::recover_transactions`] repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnRecoveryReport {
    /// Decided transactions whose effects were replayed and resolved.
    pub committed_replayed: u64,
    /// Orphaned pending transactions aborted and cleaned.
    pub aborted_cleaned: u64,
}

/// An open cross-subsystem transaction. Obtain via
/// [`StreamLake::transaction`]; drive with [`send`](Transaction::send) /
/// [`insert`](Transaction::insert), then [`commit`](Transaction::commit)
/// (or [`abort`](Transaction::abort)).
#[derive(Debug)]
pub struct Transaction<'a> {
    sl: &'a StreamLake,
    id: TxnId,
    producer: Producer,
    staged: Vec<StagedTableCommit>,
    decided: bool,
    done: bool,
}

impl StreamLake {
    /// Begin a transaction spanning the stream and table services.
    pub fn transaction(&self) -> Transaction<'_> {
        Transaction {
            id: self.stream().txns().begin(),
            producer: self.producer(),
            sl: self,
            staged: Vec::new(),
            decided: false,
            done: false,
        }
    }

    /// Crash recovery for cross-subsystem transactions: replay every
    /// decided transaction's intents (stream visibility flips, table
    /// metadata publication) and resolve them; abort and clean every
    /// orphaned pending transaction. Idempotent — after it returns, no
    /// transaction is half-visible and no orphaned intent survives.
    pub fn recover_transactions(&self, ctx: &IoCtx) -> Result<TxnRecoveryReport> {
        let mut report = TxnRecoveryReport::default();
        for d in self.mvcc().decided()? {
            for (key, value) in &d.writes {
                if key.starts_with(PARTICIPANT_PREFIX) {
                    let Some(obj) = value.as_deref().and_then(participant_object) else {
                        continue;
                    };
                    if let Ok(o) = self.stream().objects().get(ObjectId(obj)) {
                        o.commit_txn(d.txn); // idempotent flip
                    }
                } else if key.starts_with(lake::table::COMMIT_KEY_PREFIX.as_bytes())
                    || key.starts_with(lake::table::HEAD_KEY_PREFIX.as_bytes())
                    || key.starts_with(lake::table::LIVE_KEY_PREFIX.as_bytes())
                {
                    self.tables().apply_resolution(key, value.as_deref(), ctx)?;
                }
            }
            self.mvcc().resolve_committed(d.txn)?;
            self.stream().txns().forget(TxnId(d.txn));
            report.committed_replayed += 1;
        }
        for p in self.mvcc().orphan_pending()? {
            for key in &p.writes {
                // The participant key embeds the object id in its tail.
                if key.starts_with(PARTICIPANT_PREFIX) && key.len() >= 8 {
                    if let Some(obj) = participant_object(&key[key.len() - 8..]) {
                        if let Ok(o) = self.stream().objects().get(ObjectId(obj)) {
                            o.abort_txn(p.txn); // idempotent flip
                        }
                    }
                }
            }
            self.mvcc().abort(p.txn)?;
            self.stream().txns().forget(TxnId(p.txn));
            report.aborted_cleaned += 1;
        }
        Ok(report)
    }
}

impl Transaction<'_> {
    /// The transaction id (== its MVCC record id).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Produce one record into `topic` inside this transaction. Invisible
    /// to committed readers until the transaction resolves.
    pub fn send(
        &mut self,
        topic: &str,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
        ctx: &IoCtx,
    ) -> Result<()> {
        self.check_open()?;
        self.producer.send_in_txn(self.id, topic, key, value, ctx)?;
        Ok(())
    }

    /// Stage an INSERT of `rows` into `table` inside this transaction.
    /// The data files are written immediately; the commit metadata stays
    /// provisional until the transaction decides. One staged commit per
    /// table per transaction.
    pub fn insert(&mut self, table: &str, rows: &[Row], ctx: &IoCtx) -> Result<()> {
        self.check_open()?;
        if self.staged.iter().any(|s| s.table() == table) {
            return Err(Error::InvalidArgument(format!(
                "transaction {} already stages a commit for table {table}",
                self.id
            )));
        }
        let staged = self.sl.tables().stage_insert(self.id.raw(), table, rows, ctx)?;
        self.staged.push(staged);
        Ok(())
    }

    /// Phase 1 + the commit point: flush buffered sends, prepare every
    /// stream participant, and flip the shared MVCC record to COMMITTED
    /// (one WAL frame covering both services). After this returns `Ok`,
    /// the transaction is durably decided but nothing is visible yet —
    /// call [`resolve`](Self::resolve) (or crash and let
    /// [`StreamLake::recover_transactions`] roll forward).
    pub fn decide(&mut self, ctx: &IoCtx) -> Result<u64> {
        self.check_open()?;
        if let Err(e) = self.producer.flush(ctx) {
            self.done = true;
            // Flush failure aborts the whole transaction (stream intents,
            // staged table metadata, the lot).
            self.sl.stream().txns().abort(self.id)?;
            return Err(e);
        }
        match self.sl.stream().txns().prepare_decide(self.id) {
            Ok(ts) => {
                self.decided = true;
                Ok(ts)
            }
            Err(e) => {
                self.done = true; // prepare_decide cleaned everything up
                Err(e)
            }
        }
    }

    /// Phase 2: publish staged table commits, flip stream participant
    /// visibility, and resolve all intents. Requires a prior successful
    /// [`decide`](Self::decide).
    pub fn resolve(&mut self, ctx: &IoCtx) -> Result<Vec<CommitInfo>> {
        if !self.decided || self.done {
            return Err(Error::InvalidArgument(format!(
                "transaction {} is not in the decided state",
                self.id
            )));
        }
        let mut infos = Vec::with_capacity(self.staged.len());
        for staged in &self.staged {
            infos.push(self.sl.tables().apply_staged(staged, ctx)?);
        }
        self.sl.stream().txns().resolve(self.id)?;
        self.done = true;
        Ok(infos)
    }

    /// Commit: [`decide`](Self::decide) then [`resolve`](Self::resolve).
    /// Returns one [`CommitInfo`] per staged table commit.
    pub fn commit(&mut self, ctx: &IoCtx) -> Result<Vec<CommitInfo>> {
        self.decide(ctx)?;
        self.resolve(ctx)
    }

    /// Abort: discard buffered sends, stream intents and staged table
    /// metadata. Fails once the transaction is decided (a durable decision
    /// can only roll forward).
    pub fn abort(&mut self) -> Result<()> {
        if self.done {
            return Ok(());
        }
        if self.decided {
            return Err(Error::InvalidArgument(format!(
                "transaction {} is decided; it can only resolve",
                self.id
            )));
        }
        self.done = true;
        self.sl.stream().txns().abort(self.id)
    }

    /// Simulate a coordinator crash (tests, fault injection): drop all
    /// in-memory coordinator state while leaving the durable record and
    /// intents exactly as a process death would. Recovery must finish the
    /// job.
    pub fn simulate_crash(mut self) {
        self.done = true;
        self.sl.stream().txns().forget(self.id);
        self.sl.mvcc().forget(self.id.raw());
    }

    fn check_open(&self) -> Result<()> {
        if self.done || self.decided {
            return Err(Error::InvalidArgument(format!(
                "transaction {} is no longer open",
                self.id
            )));
        }
        Ok(())
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.done && !self.decided {
            // slint:allow(R11): best-effort cleanup, recover_transactions sweeps leftovers
            let _ = self.sl.stream().txns().abort(self.id);
        }
        // A decided-but-unresolved transaction is intentionally left for
        // recovery to roll forward — aborting it here would be wrong.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{StreamLake, StreamLakeConfig};
    use common::ctx::QosClass;
    use format::{DataType, Field, Schema, Value};
    use lake::ScanOptions;
    use stream::TopicConfig;

    fn setup() -> StreamLake {
        let sl = StreamLake::new(StreamLakeConfig::small());
        sl.stream()
            .create_topic("events", TopicConfig::with_streams(2))
            .unwrap();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Utf8),
            Field::new("n", DataType::Int64),
        ])
        .unwrap();
        sl.tables()
            .create_table("facts", schema, None, 1000, &sl.root_ctx(QosClass::Foreground))
            .unwrap();
        sl
    }

    fn stream_visible(sl: &StreamLake, ctx: &IoCtx) -> usize {
        let mut c = sl.consumer("probe");
        c.subscribe("events").unwrap();
        c.poll(1000, ctx).unwrap().len()
    }

    fn table_rows(sl: &StreamLake, ctx: &IoCtx) -> usize {
        sl.tables()
            .select("facts", &ScanOptions::default(), ctx)
            .unwrap()
            .rows
            .len()
    }

    #[test]
    fn stream_and_table_commit_atomically() {
        let sl = setup();
        let ctx = sl.root_ctx(QosClass::Foreground);
        let mut txn = sl.transaction();
        txn.send("events", "k1", "v1", &ctx).unwrap();
        txn.send("events", "k2", "v2", &ctx).unwrap();
        txn.insert("facts", &[vec![Value::from("a"), Value::Int(1)]], &ctx)
            .unwrap();
        // Nothing visible before commit.
        assert_eq!(stream_visible(&sl, &ctx), 0);
        assert_eq!(table_rows(&sl, &ctx), 0);
        let infos = txn.commit(&ctx).unwrap();
        assert_eq!(infos.len(), 1);
        assert_eq!(stream_visible(&sl, &ctx), 2);
        assert_eq!(table_rows(&sl, &ctx), 1);
        assert_eq!(sl.mvcc().pending_intents(), 0);
    }

    #[test]
    fn abort_hides_both_sides() {
        let sl = setup();
        let ctx = sl.root_ctx(QosClass::Foreground);
        let mut txn = sl.transaction();
        txn.send("events", "k", "v", &ctx).unwrap();
        txn.insert("facts", &[vec![Value::from("a"), Value::Int(1)]], &ctx)
            .unwrap();
        txn.abort().unwrap();
        assert_eq!(stream_visible(&sl, &ctx), 0);
        assert_eq!(table_rows(&sl, &ctx), 0);
        assert_eq!(sl.mvcc().pending_intents(), 0);
        assert_eq!(sl.tables().current_snapshot("facts").unwrap(), 0);
    }

    #[test]
    fn crash_after_decide_rolls_forward_on_recovery() {
        let sl = setup();
        let ctx = sl.root_ctx(QosClass::Foreground);
        let mut txn = sl.transaction();
        txn.send("events", "k", "v", &ctx).unwrap();
        txn.insert("facts", &[vec![Value::from("a"), Value::Int(1)]], &ctx)
            .unwrap();
        txn.decide(&ctx).unwrap();
        txn.simulate_crash();
        // Decided but unresolved: recovery must make both sides visible.
        let report = sl.recover_transactions(&ctx).unwrap();
        assert_eq!(report.committed_replayed, 1);
        assert_eq!(stream_visible(&sl, &ctx), 1);
        assert_eq!(table_rows(&sl, &ctx), 1);
        assert_eq!(sl.mvcc().pending_intents(), 0);
    }

    #[test]
    fn crash_before_decide_aborts_on_recovery() {
        let sl = setup();
        let ctx = sl.root_ctx(QosClass::Foreground);
        let mut txn = sl.transaction();
        txn.send("events", "k", "v", &ctx).unwrap();
        txn.insert("facts", &[vec![Value::from("a"), Value::Int(1)]], &ctx)
            .unwrap();
        // Force the buffered send down so the participant intent exists.
        txn.producer.flush(&ctx).unwrap();
        txn.simulate_crash();
        let report = sl.recover_transactions(&ctx).unwrap();
        assert_eq!(report.aborted_cleaned, 1);
        assert_eq!(stream_visible(&sl, &ctx), 0);
        assert_eq!(table_rows(&sl, &ctx), 0);
        assert_eq!(sl.mvcc().pending_intents(), 0);
        // Recovery is idempotent.
        let again = sl.recover_transactions(&ctx).unwrap();
        assert_eq!(again, TxnRecoveryReport::default());
    }

    #[test]
    fn double_insert_per_table_is_rejected() {
        let sl = setup();
        let ctx = sl.root_ctx(QosClass::Foreground);
        let mut txn = sl.transaction();
        txn.insert("facts", &[vec![Value::from("a"), Value::Int(1)]], &ctx)
            .unwrap();
        assert!(matches!(
            txn.insert("facts", &[vec![Value::from("b"), Value::Int(2)]], &ctx),
            Err(Error::InvalidArgument(_))
        ));
        txn.abort().unwrap();
    }

    #[test]
    fn dropped_transaction_cleans_up() {
        let sl = setup();
        let ctx = sl.root_ctx(QosClass::Foreground);
        {
            let mut txn = sl.transaction();
            txn.insert("facts", &[vec![Value::from("a"), Value::Int(1)]], &ctx)
                .unwrap();
        } // dropped without commit: best-effort abort
        assert_eq!(sl.mvcc().pending_intents(), 0);
        assert_eq!(sl.stream().txns().active_count(), 0);
        assert_eq!(table_rows(&sl, &ctx), 0);
    }
}
