//! The deterministic maintenance runtime.
//!
//! Every background service in the deployment — tiering, scrubbing, remote
//! replication, stream archival, metadata flushing and compaction — runs as
//! a [`Chore`] scheduled here, instead of each owning an ad-hoc loop. The
//! runtime gives them what the paper's "separation is for better reunion"
//! design demands from maintenance work sharing a substrate with foreground
//! traffic:
//!
//! * **virtual-time scheduling** — ticks fire at per-chore due times on the
//!   simulated clock; same seed + same schedule ⇒ byte-identical replays;
//! * **budgets** — each tick carries a token-style byte/op allowance the
//!   chore must respect ([`ChoreBudget`]);
//! * **backpressure-aware admission** — the runtime samples the foreground
//!   `qos.foreground.*` phase histograms and halves budgets (ultimately
//!   deferring ticks) while foreground p99 exceeds a threshold, restoring
//!   them when pressure clears;
//! * **deterministic retry** — a failing chore backs off exponentially with
//!   seeded jitter, so failure schedules replay exactly;
//! * **QoS isolation** — every tick runs under a [`QosClass::Maintenance`]
//!   context minted from the deployment's span sink, so devices let
//!   foreground I/O bypass maintenance I/O.

use common::chore::{Chore, ChoreBudget, TickReport};
use common::clock::{millis, secs, Nanos};
use common::ctx::{IoCtx, QosClass, SpanSink, QOS_PREFIX};
use common::metrics::Metrics;
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// Backpressure policy: when the foreground tail exceeds the threshold,
/// maintenance budgets shrink; when it clears, they recover.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureConfig {
    /// Foreground p99 (queue or device phase) above this defers/starves
    /// maintenance.
    pub p99_threshold: Nanos,
    /// How many recent foreground samples the p99 is computed over. A
    /// windowed view is essential: a full-history p99 would remember a
    /// burst forever and never let budgets recover.
    pub window: usize,
    /// Each pressured admission halves budgets once more, up to this many
    /// times; at the maximum the tick is deferred outright.
    pub max_shift: u32,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig { p99_threshold: millis(2), window: 256, max_shift: 3 }
    }
}

/// Per-chore registration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChoreConfig {
    /// Nominal tick period on the virtual clock (used whenever the chore
    /// doesn't name its own `next_due`).
    pub period: Nanos,
    /// Budget handed to each tick before backpressure scaling.
    pub budget: ChoreBudget,
}

impl ChoreConfig {
    /// A period with unlimited budget.
    pub fn every(period: Nanos) -> Self {
        ChoreConfig { period: period.max(1), budget: ChoreBudget::UNLIMITED }
    }

    /// Replace the budget.
    pub fn with_budget(mut self, budget: ChoreBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// What happened when a chore came due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// The chore ran and returned a report.
    Ticked(TickReport),
    /// Admission deferred the tick (backpressure at maximum shift).
    Deferred,
    /// The chore failed; it retries at the recorded time.
    Failed {
        /// When the deterministic backoff schedules the retry.
        retry_at: Nanos,
    },
}

/// One journal entry: a chore coming due, with the budget it was offered
/// and what happened. The journal is the determinism contract's witness —
/// two same-seed runs must produce identical journals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickEvent {
    /// Which chore.
    pub chore: &'static str,
    /// Virtual time the tick fired.
    pub at: Nanos,
    /// Budget offered after backpressure scaling.
    pub budget: ChoreBudget,
    /// Outcome.
    pub outcome: TickOutcome,
}

/// Point-in-time status of one registered chore.
#[derive(Debug, Clone, Copy)]
pub struct ChoreStatus {
    /// Chore name.
    pub name: &'static str,
    /// Virtual time of the last executed tick, if any.
    pub last_tick: Option<Nanos>,
    /// Ticks executed (not counting deferrals).
    pub ticks: u64,
    /// Total work units reported.
    pub work_done: u64,
    /// Backlog hint from the most recent tick.
    pub backlog_hint: u64,
    /// Consecutive failures (0 after any success).
    pub consecutive_failures: u32,
    /// The budget the next tick will be offered (backpressure included).
    pub current_budget: ChoreBudget,
    /// Ticks deferred by backpressure so far.
    pub deferred: u64,
    /// When the chore next comes due.
    pub next_due: Nanos,
}

struct Registered {
    chore: Arc<dyn Chore>,
    period: Nanos,
    base_budget: ChoreBudget,
    next_due: Nanos,
    last_tick: Option<Nanos>,
    ticks: u64,
    work_done: u64,
    backlog_hint: u64,
    consecutive_failures: u32,
    deferred: u64,
}

struct RuntimeInner {
    chores: Vec<Registered>,
    /// Current backpressure level: effective budgets are the base halved
    /// this many times; at `max_shift` admission defers ticks instead.
    budget_shift: u32,
    journal: Vec<TickEvent>,
}

/// First retry delay after a chore failure; doubles per consecutive
/// failure (capped), plus seeded jitter of up to half the delay.
const BACKOFF_BASE: Nanos = secs(1);
/// Exponent cap so the backoff arithmetic never overflows.
const BACKOFF_MAX_EXP: u32 = 10;

/// The maintenance runtime. See the module docs for the contract.
pub struct ChoreRuntime {
    metrics: Metrics,
    sink: Arc<SpanSink>,
    seed: u64,
    backpressure: BackpressureConfig,
    inner: TrackedMutex<RuntimeInner>,
}

impl std::fmt::Debug for ChoreRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ChoreRuntime")
            .field("chores", &inner.chores.iter().map(|r| r.chore.name()).collect::<Vec<_>>())
            .field("budget_shift", &inner.budget_shift)
            .field("seed", &self.seed)
            .finish()
    }
}

impl ChoreRuntime {
    /// A runtime sampling `metrics` for foreground pressure and minting
    /// tick contexts against `sink`.
    pub fn new(
        metrics: Metrics,
        sink: Arc<SpanSink>,
        seed: u64,
        backpressure: BackpressureConfig,
    ) -> Self {
        ChoreRuntime {
            metrics,
            sink,
            seed,
            backpressure,
            inner: TrackedMutex::new("core.chore.runtime", RuntimeInner {
                chores: Vec::new(),
                budget_shift: 0,
                journal: Vec::new(),
            }),
        }
    }

    /// Register a chore. Its first tick comes due one period after virtual
    /// zero; registration order breaks same-instant ties, so registration
    /// order is part of the deterministic schedule.
    pub fn register(&self, chore: Arc<dyn Chore>, config: ChoreConfig) {
        let period = config.period.max(1);
        self.inner.lock().chores.push(Registered {
            chore,
            period,
            base_budget: config.budget,
            next_due: period,
            last_tick: None,
            ticks: 0,
            work_done: 0,
            backlog_hint: 0,
            consecutive_failures: 0,
            deferred: 0,
        });
    }

    /// The foreground tail latency admission looks at: the worse of the
    /// windowed queue-phase and device-phase p99s for foreground-QoS
    /// spans. `None` when no foreground traffic has been observed.
    pub fn foreground_p99(&self) -> Option<Nanos> {
        let window = self.backpressure.window;
        let queue = self
            .metrics
            .histogram_tail(&format!("{QOS_PREFIX}{}.queue", QosClass::Foreground.name()), window);
        let device = self
            .metrics
            .histogram_tail(&format!("{QOS_PREFIX}{}.device", QosClass::Foreground.name()), window);
        match (queue, device) {
            (Some(q), Some(d)) => Some(q.p99.max(d.p99)),
            (Some(q), None) => Some(q.p99),
            (None, Some(d)) => Some(d.p99),
            (None, None) => None,
        }
    }

    /// Current backpressure level (0 = unpressured).
    pub fn budget_shift(&self) -> u32 {
        self.inner.lock().budget_shift
    }

    /// Run every due tick up to and including virtual time `until`,
    /// in due-time order. Returns the journal entries this call produced.
    pub fn run_until(&self, until: Nanos) -> Vec<TickEvent> {
        let mut inner = self.inner.lock();
        let journal_start = inner.journal.len();
        loop {
            // earliest due chore at or before `until`; registration order
            // breaks ties (strict `<` keeps the first-registered winner)
            let mut next: Option<(usize, Nanos)> = None;
            for (i, reg) in inner.chores.iter().enumerate() {
                if reg.next_due <= until && next.map_or(true, |(_, due)| reg.next_due < due) {
                    next = Some((i, reg.next_due));
                }
            }
            let Some((idx, now)) = next else { break };

            // admission: sample foreground pressure, adjust the shift
            let pressured = self
                .foreground_p99()
                .is_some_and(|p99| p99 > self.backpressure.p99_threshold);
            inner.budget_shift = if pressured {
                (inner.budget_shift + 1).min(self.backpressure.max_shift)
            } else {
                inner.budget_shift.saturating_sub(1)
            };
            let shift = inner.budget_shift;

            let reg = &mut inner.chores[idx];
            if pressured && shift >= self.backpressure.max_shift {
                // fully pressured: defer the tick a period
                reg.deferred += 1;
                reg.next_due = now.saturating_add(reg.period).max(now + 1);
                let event = TickEvent {
                    chore: reg.chore.name(),
                    at: now,
                    budget: ChoreBudget::new(0, 0),
                    outcome: TickOutcome::Deferred,
                };
                inner.journal.push(event);
                continue;
            }

            let mut budget = reg.base_budget;
            for _ in 0..shift {
                budget = budget.halved();
            }
            let ctx = IoCtx::new(now)
                .with_qos(QosClass::Maintenance)
                .with_sink(self.sink.clone());
            let chore = reg.chore.clone();
            let outcome = match chore.tick(&ctx, budget) {
                Ok(report) => {
                    reg.last_tick = Some(now);
                    reg.ticks += 1;
                    reg.work_done += report.work_done;
                    reg.backlog_hint = report.backlog_hint;
                    reg.consecutive_failures = 0;
                    // the chore may name its own due time; never schedule
                    // into the past or the same instant (no livelock)
                    let due = report.next_due.unwrap_or_else(|| now.saturating_add(reg.period));
                    reg.next_due = due.max(now + 1);
                    TickOutcome::Ticked(report)
                }
                Err(_) => {
                    reg.last_tick = Some(now);
                    reg.ticks += 1;
                    reg.consecutive_failures += 1;
                    let exp = (reg.consecutive_failures - 1).min(BACKOFF_MAX_EXP);
                    let delay = BACKOFF_BASE.saturating_mul(1 << exp);
                    let jitter = seeded_jitter(
                        self.seed,
                        idx as u64,
                        reg.consecutive_failures,
                        delay / 2,
                    );
                    let retry_at = now.saturating_add(delay).saturating_add(jitter);
                    reg.next_due = retry_at.max(now + 1);
                    TickOutcome::Failed { retry_at: reg.next_due }
                }
            };
            let event = TickEvent { chore: reg.chore.name(), at: now, budget, outcome };
            inner.journal.push(event);
        }
        inner.journal[journal_start..].to_vec()
    }

    /// The full tick journal since construction.
    pub fn journal(&self) -> Vec<TickEvent> {
        self.inner.lock().journal.clone()
    }

    /// Per-chore status: last tick, cumulative work, failure streak and
    /// the budget the next tick would be offered under current pressure.
    pub fn status(&self) -> Vec<ChoreStatus> {
        let inner = self.inner.lock();
        inner
            .chores
            .iter()
            .map(|reg| {
                let mut budget = reg.base_budget;
                for _ in 0..inner.budget_shift {
                    budget = budget.halved();
                }
                ChoreStatus {
                    name: reg.chore.name(),
                    last_tick: reg.last_tick,
                    ticks: reg.ticks,
                    work_done: reg.work_done,
                    backlog_hint: reg.backlog_hint,
                    consecutive_failures: reg.consecutive_failures,
                    current_budget: budget,
                    deferred: reg.deferred,
                    next_due: reg.next_due,
                }
            })
            .collect()
    }
}

/// Deterministic jitter in `[0, span)`: an xorshift64* hash of
/// `(seed, chore index, failure count)`. No wall clock, no global RNG —
/// the backoff schedule is a pure function of the seed.
fn seeded_jitter(seed: u64, chore_idx: u64, failures: u32, span: Nanos) -> Nanos {
    let mut x = seed
        ^ chore_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(failures).wrapping_mul(0xD1B5_4A32_D192_ED03)
        | 1;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D) % span.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::clock::micros;
    use common::Error;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A chore doing `backlog`-bounded unit work, failing on chosen ticks.
    struct TestChore {
        name: &'static str,
        backlog: AtomicU64,
        fail_first: u32,
        calls: AtomicU64,
    }

    impl TestChore {
        fn new(name: &'static str, backlog: u64) -> Self {
            TestChore {
                name,
                backlog: AtomicU64::new(backlog),
                fail_first: 0,
                calls: AtomicU64::new(0),
            }
        }

        fn failing(name: &'static str, fail_first: u32) -> Self {
            TestChore {
                name,
                backlog: AtomicU64::new(u64::MAX),
                fail_first,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Chore for TestChore {
        fn name(&self) -> &'static str {
            self.name
        }

        fn tick(&self, ctx: &IoCtx, budget: ChoreBudget) -> common::Result<TickReport> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if call < u64::from(self.fail_first) {
                return Err(Error::Io(format!("{} induced failure {call}", self.name)));
            }
            let backlog = self.backlog.load(Ordering::Relaxed);
            let done = backlog.min(budget.ops).min(budget.bytes);
            let left = backlog - done;
            self.backlog.store(left, Ordering::Relaxed);
            Ok(TickReport {
                work_done: done,
                backlog_hint: left,
                next_due: None,
                finished_at: ctx.now,
            })
        }
    }

    fn runtime(seed: u64) -> ChoreRuntime {
        let metrics = Metrics::new();
        let sink = Arc::new(SpanSink::new(metrics.clone()));
        ChoreRuntime::new(metrics, sink, seed, BackpressureConfig::default())
    }

    #[test]
    fn ticks_fire_in_due_time_order_with_registration_tiebreak() {
        let rt = runtime(1);
        rt.register(Arc::new(TestChore::new("fast", 100)), ChoreConfig::every(secs(1)));
        rt.register(Arc::new(TestChore::new("slow", 100)), ChoreConfig::every(secs(3)));
        rt.register(Arc::new(TestChore::new("tied", 100)), ChoreConfig::every(secs(1)));
        let events = rt.run_until(secs(3));
        let order: Vec<(&str, Nanos)> = events.iter().map(|e| (e.chore, e.at)).collect();
        assert_eq!(
            order,
            vec![
                ("fast", secs(1)),
                ("tied", secs(1)), // same due time: registration order
                ("fast", secs(2)),
                ("tied", secs(2)),
                ("fast", secs(3)),
                ("slow", secs(3)), // 3s period, registered second
                ("tied", secs(3)),
            ]
        );
    }

    #[test]
    fn same_seed_runs_replay_byte_identically() {
        let build = || {
            let rt = runtime(42);
            rt.register(Arc::new(TestChore::failing("flaky", 3)), ChoreConfig::every(secs(2)));
            rt.register(
                Arc::new(TestChore::new("steady", 1000)),
                ChoreConfig::every(secs(1)).with_budget(ChoreBudget::new(u64::MAX, 7)),
            );
            rt
        };
        let a = build();
        let b = build();
        let ja = a.run_until(secs(120));
        let jb = b.run_until(secs(120));
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "same seed + same schedule must replay identically");
    }

    #[test]
    fn failure_backoff_is_exponential_jittered_and_reproducible() {
        let rt = runtime(7);
        rt.register(Arc::new(TestChore::failing("flaky", 4)), ChoreConfig::every(secs(1)));
        let events = rt.run_until(secs(60));
        let retries: Vec<Nanos> = events
            .iter()
            .filter_map(|e| match e.outcome {
                TickOutcome::Failed { retry_at } => Some(retry_at),
                _ => None,
            })
            .collect();
        assert_eq!(retries.len(), 4);
        // delays grow 1s, 2s, 4s (+ jitter < half the delay each)
        let mut fail_at = secs(1);
        for (i, &retry) in retries.iter().enumerate() {
            let delay = BACKOFF_BASE * (1 << i);
            assert!(
                retry >= fail_at + delay && retry < fail_at + delay + delay / 2 + 1,
                "retry {i} at {retry} outside [{}, {})",
                fail_at + delay,
                fail_at + delay + delay / 2 + 1,
            );
            fail_at = retry;
        }
        // identical seed reproduces the exact sequence
        let rt2 = runtime(7);
        rt2.register(Arc::new(TestChore::failing("flaky", 4)), ChoreConfig::every(secs(1)));
        let events2 = rt2.run_until(secs(60));
        assert_eq!(events, events2);
        // a different seed jitters differently
        let rt3 = runtime(8);
        rt3.register(Arc::new(TestChore::failing("flaky", 4)), ChoreConfig::every(secs(1)));
        assert_ne!(events, rt3.run_until(secs(60)));
        // after the failures, success resets the streak
        let status = rt.status();
        assert_eq!(status[0].consecutive_failures, 0);
        assert!(status[0].ticks > 4);
    }

    #[test]
    fn backpressure_halves_budgets_then_defers_then_recovers() {
        let metrics = Metrics::new();
        let sink = Arc::new(SpanSink::new(metrics.clone()));
        let bp = BackpressureConfig { p99_threshold: millis(1), window: 8, max_shift: 2 };
        let rt = ChoreRuntime::new(metrics.clone(), sink.clone(), 5, bp);
        rt.register(
            Arc::new(TestChore::new("worker", u64::MAX)),
            ChoreConfig::every(secs(1)).with_budget(ChoreBudget::new(1024, 64)),
        );

        // quiet foreground: full budget
        let fg = IoCtx::new(0).with_sink(sink.clone());
        fg.record(common::ctx::Phase::Queue, 0, micros(10));
        let e = rt.run_until(secs(1));
        assert_eq!(e[0].budget, ChoreBudget::new(1024, 64));
        assert_eq!(rt.budget_shift(), 0);

        // burst: foreground queue p99 blows past the threshold
        for _ in 0..8 {
            fg.record(common::ctx::Phase::Queue, 0, millis(5));
        }
        let e = rt.run_until(secs(2));
        assert_eq!(e[0].budget, ChoreBudget::new(512, 32), "first pressured tick halves");
        let e = rt.run_until(secs(3));
        assert_eq!(
            e[0].outcome,
            TickOutcome::Deferred,
            "at max shift the tick is deferred outright"
        );
        assert_eq!(rt.status()[0].deferred, 1);

        // pressure clears: the window forgets the burst as fresh quiet
        // samples displace it, and budgets step back up
        for _ in 0..16 {
            fg.record(common::ctx::Phase::Queue, 0, micros(10));
        }
        let e = rt.run_until(secs(4));
        assert_eq!(e[0].budget, ChoreBudget::new(512, 32), "shift steps down, not jumps");
        let e = rt.run_until(secs(5));
        assert_eq!(e[0].budget, ChoreBudget::new(1024, 64), "full budget restored");
        assert_eq!(rt.budget_shift(), 0);
    }

    #[test]
    fn status_reports_cumulative_work_and_next_due() {
        let rt = runtime(3);
        rt.register(
            Arc::new(TestChore::new("worker", 10)),
            ChoreConfig::every(secs(1)).with_budget(ChoreBudget::new(u64::MAX, 4)),
        );
        rt.run_until(secs(2));
        let s = &rt.status()[0];
        assert_eq!(s.name, "worker");
        assert_eq!(s.ticks, 2);
        assert_eq!(s.work_done, 8);
        assert_eq!(s.backlog_hint, 2);
        assert_eq!(s.last_tick, Some(secs(2)));
        assert_eq!(s.next_due, secs(3));
        assert_eq!(s.consecutive_failures, 0);
    }
}
