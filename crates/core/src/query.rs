//! A small aggregate query engine with storage-side pushdown.
//!
//! Enough SQL surface for the paper's evaluation queries — Fig 13's DAU
//! query is `SELECT COUNT(*) … WHERE url = … AND start_time ∈ […) GROUP BY
//! province`. With pushdown on (the StreamLake path), filters, projection
//! and the aggregate all run at the storage side and only the aggregate
//! result crosses to the compute engine; with pushdown off (the baseline
//! path), every candidate row ships to compute first.

use common::clock::Nanos;
use common::ctx::{IoCtx, Phase};
use common::{Error, Result};
use format::{Expr, Value};
use lake::table::ScanStats;
use lake::{MetadataMode, ScanOptions, TableStore};
use simdisk::Transport;
use std::collections::BTreeMap;

/// Supported aggregate functions.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)`
    CountStar,
    /// `SUM(column)` over an Int64/Float64 column.
    Sum(String),
    /// `MIN(column)`.
    Min(String),
    /// `MAX(column)`.
    Max(String),
}

/// One aggregate query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Table to query.
    pub table: String,
    /// `WHERE` clause.
    pub predicate: Expr,
    /// Optional `GROUP BY` column.
    pub group_by: Option<String>,
    /// The aggregate to compute.
    pub aggregate: Aggregate,
}

impl Query {
    /// The Fig 13 DAU query: count flows to `url` within `[lo, hi)` grouped
    /// by province.
    pub fn dau(table: &str, url: &str, lo: i64, hi: i64) -> Query {
        use format::{CmpOp, Predicate};
        Query {
            table: table.to_string(),
            predicate: Expr::all(vec![
                Predicate::cmp("url", CmpOp::Eq, url),
                Predicate::cmp("start_time", CmpOp::Ge, lo),
                Predicate::cmp("start_time", CmpOp::Lt, hi),
            ]),
            group_by: Some("province".to_string()),
            aggregate: Aggregate::CountStar,
        }
    }
}

/// Result of a query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// `(group key, aggregate value)` rows; a single `(Str(""), v)` row for
    /// ungrouped queries.
    pub groups: BTreeMap<String, f64>,
    /// Storage scan statistics.
    pub scan: ScanStats,
    /// End-to-end virtual time, including the compute-transfer leg.
    pub elapsed: Nanos,
}

/// The query engine.
#[derive(Debug)]
pub struct QueryEngine {
    transport: Transport,
    /// Whether filters/aggregates are pushed down to storage.
    pub pushdown: bool,
    /// Metadata path used for planning.
    pub metadata_mode: MetadataMode,
}

impl QueryEngine {
    /// An engine with pushdown enabled over RDMA (the StreamLake setup).
    pub fn new() -> Self {
        QueryEngine { transport: Transport::Rdma, pushdown: true, metadata_mode: MetadataMode::Accelerated }
    }

    /// The baseline engine: no pushdown, file-based metadata, TCP.
    pub fn baseline() -> Self {
        QueryEngine {
            transport: Transport::Tcp,
            pushdown: false,
            metadata_mode: MetadataMode::FileBased,
        }
    }

    /// Execute `query` at the context's virtual time.
    pub fn execute(&self, store: &TableStore, query: &Query, ctx: &IoCtx) -> Result<QueryOutput> {
        // Columns the aggregate needs.
        let mut projection: Vec<String> = Vec::new();
        if let Some(g) = &query.group_by {
            projection.push(g.clone());
        }
        match &query.aggregate {
            Aggregate::CountStar => {}
            Aggregate::Sum(c) | Aggregate::Min(c) | Aggregate::Max(c) => {
                if !projection.contains(c) {
                    projection.push(c.clone());
                }
            }
        }
        let opts = ScanOptions {
            predicate: query.predicate.clone(),
            // With pushdown, only needed columns leave storage; without it,
            // full rows ship to the compute engine.
            projection: if self.pushdown && !projection.is_empty() {
                Some(projection.clone())
            } else {
                None
            },
            as_of: None,
            mode: self.metadata_mode,
            pushdown: self.pushdown,
            // conventional engines prune partitions too (Hive-style layouts)
            partition_pruning: true,
        };
        let result = store.select(&query.table, &opts, ctx)?;
        // Aggregate (at storage when pushed down, at compute otherwise).
        let profile = store.catalog().get(&query.table)?;
        let group_idx = match (&query.group_by, self.pushdown && !projection.is_empty()) {
            (Some(_), true) => Some(0),
            (Some(g), false) => Some(profile.schema.index_of(g)?),
            (None, _) => None,
        };
        let value_idx = match (&query.aggregate, self.pushdown && !projection.is_empty()) {
            (Aggregate::CountStar, _) => None,
            (Aggregate::Sum(_) | Aggregate::Min(_) | Aggregate::Max(_), true) => {
                Some(projection.len() - 1)
            }
            (Aggregate::Sum(c) | Aggregate::Min(c) | Aggregate::Max(c), false) => {
                Some(profile.schema.index_of(c)?)
            }
        };
        let mut groups: BTreeMap<String, f64> = BTreeMap::new();
        for row in &result.rows {
            let key = match group_idx {
                Some(i) => match &row[i] {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                },
                None => String::new(),
            };
            let val = match value_idx {
                None => 1.0,
                Some(i) => match &row[i] {
                    Value::Int(v) => *v as f64,
                    Value::Float(v) => *v,
                    other => {
                        return Err(Error::InvalidArgument(format!(
                            "cannot aggregate over {other}"
                        )))
                    }
                },
            };
            let entry = groups.entry(key);
            match &query.aggregate {
                Aggregate::CountStar | Aggregate::Sum(_) => {
                    *entry.or_insert(0.0) += val;
                }
                Aggregate::Min(_) => {
                    let e = entry.or_insert(f64::INFINITY);
                    *e = e.min(val);
                }
                Aggregate::Max(_) => {
                    let e = entry.or_insert(f64::NEG_INFINITY);
                    *e = e.max(val);
                }
            }
        }
        // Compute-transfer leg: pushed-down queries ship only the aggregate;
        // the baseline ships every matching row's bytes.
        let transfer_bytes = if self.pushdown {
            groups.len() as u64 * 24
        } else {
            result
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|v| {
                            let mut b = Vec::new();
                            v.encode(&mut b);
                            b.len() as u64
                        })
                        .sum::<u64>()
                })
                .sum()
        };
        let transfer = self.transport.transfer_time(transfer_bytes);
        ctx.record(
            Phase::Wan,
            ctx.now + result.stats.metadata_time + result.stats.data_time,
            transfer,
        );
        let elapsed =
            result.stats.metadata_time + result.stats.data_time + transfer;
        Ok(QueryOutput { groups, scan: result.stats, elapsed })
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{StreamLake, StreamLakeConfig};
    use lake::catalog::PartitionSpec;
    use workloads::packets::PacketGen;

    const T0: i64 = 1_656_806_400;

    fn loaded_system(n: usize) -> (StreamLake, Vec<workloads::packets::Packet>) {
        let sl = StreamLake::new(StreamLakeConfig::small());
        sl.tables()
            .create_table(
                "dpi",
                PacketGen::schema(),
                Some(PartitionSpec::hourly("start_time")),
                5000,
                &IoCtx::new(0),
            )
            .unwrap();
        // spread the data over six hourly partitions
        let mut packets = Vec::new();
        for h in 0..6u64 {
            let mut g = PacketGen::new(1 + h, T0 + h as i64 * 3600, 500);
            let batch = g.batch(n / 6);
            let rows: Vec<_> = batch.iter().map(|p| p.to_row()).collect();
            sl.tables().insert("dpi", &rows, &IoCtx::new(0)).unwrap();
            packets.extend(batch);
        }
        (sl, packets)
    }

    #[test]
    fn dau_query_counts_by_province() {
        let (sl, packets) = loaded_system(2000);
        let url = &packets[0].url.clone();
        let q = Query::dau("dpi", url, T0, T0 + 86_400);
        let out = QueryEngine::new().execute(sl.tables(), &q, &IoCtx::new(0)).unwrap();
        // ground truth
        let mut truth: BTreeMap<String, f64> = BTreeMap::new();
        for p in &packets {
            if &p.url == url && p.start_time >= T0 && p.start_time < T0 + 86_400 {
                *truth.entry(p.province.clone()).or_insert(0.0) += 1.0;
            }
        }
        assert_eq!(out.groups, truth);
    }

    #[test]
    fn pushdown_and_baseline_agree_but_pushdown_is_faster() {
        let (sl, packets) = loaded_system(3000);
        let url = packets[0].url.clone();
        sl.sync(&sl.root_ctx(common::ctx::QosClass::Foreground)).unwrap(); // baseline needs persisted metadata files
        let q = Query::dau("dpi", &url, T0, T0 + 2);
        // evaluate both at quiet, distinct virtual instants so device queues
        // from loading have drained
        let fast = QueryEngine::new()
            .execute(sl.tables(), &q, &IoCtx::new(common::clock::secs(100)))
            .unwrap();
        let slow = QueryEngine::baseline()
            .execute(sl.tables(), &q, &IoCtx::new(common::clock::secs(200)))
            .unwrap();
        assert_eq!(fast.groups, slow.groups, "pushdown must not change answers");
        assert!(
            fast.elapsed < slow.elapsed,
            "pushdown {} must beat baseline {}",
            fast.elapsed,
            slow.elapsed
        );
        // Both engines prune partitions (Hive-style layouts do too), so
        // file counts match; the win is row shipping avoided + RDMA.
        assert!(fast.scan.files_scanned <= slow.scan.files_scanned);
    }

    #[test]
    fn sum_min_max_aggregates() {
        let (sl, _) = loaded_system(500);
        let engine = QueryEngine::new();
        let base = Query {
            table: "dpi".into(),
            predicate: Expr::True,
            group_by: None,
            aggregate: Aggregate::Sum("bytes_down".into()),
        };
        let sum = engine.execute(sl.tables(), &base, &IoCtx::new(0)).unwrap();
        let min = engine
            .execute(
                sl.tables(),
                &Query { aggregate: Aggregate::Min("bytes_down".into()), ..base.clone() },
                &IoCtx::new(0),
            )
            .unwrap();
        let max = engine
            .execute(
                sl.tables(),
                &Query { aggregate: Aggregate::Max("bytes_down".into()), ..base.clone() },
                &IoCtx::new(0),
            )
            .unwrap();
        let s = sum.groups[""];
        let lo = min.groups[""];
        let hi = max.groups[""];
        assert!(lo <= hi);
        assert!(s >= hi);
        assert!(s / 500.0 >= lo && s / 500.0 <= hi, "mean must lie in [min, max]");
    }

    #[test]
    fn ungrouped_count() {
        let (sl, packets) = loaded_system(200);
        let q = Query {
            table: "dpi".into(),
            predicate: Expr::True,
            group_by: None,
            aggregate: Aggregate::CountStar,
        };
        let out = QueryEngine::new().execute(sl.tables(), &q, &IoCtx::new(0)).unwrap();
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[""], packets.len() as f64);
    }
}
