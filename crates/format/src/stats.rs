//! Per-column statistics kept in file footers and commit metadata.
//!
//! Statistics power two levels of data skipping: within a file (footer
//! row-group stats, §IV-B "Footers in the Parquet files contain statistics")
//! and across files (commit-level value ranges used by the scan planner).

use crate::column::Column;
use crate::value::Value;
use common::{Error, Result};
use std::cmp::Ordering;

/// Min/max/count statistics for one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest value in the chunk.
    pub min: Value,
    /// Largest value in the chunk.
    pub max: Value,
    /// Number of rows in the chunk.
    pub row_count: u64,
}

impl ColumnStats {
    /// Compute stats for a non-empty column; `None` for an empty one.
    pub fn from_column(col: &Column) -> Option<ColumnStats> {
        if col.is_empty() {
            return None;
        }
        let mut min = col.value(0);
        let mut max = col.value(0);
        for i in 1..col.len() {
            let v = col.value(i);
            if v.partial_cmp_same_type(&min) == Some(Ordering::Less) {
                min = v.clone();
            }
            if v.partial_cmp_same_type(&max) == Some(Ordering::Greater) {
                max = v;
            }
        }
        Some(ColumnStats { min, max, row_count: col.len() as u64 })
    }

    /// Merge two chunk stats into stats covering both.
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        let min = if other.min.partial_cmp_same_type(&self.min) == Some(Ordering::Less) {
            other.min.clone()
        } else {
            self.min.clone()
        };
        let max = if other.max.partial_cmp_same_type(&self.max) == Some(Ordering::Greater) {
            other.max.clone()
        } else {
            self.max.clone()
        };
        ColumnStats { min, max, row_count: self.row_count + other.row_count }
    }

    /// Whether `v` can possibly appear in the chunk (`min <= v <= max`).
    pub fn may_contain(&self, v: &Value) -> bool {
        matches!(
            v.partial_cmp_same_type(&self.min),
            Some(Ordering::Greater) | Some(Ordering::Equal)
        ) && matches!(
            v.partial_cmp_same_type(&self.max),
            Some(Ordering::Less) | Some(Ordering::Equal)
        )
    }

    /// Serialize to footer bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.min.encode(out);
        self.max.encode(out);
        common::varint::encode_u64(self.row_count, out);
    }

    /// Decode from footer bytes; returns stats and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(ColumnStats, usize)> {
        let (min, a) = Value::decode(buf)?;
        let (max, b) = Value::decode(&buf[a..])?;
        let (row_count, c) = common::varint::decode_u64(&buf[a + b..])?;
        if min.dtype() != max.dtype() {
            return Err(Error::Corruption("stats min/max types differ".into()));
        }
        Ok((ColumnStats { min, max, row_count }, a + b + c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_column_finds_extremes() {
        let s = ColumnStats::from_column(&Column::Int(vec![5, -2, 9, 0])).unwrap();
        assert_eq!(s.min, Value::Int(-2));
        assert_eq!(s.max, Value::Int(9));
        assert_eq!(s.row_count, 4);
    }

    #[test]
    fn empty_column_has_no_stats() {
        assert!(ColumnStats::from_column(&Column::Str(vec![])).is_none());
    }

    #[test]
    fn string_stats_are_lexicographic() {
        let s = ColumnStats::from_column(&Column::Str(vec![
            "beijing".into(),
            "guangdong".into(),
            "anhui".into(),
        ]))
        .unwrap();
        assert_eq!(s.min, Value::from("anhui"));
        assert_eq!(s.max, Value::from("guangdong"));
    }

    #[test]
    fn merge_widens_range() {
        let a = ColumnStats::from_column(&Column::Int(vec![1, 5])).unwrap();
        let b = ColumnStats::from_column(&Column::Int(vec![-3, 2])).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.min, Value::Int(-3));
        assert_eq!(m.max, Value::Int(5));
        assert_eq!(m.row_count, 4);
    }

    #[test]
    fn may_contain_respects_bounds() {
        let s = ColumnStats::from_column(&Column::Int(vec![10, 20])).unwrap();
        assert!(s.may_contain(&Value::Int(10)));
        assert!(s.may_contain(&Value::Int(15)));
        assert!(s.may_contain(&Value::Int(20)));
        assert!(!s.may_contain(&Value::Int(9)));
        assert!(!s.may_contain(&Value::Int(21)));
        assert!(!s.may_contain(&Value::from("ten"))); // type mismatch is "no"
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = ColumnStats::from_column(&Column::Float(vec![1.5, -0.5])).unwrap();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let (back, used) = ColumnStats::decode(&buf).unwrap();
        assert_eq!(back, s);
        assert_eq!(used, buf.len());
    }
}
