//! The lake file: row groups of compressed column chunks plus a
//! statistics-bearing footer.
//!
//! Layout (all offsets from the start of the file):
//!
//! ```text
//! "SLKF1"                                  magic header
//! column chunks, row group by row group    (encoded + optionally compressed)
//! footer:  schema, row-group directory     (offsets, lengths, encodings,
//!                                           per-column min/max stats)
//! footer_len: u32 LE
//! footer_crc: u32 LE                       CRC32 of the footer bytes
//! "SLKF1"                                  magic trailer
//! ```
//!
//! Readers locate the footer from the trailer, verify its CRC, and then can
//! read any projection of any row group independently — including skipping
//! whole row groups whose statistics refute a pushdown predicate.

use crate::column::{columns_to_rows, rows_to_columns, Column};
use crate::compress;
use crate::encoding::{decode_column, encode_column, Encoding};
use crate::predicate::Expr;
use crate::schema::Schema;
use crate::stats::ColumnStats;
use crate::value::Row;
use common::checksum::crc32;
use common::varint;
use common::{Bytes, Error, Result};

const MAGIC: &[u8; 5] = b"SLKF1";

/// Location and coding of one column chunk within the file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChunkMeta {
    offset: u64,
    len: u64,
    encoding: Encoding,
    compressed: bool,
}

/// Directory entry for one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGroupMeta {
    /// Rows in this group.
    pub n_rows: u64,
    chunks: Vec<ChunkMeta>,
    /// Per-column statistics, in schema order.
    pub stats: Vec<ColumnStats>,
}

/// Writes rows into the lake file format.
#[derive(Debug)]
pub struct LakeFileWriter {
    schema: Schema,
    rows_per_group: usize,
}

impl LakeFileWriter {
    /// A writer for `schema` that cuts a row group every `rows_per_group`
    /// rows (the paper's target-file-size knob, expressed in rows).
    pub fn new(schema: Schema, rows_per_group: usize) -> Result<Self> {
        if rows_per_group == 0 {
            return Err(Error::InvalidArgument("rows_per_group must be positive".into()));
        }
        Ok(LakeFileWriter { schema, rows_per_group })
    }

    /// The writer's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Encode `rows` into a complete file image.
    pub fn encode(&self, rows: &[Row]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(64 + rows.len() * 16);
        out.extend_from_slice(MAGIC);
        let mut groups: Vec<RowGroupMeta> = Vec::new();
        for group_rows in rows.chunks(self.rows_per_group) {
            let cols = rows_to_columns(&self.schema, group_rows)?;
            let mut chunks = Vec::with_capacity(cols.len());
            let mut stats = Vec::with_capacity(cols.len());
            for col in &cols {
                let (enc, encoded) = encode_column(col);
                let packed = compress::compress(&encoded);
                let (compressed, payload) =
                    if packed.len() < encoded.len() { (true, packed) } else { (false, encoded) };
                let offset = out.len() as u64;
                out.extend_from_slice(&payload);
                chunks.push(ChunkMeta {
                    offset,
                    len: payload.len() as u64,
                    encoding: enc,
                    compressed,
                });
                // Row groups come from `chunks()` and are never empty, but a
                // stats failure must not take the writer down.
                stats.push(ColumnStats::from_column(col).ok_or_else(|| {
                    Error::InvalidArgument("empty row group has no statistics".into())
                })?);
            }
            groups.push(RowGroupMeta { n_rows: group_rows.len() as u64, chunks, stats });
        }
        // footer
        let mut footer = Vec::new();
        self.schema.encode(&mut footer);
        varint::encode_u64(groups.len() as u64, &mut footer);
        for g in &groups {
            varint::encode_u64(g.n_rows, &mut footer);
            for (c, s) in g.chunks.iter().zip(&g.stats) {
                varint::encode_u64(c.offset, &mut footer);
                varint::encode_u64(c.len, &mut footer);
                footer.push(c.encoding.tag());
                footer.push(c.compressed as u8);
                s.encode(&mut footer);
            }
        }
        let footer_len = footer.len() as u32;
        let footer_crc = crc32(&footer);
        out.extend_from_slice(&footer);
        out.extend_from_slice(&footer_len.to_le_bytes());
        out.extend_from_slice(&footer_crc.to_le_bytes());
        out.extend_from_slice(MAGIC);
        Ok(out)
    }
}

/// Reads a lake file image.
#[derive(Debug)]
pub struct LakeFileReader {
    schema: Schema,
    groups: Vec<RowGroupMeta>,
    data: Bytes,
}

impl LakeFileReader {
    /// Parse and validate a file image. Accepts any `Into<Bytes>`, so a
    /// caller already holding a [`Bytes`] (e.g. a PLog read) opens the file
    /// without paying a payload copy.
    pub fn open(data: impl Into<Bytes>) -> Result<Self> {
        let data = data.into();
        let n = data.len();
        if n < MAGIC.len() * 2 + 8 || &data[..MAGIC.len()] != MAGIC || &data[n - MAGIC.len()..] != MAGIC
        {
            return Err(Error::Corruption("bad lake file magic".into()));
        }
        let tail = n - MAGIC.len();
        let footer_crc = read_u32_le(&data, tail - 4)?;
        let footer_len = read_u32_le(&data, tail - 8)? as usize;
        if tail < 8 + footer_len {
            return Err(Error::Corruption("footer length exceeds file".into()));
        }
        let footer = &data[tail - 8 - footer_len..tail - 8];
        if crc32(footer) != footer_crc {
            return Err(Error::Corruption("footer crc mismatch".into()));
        }
        let (schema, mut off) = Schema::decode(footer)?;
        let (group_count, used) = varint::decode_u64(&footer[off..])?;
        off += used;
        let width = schema.width();
        let mut groups = Vec::with_capacity(group_count as usize);
        for _ in 0..group_count {
            let (n_rows, used) = varint::decode_u64(&footer[off..])?;
            off += used;
            let mut chunks = Vec::with_capacity(width);
            let mut stats = Vec::with_capacity(width);
            for _ in 0..width {
                let (offset, a) = varint::decode_u64(&footer[off..])?;
                off += a;
                let (len, b) = varint::decode_u64(&footer[off..])?;
                off += b;
                let enc_tag = *footer
                    .get(off)
                    .ok_or_else(|| Error::Corruption("footer truncated at encoding".into()))?;
                let comp = *footer
                    .get(off + 1)
                    .ok_or_else(|| Error::Corruption("footer truncated at compression".into()))?;
                off += 2;
                let (s, c) = ColumnStats::decode(&footer[off..])?;
                off += c;
                chunks.push(ChunkMeta {
                    offset,
                    len,
                    encoding: Encoding::from_tag(enc_tag)?,
                    compressed: comp != 0,
                });
                stats.push(s);
            }
            groups.push(RowGroupMeta { n_rows, chunks, stats });
        }
        Ok(LakeFileReader { schema, groups, data })
    }

    /// The file's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row-group directory (for external scan planners).
    pub fn row_groups(&self) -> &[RowGroupMeta] {
        &self.groups
    }

    /// Total rows across all row groups.
    pub fn total_rows(&self) -> u64 {
        self.groups.iter().map(|g| g.n_rows).sum()
    }

    /// Merged per-column statistics across all row groups (file-level stats
    /// recorded in commit metadata). `None` for an empty file.
    pub fn file_stats(&self) -> Option<Vec<ColumnStats>> {
        let mut iter = self.groups.iter();
        let first = iter.next()?;
        let mut acc = first.stats.clone();
        for g in iter {
            for (a, s) in acc.iter_mut().zip(&g.stats) {
                *a = a.merge(s);
            }
        }
        Some(acc)
    }

    /// Read the columns of row group `idx`; `projection` selects column
    /// indices (in schema order) or all columns when `None`.
    pub fn read_group(&self, idx: usize, projection: Option<&[usize]>) -> Result<Vec<Column>> {
        let group = self
            .groups
            .get(idx)
            .ok_or_else(|| Error::NotFound(format!("row group {idx}")))?;
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.schema.width()).collect(),
        };
        let mut cols = Vec::with_capacity(indices.len());
        for &ci in &indices {
            let chunk = group
                .chunks
                .get(ci)
                .ok_or_else(|| Error::InvalidArgument(format!("column index {ci}")))?;
            let raw = self
                .data
                .as_slice()
                .get(chunk.offset as usize..(chunk.offset + chunk.len) as usize)
                .ok_or_else(|| Error::Corruption("chunk beyond file".into()))?;
            // Uncompressed chunks decode straight out of the shared buffer;
            // only compressed chunks materialize an intermediate allocation.
            let decompressed;
            let encoded: &[u8] = if chunk.compressed {
                decompressed = compress::decompress(raw)?;
                &decompressed
            } else {
                raw
            };
            cols.push(decode_column(chunk.encoding, self.schema.field(ci).dtype, encoded)?);
        }
        Ok(cols)
    }

    /// Number of row groups whose statistics refute `expr` (skippable).
    pub fn skippable_groups(&self, expr: &Expr) -> usize {
        self.groups
            .iter()
            .filter(|g| !self.group_may_match(g, expr))
            .count()
    }

    /// Scan the file with predicate pushdown and projection, skipping row
    /// groups by statistics. Returns matching rows restricted to
    /// `projection` (or full rows when `None`).
    pub fn scan(&self, expr: &Expr, projection: Option<&[usize]>) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for (gi, g) in self.groups.iter().enumerate() {
            if !self.group_may_match(g, expr) {
                continue;
            }
            // Evaluate the predicate on full rows, then project.
            let cols = self.read_group(gi, None)?;
            let rows = columns_to_rows(&cols);
            for row in rows {
                if expr.eval_row(&self.schema, &row)? {
                    match projection {
                        Some(p) => out.push(p.iter().map(|&i| row[i].clone()).collect()),
                        None => out.push(row),
                    }
                }
            }
        }
        Ok(out)
    }

    fn group_may_match(&self, g: &RowGroupMeta, expr: &Expr) -> bool {
        expr.may_match(&|name: &str| {
            self.schema
                .index_of(name)
                .ok()
                .and_then(|i| g.stats.get(i))
        })
    }
}

/// Read a little-endian `u32` at `pos`, as a corruption error on truncation.
fn read_u32_le(data: &[u8], pos: usize) -> Result<u32> {
    let bytes: [u8; 4] = data
        .get(pos..pos + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| Error::Corruption("file truncated inside footer length".into()))?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::{DataType, Field};
    use crate::value::Value;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("ts", DataType::Int64),
            Field::new("province", DataType::Utf8),
            Field::new("bytes", DataType::Float64),
        ])
        .unwrap()
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        let provinces = ["beijing", "guangdong", "shanghai", "sichuan"];
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(1_656_806_400 + i as i64),
                    Value::from(provinces[i % provinces.len()]),
                    Value::Float(i as f64 * 1.5),
                ]
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let rows = sample_rows(1000);
        let w = LakeFileWriter::new(schema(), 256).unwrap();
        let bytes = w.encode(&rows).unwrap();
        let r = LakeFileReader::open(bytes).unwrap();
        assert_eq!(r.total_rows(), 1000);
        assert_eq!(r.row_groups().len(), 4); // 256*3 + 232
        let back = r.scan(&Expr::True, None).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn projection_reads_only_requested_columns() {
        let rows = sample_rows(100);
        let w = LakeFileWriter::new(schema(), 50).unwrap();
        let r = LakeFileReader::open(w.encode(&rows).unwrap()).unwrap();
        let cols = r.read_group(0, Some(&[1])).unwrap();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].dtype(), DataType::Utf8);
        let projected = r.scan(&Expr::True, Some(&[2, 0])).unwrap();
        assert_eq!(projected[0].len(), 2);
        assert_eq!(projected[0][1], rows[0][0]);
    }

    #[test]
    fn stats_skip_row_groups_outside_time_range() {
        // Timestamps are sorted, so a tight WHERE range must skip most groups
        // — the data-skipping behaviour Fig 13's DAU query relies on.
        let rows = sample_rows(1000);
        let w = LakeFileWriter::new(schema(), 100).unwrap();
        let r = LakeFileReader::open(w.encode(&rows).unwrap()).unwrap();
        let expr = Expr::all(vec![
            Predicate::cmp("ts", CmpOp::Ge, 1_656_806_400i64 + 500),
            Predicate::cmp("ts", CmpOp::Lt, 1_656_806_400i64 + 600),
        ]);
        assert_eq!(r.skippable_groups(&expr), 9, "9 of 10 groups must be skipped");
        let hits = r.scan(&expr, None).unwrap();
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn empty_file_roundtrips() {
        let w = LakeFileWriter::new(schema(), 10).unwrap();
        let r = LakeFileReader::open(w.encode(&[]).unwrap()).unwrap();
        assert_eq!(r.total_rows(), 0);
        assert!(r.file_stats().is_none());
        assert!(r.scan(&Expr::True, None).unwrap().is_empty());
    }

    #[test]
    fn file_stats_merge_groups() {
        let rows = sample_rows(100);
        let w = LakeFileWriter::new(schema(), 10).unwrap();
        let r = LakeFileReader::open(w.encode(&rows).unwrap()).unwrap();
        let stats = r.file_stats().unwrap();
        assert_eq!(stats[0].min, Value::Int(1_656_806_400));
        assert_eq!(stats[0].max, Value::Int(1_656_806_400 + 99));
        assert_eq!(stats[0].row_count, 100);
    }

    #[test]
    fn corrupt_magic_and_footer_rejected() {
        let rows = sample_rows(10);
        let w = LakeFileWriter::new(schema(), 10).unwrap();
        let good = w.encode(&rows).unwrap();
        // bad head magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(LakeFileReader::open(bad).is_err());
        // footer bit flip
        let mut bad = good.clone();
        let idx = good.len() - 20;
        bad[idx] ^= 0xFF;
        assert!(LakeFileReader::open(bad).is_err());
        // truncation never panics
        for cut in 0..good.len().min(64) {
            let _ = LakeFileReader::open(good[..cut].to_vec());
        }
    }

    #[test]
    fn columnar_beats_row_storage_on_log_data() {
        // EC+Col-store in Fig 14(d) assumes columnar re-encoding shrinks log
        // data; check the whole-file footprint against naive row storage.
        let rows = sample_rows(5000);
        let row_size: usize = rows
            .iter()
            .map(|r| {
                let mut buf = Vec::new();
                for v in r {
                    v.encode(&mut buf);
                }
                buf.len()
            })
            .sum();
        let w = LakeFileWriter::new(schema(), 1024).unwrap();
        let bytes = w.encode(&rows).unwrap();
        assert!(
            bytes.len() * 2 < row_size,
            "columnar file {} must be <0.5x row encoding {}",
            bytes.len(),
            row_size
        );
    }

    #[test]
    fn opening_and_scanning_a_bytes_image_pays_no_payload_copies() {
        // A reader handed an existing `Bytes` (the PLog read path) must not
        // re-materialize the image, and uncompressed chunks must decode
        // straight out of the shared buffer.
        let rows = sample_rows(512);
        let w = LakeFileWriter::new(schema(), 128).unwrap();
        let image = Bytes::from_vec(w.encode(&rows).unwrap());
        let before = common::bytes::payload_copies();
        let r = LakeFileReader::open(image).unwrap();
        let back = r.scan(&Expr::True, None).unwrap();
        assert_eq!(back.len(), 512);
        assert_eq!(
            common::bytes::payload_copies(),
            before,
            "opening from Bytes and scanning must not copy the file payload"
        );
    }

    #[test]
    fn scan_with_string_predicate() {
        let rows = sample_rows(200);
        let w = LakeFileWriter::new(schema(), 64).unwrap();
        let r = LakeFileReader::open(w.encode(&rows).unwrap()).unwrap();
        let expr = Expr::Pred(Predicate::cmp("province", CmpOp::Eq, "beijing"));
        let hits = r.scan(&expr, None).unwrap();
        assert_eq!(hits.len(), 50);
        assert!(hits.iter().all(|r| r[1] == Value::from("beijing")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn scan_matches_bruteforce(
            n in 1usize..300,
            group in 1usize..64,
            lo in -100i64..100,
            hi in -100i64..100,
        ) {
            let rows: Vec<Row> = (0..n)
                .map(|i| vec![
                    Value::Int((i as i64 * 37) % 100 - 50),
                    Value::from(["a", "b", "c"][i % 3]),
                    Value::Float(i as f64),
                ])
                .collect();
            let w = LakeFileWriter::new(schema(), group).unwrap();
            let r = LakeFileReader::open(w.encode(&rows).unwrap()).unwrap();
            let expr = Expr::all(vec![
                Predicate::cmp("ts", CmpOp::Ge, lo.min(hi)),
                Predicate::cmp("ts", CmpOp::Lt, lo.max(hi)),
            ]);
            let got = r.scan(&expr, None).unwrap();
            let expected: Vec<Row> = rows
                .into_iter()
                .filter(|row| {
                    let t = row[0].as_int().unwrap();
                    t >= lo.min(hi) && t < lo.max(hi)
                })
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}
