//! The columnar file format for StreamLake table objects.
//!
//! The paper stores table data "in Parquet files … organized as row-groups
//! and stored in a columnar format for efficient analysis. Footers … contain
//! statistics to support data skipping within the file" (§IV-B). This crate
//! implements an equivalent self-describing columnar format from scratch:
//!
//! * [`schema`] — data types, fields, schemas;
//! * [`value`] — dynamically-typed values and rows;
//! * [`mod@column`] — typed column vectors built from rows;
//! * [`encoding`] — plain, delta-varint, dictionary and bit-packed column
//!   encodings chosen per chunk;
//! * [`compress`] — an LZ77-family byte compressor applied per chunk;
//! * [`stats`] — per-column min/max statistics kept in the footer;
//! * [`predicate`] — a pushdown predicate AST evaluated against rows *and*
//!   against footer statistics (data skipping);
//! * [`mod@file`] — the writer/reader with row groups, projected reads and
//!   stats-based row-group skipping.

pub mod column;
pub mod compress;
pub mod encoding;
pub mod file;
pub mod predicate;
pub mod schema;
pub mod stats;
pub mod value;

pub use column::{columns_to_rows, rows_to_columns, Column};
pub use file::{LakeFileReader, LakeFileWriter};
pub use predicate::{CmpOp, Expr, Predicate};
pub use schema::{DataType, Field, Schema};
pub use stats::ColumnStats;
pub use value::{Row, Value};
