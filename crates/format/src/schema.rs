//! Schemas for table objects.
//!
//! A schema is an ordered list of named, typed fields. Field names are
//! unique; lookups by name return the column index used everywhere else in
//! the format. Values are non-nullable — the DPI-log and TPC-H workloads the
//! paper evaluates have fully-populated records, and the simplification
//! keeps statistics exact.

use common::varint;
use common::{Error, Result};

/// The primitive column types supported by the format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for epoch timestamps).
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
}

impl DataType {
    fn tag(self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Utf8 => 2,
            DataType::Bool => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Utf8,
            3 => DataType::Bool,
            other => return Err(Error::Corruption(format!("unknown datatype tag {other}"))),
        })
    }
}

/// One named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within the schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema; rejects duplicate field names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(Error::InvalidArgument(format!("duplicate field name {:?}", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::NotFound(format!("column {name:?}")))
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Serialize for the file footer.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::encode_u64(self.fields.len() as u64, out);
        for f in &self.fields {
            varint::encode_u64(f.name.len() as u64, out);
            out.extend_from_slice(f.name.as_bytes());
            out.push(f.dtype.tag());
        }
    }

    /// Decode from footer bytes; returns the schema and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        let mut off = 0;
        let (count, n) = varint::decode_u64(buf)?;
        off += n;
        let mut fields = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (len, n) = varint::decode_u64(&buf[off..])?;
            off += n;
            let name_bytes = buf
                .get(off..off + len as usize)
                .ok_or_else(|| Error::Corruption("schema truncated in field name".into()))?;
            off += len as usize;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| Error::Corruption("field name not utf-8".into()))?;
            let tag = *buf
                .get(off)
                .ok_or_else(|| Error::Corruption("schema truncated at dtype".into()))?;
            off += 1;
            fields.push(Field { name, dtype: DataType::from_tag(tag)? });
        }
        Ok((Schema::new(fields)?, off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("url", DataType::Utf8),
            Field::new("start_time", DataType::Int64),
            Field::new("bytes", DataType::Float64),
            Field::new("is_https", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn index_lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("start_time").unwrap(), 1);
        assert_eq!(s.width(), 4);
        assert!(matches!(s.index_of("missing"), Err(Error::NotFound(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ]);
        assert!(matches!(r, Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let (back, used) = Schema::decode(&buf).unwrap();
        assert_eq!(back, s);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn truncated_schema_is_corruption() {
        let s = sample();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        for cut in 1..buf.len() {
            assert!(Schema::decode(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn unknown_dtype_tag_rejected() {
        let mut buf = Vec::new();
        common::varint::encode_u64(1, &mut buf);
        common::varint::encode_u64(1, &mut buf);
        buf.push(b'x');
        buf.push(42); // bogus tag
        assert!(Schema::decode(&buf).is_err());
    }
}
