//! Typed column vectors.
//!
//! Rows arrive row-oriented from the stream side; the writer pivots them
//! into [`Column`]s before encoding. Readers pivot back on demand.

use crate::schema::{DataType, Schema};
use crate::value::{Row, Value};
use common::{Error, Result};

/// A homogeneous column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
    /// Boolean column.
    Bool(Vec<bool>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int(Vec::new()),
            DataType::Float64 => Column::Float(Vec::new()),
            DataType::Utf8 => Column::Str(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int64,
            Column::Float(_) => DataType::Float64,
            Column::Str(_) => DataType::Utf8,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value; errors on type mismatch.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (Column::Int(col), Value::Int(x)) => col.push(*x),
            (Column::Float(col), Value::Float(x)) => col.push(*x),
            (Column::Str(col), Value::Str(x)) => col.push(x.clone()),
            (Column::Bool(col), Value::Bool(x)) => col.push(*x),
            (col, v) => {
                return Err(Error::InvalidArgument(format!(
                    "cannot push {:?} into {:?} column",
                    v.dtype(),
                    col.dtype()
                )))
            }
        }
        Ok(())
    }

    /// The value at `idx` (cloned into a dynamic [`Value`]).
    pub fn value(&self, idx: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[idx]),
            Column::Float(v) => Value::Float(v[idx]),
            Column::Str(v) => Value::Str(v[idx].clone()),
            Column::Bool(v) => Value::Bool(v[idx]),
        }
    }
}

/// Pivot rows into one column per schema field.
///
/// Every row must match the schema's width and types.
pub fn rows_to_columns(schema: &Schema, rows: &[Row]) -> Result<Vec<Column>> {
    let mut cols: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::empty(f.dtype))
        .collect();
    for (rid, row) in rows.iter().enumerate() {
        if row.len() != schema.width() {
            return Err(Error::InvalidArgument(format!(
                "row {rid} has {} values, schema has {} fields",
                row.len(),
                schema.width()
            )));
        }
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v)?;
        }
    }
    Ok(cols)
}

/// Pivot columns back into rows. All columns must share the same length.
pub fn columns_to_rows(cols: &[Column]) -> Vec<Row> {
    let n = cols.first().map_or(0, |c| c.len());
    debug_assert!(cols.iter().all(|c| c.len() == n));
    (0..n)
        .map(|i| cols.iter().map(|c| c.value(i)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn pivot_roundtrip() {
        let s = schema();
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(2), Value::from("b")],
        ];
        let cols = rows_to_columns(&s, &rows).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 2);
        assert_eq!(columns_to_rows(&cols), rows);
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let rows: Vec<Row> = vec![vec![Value::from("oops"), Value::from("a")]];
        assert!(rows_to_columns(&s, &rows).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let s = schema();
        let rows: Vec<Row> = vec![vec![Value::Int(1)]];
        assert!(rows_to_columns(&s, &rows).is_err());
    }

    #[test]
    fn empty_rows_give_empty_columns() {
        let s = schema();
        let cols = rows_to_columns(&s, &[]).unwrap();
        assert!(cols.iter().all(|c| c.is_empty()));
        assert!(columns_to_rows(&cols).is_empty());
    }

    #[test]
    fn value_accessor_matches_push_order() {
        let mut c = Column::empty(DataType::Bool);
        c.push(&Value::Bool(true)).unwrap();
        c.push(&Value::Bool(false)).unwrap();
        assert_eq!(c.value(0), Value::Bool(true));
        assert_eq!(c.value(1), Value::Bool(false));
    }
}
