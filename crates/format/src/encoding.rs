//! Column encodings.
//!
//! Each column chunk is stored under the encoding that minimizes its size:
//!
//! * integers — plain little-endian or zig-zag delta varints (timestamps and
//!   near-sorted ids collapse dramatically under deltas);
//! * floats — plain little-endian;
//! * strings — plain length-prefixed, or dictionary when the chunk has few
//!   distinct values (provinces, URLs, labels);
//! * booleans — bit-packed.
//!
//! Every encoded chunk begins with the row count, so decoding needs no
//! external length.

use crate::column::Column;
use crate::schema::DataType;
use common::varint;
use common::{Error, Result};
use std::collections::BTreeMap;

/// The encoding applied to one column chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// 8-byte little-endian integers.
    PlainInt,
    /// Zig-zag varint deltas from the previous value.
    DeltaInt,
    /// 8-byte little-endian floats.
    PlainFloat,
    /// Length-prefixed UTF-8 strings.
    PlainStr,
    /// Sorted dictionary + per-row varint indexes.
    DictStr,
    /// Bit-packed booleans, 8 per byte.
    PackedBool,
}

impl Encoding {
    /// Wire tag for the chunk header.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::PlainInt => 0,
            Encoding::DeltaInt => 1,
            Encoding::PlainFloat => 2,
            Encoding::PlainStr => 3,
            Encoding::DictStr => 4,
            Encoding::PackedBool => 5,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => Encoding::PlainInt,
            1 => Encoding::DeltaInt,
            2 => Encoding::PlainFloat,
            3 => Encoding::PlainStr,
            4 => Encoding::DictStr,
            5 => Encoding::PackedBool,
            other => return Err(Error::Corruption(format!("unknown encoding tag {other}"))),
        })
    }
}

/// Encode a column, choosing the smallest applicable encoding.
pub fn encode_column(col: &Column) -> (Encoding, Vec<u8>) {
    match col {
        Column::Int(vals) => {
            let plain = encode_plain_int(vals);
            let delta = encode_delta_int(vals);
            if delta.len() < plain.len() {
                (Encoding::DeltaInt, delta)
            } else {
                (Encoding::PlainInt, plain)
            }
        }
        Column::Float(vals) => (Encoding::PlainFloat, encode_plain_float(vals)),
        Column::Str(vals) => {
            let distinct: BTreeMap<&str, usize> =
                vals.iter().map(|s| (s.as_str(), 0)).collect();
            if !vals.is_empty() && distinct.len() * 2 <= vals.len() {
                (Encoding::DictStr, encode_dict_str(vals))
            } else {
                (Encoding::PlainStr, encode_plain_str(vals))
            }
        }
        Column::Bool(vals) => (Encoding::PackedBool, encode_packed_bool(vals)),
    }
}

/// Decode a chunk produced by [`encode_column`].
pub fn decode_column(enc: Encoding, dtype: DataType, buf: &[u8]) -> Result<Column> {
    match (enc, dtype) {
        (Encoding::PlainInt, DataType::Int64) => decode_plain_int(buf).map(Column::Int),
        (Encoding::DeltaInt, DataType::Int64) => decode_delta_int(buf).map(Column::Int),
        (Encoding::PlainFloat, DataType::Float64) => decode_plain_float(buf).map(Column::Float),
        (Encoding::PlainStr, DataType::Utf8) => decode_plain_str(buf).map(Column::Str),
        (Encoding::DictStr, DataType::Utf8) => decode_dict_str(buf).map(Column::Str),
        (Encoding::PackedBool, DataType::Bool) => decode_packed_bool(buf).map(Column::Bool),
        (enc, dtype) => Err(Error::Corruption(format!(
            "encoding {enc:?} incompatible with column type {dtype:?}"
        ))),
    }
}

fn encode_plain_int(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * vals.len() + 4);
    varint::encode_u64(vals.len() as u64, &mut out);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_plain_int(buf: &[u8]) -> Result<Vec<i64>> {
    let (count, mut off) = varint::decode_u64(buf)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let bytes: [u8; 8] = buf
            .get(off..off + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| Error::Corruption("truncated plain int chunk".into()))?;
        out.push(i64::from_le_bytes(bytes));
        off += 8;
    }
    Ok(out)
}

fn encode_delta_int(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * vals.len() + 4);
    varint::encode_u64(vals.len() as u64, &mut out);
    let mut prev = 0i64;
    for &v in vals {
        varint::encode_i64(v.wrapping_sub(prev), &mut out);
        prev = v;
    }
    out
}

fn decode_delta_int(buf: &[u8]) -> Result<Vec<i64>> {
    let (count, mut off) = varint::decode_u64(buf)?;
    let mut out = Vec::with_capacity(count as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let (d, n) = varint::decode_i64(&buf[off..])?;
        off += n;
        prev = prev.wrapping_add(d);
        out.push(prev);
    }
    Ok(out)
}

fn encode_plain_float(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * vals.len() + 4);
    varint::encode_u64(vals.len() as u64, &mut out);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_plain_float(buf: &[u8]) -> Result<Vec<f64>> {
    let (count, mut off) = varint::decode_u64(buf)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let bytes: [u8; 8] = buf
            .get(off..off + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| Error::Corruption("truncated plain float chunk".into()))?;
        out.push(f64::from_le_bytes(bytes));
        off += 8;
    }
    Ok(out)
}

fn encode_plain_str(vals: &[String]) -> Vec<u8> {
    let total: usize = vals.iter().map(|s| s.len() + 2).sum();
    let mut out = Vec::with_capacity(total + 4);
    varint::encode_u64(vals.len() as u64, &mut out);
    for s in vals {
        varint::encode_u64(s.len() as u64, &mut out);
        out.extend_from_slice(s.as_bytes());
    }
    out
}

fn decode_plain_str(buf: &[u8]) -> Result<Vec<String>> {
    let (count, mut off) = varint::decode_u64(buf)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (len, n) = varint::decode_u64(&buf[off..])?;
        off += n;
        let bytes = buf
            .get(off..off + len as usize)
            .ok_or_else(|| Error::Corruption("truncated string chunk".into()))?;
        off += len as usize;
        out.push(
            String::from_utf8(bytes.to_vec())
                .map_err(|_| Error::Corruption("string chunk not utf-8".into()))?,
        );
    }
    Ok(out)
}

fn encode_dict_str(vals: &[String]) -> Vec<u8> {
    let mut dict: Vec<&str> = {
        let mut uniq: Vec<&str> = vals.iter().map(|s| s.as_str()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        uniq
    };
    dict.sort_unstable();
    let index: BTreeMap<&str, u64> =
        dict.iter().enumerate().map(|(i, s)| (*s, i as u64)).collect();
    let mut out = Vec::new();
    varint::encode_u64(vals.len() as u64, &mut out);
    varint::encode_u64(dict.len() as u64, &mut out);
    for s in &dict {
        varint::encode_u64(s.len() as u64, &mut out);
        out.extend_from_slice(s.as_bytes());
    }
    for s in vals {
        varint::encode_u64(index[s.as_str()], &mut out);
    }
    out
}

fn decode_dict_str(buf: &[u8]) -> Result<Vec<String>> {
    let (count, mut off) = varint::decode_u64(buf)?;
    let (dict_len, n) = varint::decode_u64(&buf[off..])?;
    off += n;
    let mut dict = Vec::with_capacity(dict_len as usize);
    for _ in 0..dict_len {
        let (len, n) = varint::decode_u64(&buf[off..])?;
        off += n;
        let bytes = buf
            .get(off..off + len as usize)
            .ok_or_else(|| Error::Corruption("truncated dictionary".into()))?;
        off += len as usize;
        dict.push(
            String::from_utf8(bytes.to_vec())
                .map_err(|_| Error::Corruption("dictionary entry not utf-8".into()))?,
        );
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (idx, n) = varint::decode_u64(&buf[off..])?;
        off += n;
        let s = dict
            .get(idx as usize)
            .ok_or_else(|| Error::Corruption(format!("dictionary index {idx} out of range")))?;
        out.push(s.clone());
    }
    Ok(out)
}

fn encode_packed_bool(vals: &[bool]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() / 8 + 5);
    varint::encode_u64(vals.len() as u64, &mut out);
    let mut byte = 0u8;
    for (i, &b) in vals.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !vals.len().is_multiple_of(8) {
        out.push(byte);
    }
    out
}

fn decode_packed_bool(buf: &[u8]) -> Result<Vec<bool>> {
    let (count, off) = varint::decode_u64(buf)?;
    let needed = (count as usize).div_ceil(8);
    let bytes = buf
        .get(off..off + needed)
        .ok_or_else(|| Error::Corruption("truncated bool chunk".into()))?;
    Ok((0..count as usize)
        .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(col: Column) {
        let (enc, buf) = encode_column(&col);
        let back = decode_column(enc, col.dtype(), &buf).unwrap();
        assert_eq!(back, col);
    }

    #[test]
    fn sorted_ints_choose_delta_and_shrink() {
        let vals: Vec<i64> = (0..10_000).map(|i| 1_656_806_400 + i).collect();
        let col = Column::Int(vals);
        let (enc, buf) = encode_column(&col);
        assert_eq!(enc, Encoding::DeltaInt);
        assert!(buf.len() < 2 * 10_000, "sorted ints must encode ~1 byte each");
        roundtrip(col);
    }

    #[test]
    fn random_ints_choose_plain() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let vals: Vec<i64> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as i64
            })
            .collect();
        let col = Column::Int(vals);
        let (enc, _) = encode_column(&col);
        assert_eq!(enc, Encoding::PlainInt);
        roundtrip(col);
    }

    #[test]
    fn low_cardinality_strings_choose_dictionary() {
        let provinces = ["guangdong", "beijing", "shanghai"];
        let vals: Vec<String> = (0..3000).map(|i| provinces[i % 3].to_string()).collect();
        let col = Column::Str(vals);
        let (enc, buf) = encode_column(&col);
        assert_eq!(enc, Encoding::DictStr);
        assert!(buf.len() < 3200, "dict coding must be ~1 byte per row");
        roundtrip(col);
    }

    #[test]
    fn unique_strings_choose_plain() {
        let vals: Vec<String> = (0..100).map(|i| format!("user-{i}")).collect();
        let col = Column::Str(vals);
        let (enc, _) = encode_column(&col);
        assert_eq!(enc, Encoding::PlainStr);
        roundtrip(col);
    }

    #[test]
    fn bools_pack_to_one_bit() {
        let vals: Vec<bool> = (0..8000).map(|i| i % 3 == 0).collect();
        let col = Column::Bool(vals);
        let (enc, buf) = encode_column(&col);
        assert_eq!(enc, Encoding::PackedBool);
        assert!(buf.len() <= 8000 / 8 + 4);
        roundtrip(col);
    }

    #[test]
    fn empty_columns_roundtrip() {
        roundtrip(Column::Int(vec![]));
        roundtrip(Column::Float(vec![]));
        roundtrip(Column::Str(vec![]));
        roundtrip(Column::Bool(vec![]));
    }

    #[test]
    fn incompatible_encoding_dtype_rejected() {
        let (enc, buf) = encode_column(&Column::Int(vec![1, 2, 3]));
        assert!(decode_column(enc, DataType::Utf8, &buf).is_err());
    }

    #[test]
    fn wrapping_delta_handles_extremes() {
        roundtrip(Column::Int(vec![i64::MIN, i64::MAX, 0, -1, 1]));
    }

    proptest! {
        #[test]
        fn int_roundtrip(vals in proptest::collection::vec(any::<i64>(), 0..256)) {
            roundtrip(Column::Int(vals));
        }

        #[test]
        fn float_roundtrip(vals in proptest::collection::vec(any::<f64>(), 0..256)) {
            let col = Column::Float(vals);
            let (enc, buf) = encode_column(&col);
            let back = decode_column(enc, DataType::Float64, &buf).unwrap();
            // NaN-safe comparison via bit patterns
            if let (Column::Float(a), Column::Float(b)) = (&col, &back) {
                let a: Vec<u64> = a.iter().map(|f| f.to_bits()).collect();
                let b: Vec<u64> = b.iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(a, b);
            } else {
                unreachable!();
            }
        }

        #[test]
        fn str_roundtrip(vals in proptest::collection::vec("[a-f]{0,8}", 0..128)) {
            roundtrip(Column::Str(vals));
        }

        #[test]
        fn bool_roundtrip(vals in proptest::collection::vec(any::<bool>(), 0..512)) {
            roundtrip(Column::Bool(vals));
        }
    }
}
