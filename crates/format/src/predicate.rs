//! Pushdown predicates.
//!
//! The query jobs in the paper push `WHERE` filters and aggregates down to
//! the storage side (§VII-A: "the three filters in the WHERE clause and the
//! COUNT aggregate … are pushed down to compute in StreamLake"), and
//! LakeBrain's predicate-aware partitioning builds its query tree from the
//! same predicate shape: `(attribute, operator, literal)` with operators
//! `{<=, >=, <, >, =, IN}` (§VI-B).
//!
//! [`Predicate`] is one such comparison; [`Expr`] combines them with
//! AND/OR. Both evaluate against concrete rows and, conservatively, against
//! [`ColumnStats`] — the stats evaluation answers "may this chunk contain a
//! matching row?", never producing false negatives.

use crate::schema::Schema;
use crate::stats::ColumnStats;
use crate::value::{Row, Value};
use common::Result;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=` (negation of Eq, needed to split query-tree branches)
    Ne,
    /// `IN (v1, v2, …)`
    In,
    /// `NOT IN (v1, v2, …)`
    NotIn,
}

impl CmpOp {
    /// The operator accepting exactly the rows this one rejects.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::In => CmpOp::NotIn,
            CmpOp::NotIn => CmpOp::In,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::In => "IN",
            CmpOp::NotIn => "NOT IN",
        };
        f.write_str(s)
    }
}

/// One `(attribute, operator, literal(s))` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name the predicate applies to.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literals: one value for scalar operators, the full list for
    /// `In`/`NotIn`.
    pub literals: Vec<Value>,
}

impl Predicate {
    /// Scalar comparison `column op literal`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, literal: impl Into<Value>) -> Self {
        Predicate { column: column.into(), op, literals: vec![literal.into()] }
    }

    /// Membership test `column IN literals`.
    pub fn in_list(column: impl Into<String>, literals: Vec<Value>) -> Self {
        Predicate { column: column.into(), op: CmpOp::In, literals }
    }

    /// The predicate matching exactly the complement set of rows.
    pub fn negated(&self) -> Predicate {
        Predicate { column: self.column.clone(), op: self.op.negated(), literals: self.literals.clone() }
    }

    /// Evaluate against a single value of the predicate column.
    pub fn eval_value(&self, v: &Value) -> bool {
        match self.op {
            CmpOp::In => self
                .literals
                .iter()
                .any(|lit| v.partial_cmp_same_type(lit) == Some(Ordering::Equal)),
            CmpOp::NotIn => !self
                .literals
                .iter()
                .any(|lit| v.partial_cmp_same_type(lit) == Some(Ordering::Equal)),
            op => {
                let Some(ord) = v.partial_cmp_same_type(&self.literals[0]) else {
                    return false; // type mismatch never matches
                };
                match op {
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    // handled by the outer match arms; never matches here
                    CmpOp::In | CmpOp::NotIn => false,
                }
            }
        }
    }

    /// Evaluate against a row under `schema`.
    pub fn eval_row(&self, schema: &Schema, row: &Row) -> Result<bool> {
        let idx = schema.index_of(&self.column)?;
        Ok(self.eval_value(&row[idx]))
    }

    /// Conservative evaluation against chunk statistics: `true` when the
    /// chunk *may* contain matching rows, `false` only when it provably
    /// cannot (safe to skip).
    pub fn may_match_stats(&self, stats: &ColumnStats) -> bool {
        let cmp_min = |lit: &Value| lit.partial_cmp_same_type(&stats.min);
        let cmp_max = |lit: &Value| lit.partial_cmp_same_type(&stats.max);
        match self.op {
            // rows < lit exist iff min < lit
            CmpOp::Lt => cmp_min(&self.literals[0]) == Some(Ordering::Greater),
            CmpOp::Le => cmp_min(&self.literals[0]) != Some(Ordering::Less),
            // rows > lit exist iff max > lit
            CmpOp::Gt => cmp_max(&self.literals[0]) == Some(Ordering::Less),
            CmpOp::Ge => cmp_max(&self.literals[0]) != Some(Ordering::Greater),
            CmpOp::Eq => stats.may_contain(&self.literals[0]),
            CmpOp::Ne => {
                // Only skippable when the chunk is constant and equal to lit.
                !(stats.min.partial_cmp_same_type(&stats.max) == Some(Ordering::Equal)
                    && cmp_min(&self.literals[0]) == Some(Ordering::Equal))
            }
            CmpOp::In => self.literals.iter().any(|lit| stats.may_contain(lit)),
            CmpOp::NotIn => {
                let constant =
                    stats.min.partial_cmp_same_type(&stats.max) == Some(Ordering::Equal);
                !(constant
                    && self
                        .literals
                        .iter()
                        .any(|lit| cmp_min(lit) == Some(Ordering::Equal)))
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            CmpOp::In | CmpOp::NotIn => {
                write!(f, "{} {} (", self.column, self.op)?;
                for (i, lit) in self.literals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{lit}")?;
                }
                write!(f, ")")
            }
            _ => write!(f, "{} {} {}", self.column, self.op, self.literals[0]),
        }
    }
}

/// A boolean combination of predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Matches every row.
    True,
    /// A single comparison.
    Pred(Predicate),
    /// Both sub-expressions must match.
    And(Box<Expr>, Box<Expr>),
    /// Either sub-expression must match.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Conjunction of a list of predicates (`True` when empty).
    pub fn all(preds: Vec<Predicate>) -> Expr {
        preds
            .into_iter()
            .map(Expr::Pred)
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
            .unwrap_or(Expr::True)
    }

    /// Evaluate against a row.
    pub fn eval_row(&self, schema: &Schema, row: &Row) -> Result<bool> {
        Ok(match self {
            Expr::True => true,
            Expr::Pred(p) => p.eval_row(schema, row)?,
            Expr::And(a, b) => a.eval_row(schema, row)? && b.eval_row(schema, row)?,
            Expr::Or(a, b) => a.eval_row(schema, row)? || b.eval_row(schema, row)?,
        })
    }

    /// Conservative stats evaluation: `stats_of` maps a column name to that
    /// chunk's statistics (`None` when unknown — treated as "may match").
    pub fn may_match<'a>(&self, stats_of: &impl Fn(&str) -> Option<&'a ColumnStats>) -> bool {
        match self {
            Expr::True => true,
            Expr::Pred(p) => match stats_of(&p.column) {
                Some(s) => p.may_match_stats(s),
                None => true,
            },
            Expr::And(a, b) => a.may_match(stats_of) && b.may_match(stats_of),
            Expr::Or(a, b) => a.may_match(stats_of) || b.may_match(stats_of),
        }
    }

    /// Every predicate referenced by the expression, left to right.
    pub fn predicates(&self) -> Vec<&Predicate> {
        match self {
            Expr::True => Vec::new(),
            Expr::Pred(p) => vec![p],
            Expr::And(a, b) | Expr::Or(a, b) => {
                let mut v = a.predicates();
                v.extend(b.predicates());
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{DataType, Field};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DataType::Int64),
            Field::new("province", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn scalar_ops_on_rows() {
        let s = schema();
        let row: Row = vec![Value::Int(35), Value::from("beijing")];
        assert!(Predicate::cmp("age", CmpOp::Ge, 30i64).eval_row(&s, &row).unwrap());
        assert!(!Predicate::cmp("age", CmpOp::Lt, 30i64).eval_row(&s, &row).unwrap());
        assert!(Predicate::cmp("province", CmpOp::Eq, "beijing").eval_row(&s, &row).unwrap());
        assert!(Predicate::cmp("province", CmpOp::Ne, "anhui").eval_row(&s, &row).unwrap());
    }

    #[test]
    fn in_and_notin() {
        let p = Predicate::in_list("province", vec!["beijing".into(), "anhui".into()]);
        assert!(p.eval_value(&Value::from("anhui")));
        assert!(!p.eval_value(&Value::from("tibet")));
        let np = p.negated();
        assert_eq!(np.op, CmpOp::NotIn);
        assert!(np.eval_value(&Value::from("tibet")));
        assert!(!np.eval_value(&Value::from("anhui")));
    }

    #[test]
    fn negation_partitions_rows() {
        // For any predicate p and value v: exactly one of p, ¬p matches —
        // this is the invariant the QD-tree relies on to split partitions.
        let preds = [
            Predicate::cmp("age", CmpOp::Lt, 30i64),
            Predicate::cmp("age", CmpOp::Le, 30i64),
            Predicate::cmp("age", CmpOp::Eq, 30i64),
            Predicate::in_list("age", vec![Value::Int(1), Value::Int(2)]),
        ];
        for p in &preds {
            for v in [Value::Int(1), Value::Int(29), Value::Int(30), Value::Int(31)] {
                assert_ne!(p.eval_value(&v), p.negated().eval_value(&v), "{p} vs {v}");
            }
        }
    }

    #[test]
    fn stats_skipping_is_sound_on_boundaries() {
        let stats = ColumnStats::from_column(&Column::Int(vec![10, 20])).unwrap();
        // provable skips
        assert!(!Predicate::cmp("c", CmpOp::Lt, 10i64).may_match_stats(&stats));
        assert!(!Predicate::cmp("c", CmpOp::Gt, 20i64).may_match_stats(&stats));
        assert!(!Predicate::cmp("c", CmpOp::Eq, 25i64).may_match_stats(&stats));
        // must-scan cases
        assert!(Predicate::cmp("c", CmpOp::Le, 10i64).may_match_stats(&stats));
        assert!(Predicate::cmp("c", CmpOp::Ge, 20i64).may_match_stats(&stats));
        assert!(Predicate::cmp("c", CmpOp::Eq, 15i64).may_match_stats(&stats));
        assert!(Predicate::cmp("c", CmpOp::Ne, 15i64).may_match_stats(&stats));
    }

    #[test]
    fn ne_skips_only_constant_chunks() {
        let constant = ColumnStats::from_column(&Column::Int(vec![7, 7, 7])).unwrap();
        assert!(!Predicate::cmp("c", CmpOp::Ne, 7i64).may_match_stats(&constant));
        assert!(Predicate::cmp("c", CmpOp::Ne, 8i64).may_match_stats(&constant));
    }

    #[test]
    fn expr_combinators() {
        let s = schema();
        let row: Row = vec![Value::Int(35), Value::from("beijing")];
        let e = Expr::all(vec![
            Predicate::cmp("age", CmpOp::Ge, 30i64),
            Predicate::cmp("province", CmpOp::Eq, "beijing"),
        ]);
        assert!(e.eval_row(&s, &row).unwrap());
        let e2 = Expr::Or(
            Box::new(Expr::Pred(Predicate::cmp("age", CmpOp::Lt, 0i64))),
            Box::new(Expr::Pred(Predicate::cmp("province", CmpOp::Eq, "beijing"))),
        );
        assert!(e2.eval_row(&s, &row).unwrap());
        assert_eq!(Expr::True.predicates().len(), 0);
        assert_eq!(e.predicates().len(), 2);
    }

    #[test]
    fn missing_column_is_error() {
        let s = schema();
        let row: Row = vec![Value::Int(1), Value::from("x")];
        assert!(Predicate::cmp("nope", CmpOp::Eq, 1i64).eval_row(&s, &row).is_err());
    }

    proptest! {
        /// Soundness: if stats says skip, no value in [min, max] matches.
        #[test]
        fn stats_never_false_negative(
            vals in proptest::collection::vec(-50i64..50, 1..20),
            lit in -60i64..60,
            op_idx in 0usize..6,
        ) {
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne][op_idx];
            let col = Column::Int(vals.clone());
            let stats = ColumnStats::from_column(&col).unwrap();
            let p = Predicate::cmp("c", op, lit);
            if !p.may_match_stats(&stats) {
                for v in &vals {
                    prop_assert!(!p.eval_value(&Value::Int(*v)),
                        "stats said skip but {v} matches {p}");
                }
            }
        }
    }
}
