//! Dynamically-typed values and rows.

use crate::schema::DataType;
use common::varint;
use common::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// A row is one value per schema field, in schema order.
pub type Row = Vec<Value>;

impl Value {
    /// The type of this value.
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Str(_) => DataType::Utf8,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Integer payload, or an error for other types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Error::InvalidArgument(format!("expected Int, got {other}"))),
        }
    }

    /// Float payload, or an error for other types.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            other => Err(Error::InvalidArgument(format!("expected Float, got {other}"))),
        }
    }

    /// String payload, or an error for other types.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(Error::InvalidArgument(format!("expected Str, got {other}"))),
        }
    }

    /// Bool payload, or an error for other types.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(Error::InvalidArgument(format!("expected Bool, got {other}"))),
        }
    }

    /// Total order across values of the *same* type (floats use IEEE total
    /// ordering). Returns `None` for mismatched types.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Serialize with a type tag (used by footers and commit metadata).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(0);
                varint::encode_i64(*v, out);
            }
            Value::Float(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(v) => {
                out.push(2);
                varint::encode_u64(v.len() as u64, out);
                out.extend_from_slice(v.as_bytes());
            }
            Value::Bool(v) => {
                out.push(3);
                out.push(*v as u8);
            }
        }
    }

    /// Decode a tagged value; returns the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Value, usize)> {
        let tag = *buf
            .first()
            .ok_or_else(|| Error::Corruption("empty value buffer".into()))?;
        let mut off = 1usize;
        let v = match tag {
            0 => {
                let (v, n) = varint::decode_i64(&buf[off..])?;
                off += n;
                Value::Int(v)
            }
            1 => {
                let bytes: [u8; 8] = buf
                    .get(off..off + 8)
                    .and_then(|s| s.try_into().ok())
                    .ok_or_else(|| Error::Corruption("truncated float value".into()))?;
                off += 8;
                Value::Float(f64::from_le_bytes(bytes))
            }
            2 => {
                let (len, n) = varint::decode_u64(&buf[off..])?;
                off += n;
                let s = buf
                    .get(off..off + len as usize)
                    .ok_or_else(|| Error::Corruption("truncated string value".into()))?;
                off += len as usize;
                Value::Str(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| Error::Corruption("string value not utf-8".into()))?,
                )
            }
            3 => {
                let b = *buf
                    .get(off)
                    .ok_or_else(|| Error::Corruption("truncated bool value".into()))?;
                off += 1;
                Value::Bool(b != 0)
            }
            other => return Err(Error::Corruption(format!("unknown value tag {other}"))),
        };
        Ok((v, off))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert!(Value::Int(5).as_str().is_err());
        assert_eq!(Value::from("x").as_str().unwrap(), "x");
        assert!(Value::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn same_type_ordering() {
        assert_eq!(
            Value::Int(1).partial_cmp_same_type(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("b").partial_cmp_same_type(&Value::from("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).partial_cmp_same_type(&Value::from("a")), None);
        // total_cmp handles NaN deterministically
        assert!(Value::Float(f64::NAN)
            .partial_cmp_same_type(&Value::Float(0.0))
            .is_some());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[a-z]{0,12}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(v in arb_value()) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let (back, used) = Value::decode(&buf).unwrap();
            prop_assert_eq!(used, buf.len());
            // NaN != NaN under PartialEq; compare via total ordering instead.
            prop_assert_eq!(back.partial_cmp_same_type(&v), Some(Ordering::Equal));
        }
    }
}
