//! Byte-level LZ77-family compression.
//!
//! Applied per column chunk after encoding. Log-message data is highly
//! repetitive (URLs, provinces, flag columns), which is where the paper's
//! "EC+Col-store" space savings in Fig 14(d) come from — so the compressor
//! needs to be real, not a stub.
//!
//! Token stream: a sequence of
//! `0x00 [len varint] [len literal bytes]` literal runs and
//! `0x01 [distance varint] [length varint]` back-references
//! (distance counts back from the current output position; `length >= 4`).

use common::varint;
use common::{Error, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
const WINDOW: usize = 1 << 15;
const HASH_BITS: u32 = 15;

const TOK_LITERAL: u8 = 0;
const TOK_MATCH: u8 = 1;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`; the output always decompresses to exactly `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::encode_u64(input.len() as u64, &mut out);
    let mut heads = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            out.push(TOK_LITERAL);
            varint::encode_u64((to - from) as u64, out);
            out.extend_from_slice(&input[from..to]);
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = heads[h];
        heads[h] = pos;
        let mut match_len = 0usize;
        if candidate != usize::MAX && pos - candidate <= WINDOW {
            let max = (input.len() - pos).min(MAX_MATCH);
            while match_len < max && input[candidate + match_len] == input[pos + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos);
            out.push(TOK_MATCH);
            varint::encode_u64((pos - candidate) as u64, &mut out);
            varint::encode_u64(match_len as u64, &mut out);
            // Index a few positions inside the match so later matches can
            // anchor there, then skip past it.
            let end = pos + match_len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < end && p < pos + 16 {
                heads[hash4(&input[p..])] = p;
                p += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    let (expected_len, mut off) = varint::decode_u64(input)?;
    let mut out: Vec<u8> = Vec::with_capacity(expected_len as usize);
    while off < input.len() {
        let tok = input[off];
        off += 1;
        match tok {
            TOK_LITERAL => {
                let (len, n) = varint::decode_u64(&input[off..])?;
                off += n;
                let bytes = input
                    .get(off..off + len as usize)
                    .ok_or_else(|| Error::Corruption("truncated literal run".into()))?;
                out.extend_from_slice(bytes);
                off += len as usize;
            }
            TOK_MATCH => {
                let (dist, n) = varint::decode_u64(&input[off..])?;
                off += n;
                let (len, n) = varint::decode_u64(&input[off..])?;
                off += n;
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(Error::Corruption(format!(
                        "match distance {dist} out of range (have {})",
                        out.len()
                    )));
                }
                // Overlapping copies are legal (dist < len repeats a pattern).
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            other => return Err(Error::Corruption(format!("unknown token {other}"))),
        }
    }
    if out.len() != expected_len as usize {
        return Err(Error::Corruption(format!(
            "decompressed {} bytes, header said {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(decompress(&compress(b"")).unwrap(), b"");
        assert_eq!(decompress(&compress(b"abc")).unwrap(), b"abc");
    }

    #[test]
    fn repetitive_data_shrinks_substantially() {
        let line = b"2022-07-03 GET http://streamlake_fin_app.com/api/v1 province=guangdong 200\n";
        let mut data = Vec::new();
        for _ in 0..500 {
            data.extend_from_slice(line);
        }
        let c = compress(&data);
        assert!(
            c.len() * 10 < data.len(),
            "log-like data must compress >10x, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle_case() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 64);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // pseudo-random bytes: little to match, but must still roundtrip
        let mut x = 0x243F6A8885A308D3u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let c = compress(b"hello hello hello hello hello");
        // bogus token type
        let mut bad = c.clone();
        let idx = bad.len() - 3;
        bad[idx] = 0x77;
        let _ = decompress(&bad); // may error or not depending on position, must not panic
        // truncations
        for cut in 1..c.len() {
            let _ = decompress(&c[..cut]);
        }
        // zero-distance match is always corruption
        let mut crafted = Vec::new();
        common::varint::encode_u64(4, &mut crafted);
        crafted.push(TOK_MATCH);
        common::varint::encode_u64(0, &mut crafted);
        common::varint::encode_u64(4, &mut crafted);
        assert!(decompress(&crafted).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn roundtrip_structured(
            word in "[a-d]{2,6}",
            reps in 1usize..200,
            tail in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut data = word.as_bytes().repeat(reps);
            data.extend_from_slice(&tail);
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }
}
