//! `slint::model` — a lightweight cross-file fact extractor for the
//! semantic rules (R9 lock order, R10 IoCtx propagation).
//!
//! This is deliberately not a Rust parser. It is a line-oriented item and
//! expression extractor over [`scanner::clean`]ed source that recovers just
//! enough structure to reason about locks and contexts workspace-wide:
//!
//! * **items** — `struct` fields (with their declared types), `impl` blocks
//!   (inherent and trait), `fn` definitions with their signatures;
//! * **acquisitions** — `.lock()` / `.read()` / `.write()` on fields whose
//!   declared type is `Mutex<..>` / `RwLock<..>`, classified as *held*
//!   (bound to a `let` guard, released by `drop(..)` or scope end) or
//!   *transient* (a temporary dropped at the end of the statement);
//! * **call edges** — `self.method(..)`, `self.field.method(..)`,
//!   `Type::func(..)`, `local.method(..)` and free calls, resolved through
//!   the struct field-type table, the inherent/trait method tables and a
//!   conservative unique-name fallback;
//! * **IoCtx flow** — which functions take `&IoCtx` and which mint fresh
//!   roots with `IoCtx::new(..)`.
//!
//! On top of the facts, [`analyze`] computes per-function *lock summaries*
//! (the set of lock classes a call may acquire, propagated to a fixpoint
//! along call edges), generates the inter-procedural `held → acquired`
//! edge graph, and reports:
//!
//! * **R9** — cycles in the lock graph (deadlock candidates), direct
//!   same-class nested acquisition, and edges that invert the canonical
//!   hierarchy declared in [`LOCK_HIERARCHY`];
//! * **R10** — fresh root contexts (`IoCtx::new`) minted inside data-path
//!   functions that can reach a timed device operation, outside the
//!   allowlisted root-minting boundaries.
//!
//! Known approximations, chosen to keep the pass dependency-free and fast:
//! multi-line method chains resolve their receiver through one line of
//! lookback only; same-class edges discovered *via call summaries* are
//! suppressed (statically, two acquisitions of one class cannot be told
//! apart by instance — direct nesting in one function body is still
//! reported); and unresolvable receivers fall back to name matching only
//! for distinctive method names (defined by at most [`MAX_DISPATCH`]
//! types, excluding [`NOISY_METHODS`]).
//!
//! The runtime counterpart `common::lockwitness` enforces the same
//! hierarchy table dynamically in debug builds; a unit test keeps the two
//! tables in lockstep.

use std::collections::{BTreeMap, BTreeSet};

use crate::scanner::{self, CleanedSource};
use crate::Rule;

/// One lock class in the canonical hierarchy.
#[derive(Debug, Clone)]
pub struct LockClassSpec {
    /// Stable class name, as used by `common::lockwitness::acquire`.
    pub name: &'static str,
    /// Rank: acquisitions must happen in strictly increasing rank order.
    pub rank: u32,
    /// Struct that owns the lock field.
    pub owner: &'static str,
    /// Field name of the lock.
    pub field: &'static str,
}

macro_rules! class {
    ($name:literal, $rank:literal, $owner:literal . $field:ident) => {
        LockClassSpec { name: $name, rank: $rank, owner: $owner, field: stringify!($field) }
    };
}

/// The canonical lock hierarchy, outermost first. Must match
/// `common::lockwitness::HIERARCHY` (a unit test parses that file).
pub const LOCK_HIERARCHY: &[LockClassSpec] = &[
    class!("core.chore.runtime", 10, "ChoreRuntime".inner),
    // frontdoor.state ranks below access.grants: auth runs and releases
    // before the door state is locked, and the door holds its state while
    // calling into stream/plog/simdisk/metrics (all higher ranks).
    // journal sits just above state: decisions are journaled while the
    // state lock is still held.
    class!("core.frontdoor.state", 12, "FrontDoor".state),
    class!("core.frontdoor.journal", 13, "FrontDoor".journal),
    class!("core.access.grants", 15, "AccessController".inner),
    class!("stream.service.worker_ids", 20, "StreamService".next_worker_id),
    class!("stream.service.workers", 21, "StreamService".workers),
    class!("stream.service.quotas", 22, "StreamService".quotas),
    // group.state ranks below dispatcher.topo: rebalancing holds the
    // coordinator state while reading partition counts from the topology.
    class!("stream.group.state", 23, "GroupCoordinator".state),
    class!("stream.group.journal", 24, "GroupCoordinator".journal),
    class!("stream.dispatcher.topo", 25, "StreamDispatcher".topo),
    class!("stream.txn.active", 28, "TxnManager".active),
    class!("stream.object.registry", 30, "StreamObjectStore".objects),
    class!("stream.object.state", 35, "StreamObject".state),
    class!("stream.worker.cache", 38, "StreamWorker".cache),
    class!("stream.archive.entries", 40, "ArchiveService".entries),
    class!("lake.compaction.trigger", 45, "CompactionChore".trigger),
    class!("lake.meta.pending", 50, "MetadataCache".pending),
    class!("plog.repl.mapping", 55, "RemoteReplicator".mapping),
    class!("plog.repl.cursor", 56, "RemoteReplicator".cursor),
    class!("plog.scrub.cursor", 58, "ScrubService".cursor),
    // commit.state ranks above plog.shard: a group flush holds the
    // committer state while reserving shard address space and writing.
    class!("plog.commit.state", 59, "GroupCommitter".state),
    class!("plog.shard", 60, "PlogStore".shards),
    class!("simdisk.tier.extents", 65, "TieringService".extents),
    // MVCC coordination state ranks below kv.index: the transaction layer
    // holds its state/journal locks while reading and batch-writing the
    // backing KV store (intents, records, resolutions).
    class!("kv.mvcc.state", 66, "MvccStore".state),
    class!("kv.mvcc.journal", 67, "MvccStore".journal),
    class!("kv.index", 70, "SharedKv".inner),
    // fault.state ranks below device.state: FaultInjector::advance_to
    // holds its schedule lock while applying events to devices.
    class!("simdisk.fault.state", 72, "FaultInjector".state),
    class!("simdisk.device.state", 75, "Device".state),
    class!("common.metrics", 85, "Metrics".inner),
    class!("common.span.trail", 90, "SpanSink".trail),
];

/// Files allowed to mint fresh root `IoCtx` values on the data path: the
/// system facade (request entry points) and the chore runtime (background
/// tick roots). Everything else must receive the context from its caller.
pub const ROOT_CTX_FILES: &[&str] =
    &["crates/core/src/system.rs", "crates/core/src/chore.rs"];

/// Crates whose functions form the timed data path for R10.
pub const DATA_PATH_CRATES: [&str; 5] = ["simdisk", "plog", "stream", "lake", "core"];

/// Method names too generic to resolve through the unique-name fallback
/// (they collide with std container methods on locals and guards).
const NOISY_METHODS: &[&str] = &[
    "all", "and_then", "any", "append", "as_bytes", "as_mut", "as_ref", "as_slice",
    "back", "chain", "clear", "clone", "cloned", "cmp", "collect", "contains",
    "contains_key", "copied", "count", "dedup", "default", "drain", "entry",
    "enumerate", "eq", "extend", "filter", "filter_map", "find", "first", "flat_map",
    "flatten", "fmt", "fold", "for_each", "from", "front", "get", "get_mut",
    "get_or_insert_with", "hash", "insert", "into", "into_iter", "is_empty",
    "is_err", "is_none", "is_ok", "is_some", "iter", "iter_mut", "join", "keys",
    "last", "len", "map", "map_err", "max", "min", "new", "next", "ok", "ok_or",
    "ok_or_else", "or_else", "parse", "pop", "pop_back", "pop_front", "position",
    "push", "push_back", "push_front", "push_str", "put", "range", "remove",
    "replace", "retain", "rev", "scan", "skip", "sort", "sort_by", "sort_by_key",
    "split", "split_off", "starts_with", "sum", "take", "then", "to_string",
    "to_vec", "trim", "truncate", "unwrap_or", "unwrap_or_default",
    "unwrap_or_else", "values", "values_mut", "windows", "zip",
];

/// Maximum number of distinct defining types for which an unresolvable
/// receiver still resolves by method name (covers trait-object dispatch).
const MAX_DISPATCH: usize = 8;

/// A lock class in the analyzed graph.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Class name (`plog.shard`, or `auto:<Owner>.<field>` when the field
    /// is a lock but absent from the declared hierarchy).
    pub name: String,
    /// Declared rank, if the class is in [`LOCK_HIERARCHY`].
    pub rank: Option<u32>,
    /// Owning struct.
    pub owner: String,
    /// Lock field name.
    pub field: String,
}

/// One `held → acquired` edge with provenance.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Index of the held class in [`LockGraph::classes`].
    pub from: usize,
    /// Index of the acquired class.
    pub to: usize,
    /// Workspace-relative file of the acquisition or call.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Callee name when the edge was propagated through a call summary.
    pub via: Option<String>,
}

/// The inter-procedural lock-acquisition graph.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock class discovered (declared classes first, in hierarchy
    /// order, then auto-discovered ones).
    pub classes: Vec<ClassInfo>,
    /// Deduplicated `held → acquired` edges with first-seen provenance.
    pub edges: Vec<LockEdge>,
}

/// A finding produced by the model pass, before waiver filtering.
#[derive(Debug, Clone)]
pub struct ModelFinding {
    /// Which rule fired (R9 or R10).
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

// ---------------------------------------------------------------------------
// Fact model
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FnInfo {
    name: String,
    /// Enclosing impl/trait-block type (`impl Foo`, `impl Tr for Foo`,
    /// `trait Tr`).
    self_ty: Option<String>,
    /// Trait name for `impl Tr for Foo` methods and `trait Tr` defaults.
    trait_ty: Option<String>,
    file: usize,
    /// 1-based line of the `fn` keyword.
    line: usize,
    has_ctx_param: bool,
    is_test: bool,
    /// Declared return type (first meaningful ident; `Self` resolved).
    ret_ty: Option<String>,
    /// Known types of parameters and `let`-bound locals, by name.
    locals: BTreeMap<String, String>,
    acquires: Vec<Acq>,
    calls: Vec<CallSite>,
    /// `IoCtx::new(` occurrences: 1-based lines.
    mints: Vec<usize>,
    /// Ordered body events for the held-set walk.
    events: Vec<Event>,
}

#[derive(Debug, Clone)]
struct Acq {
    class: usize,
    /// 1-based line.
    line: usize,
    /// Brace depth at the acquisition.
    depth: i32,
    held: bool,
    binding: Option<String>,
    /// Method chained directly onto the fresh guard (`.lock().put(..)`).
    chained: Option<String>,
}

/// One segment of a receiver path; `is_call` marks `seg(..)` method or
/// function segments (resolved through return types, not field types).
#[derive(Debug, Clone, PartialEq)]
struct Seg {
    name: String,
    is_call: bool,
}

#[derive(Debug, Clone)]
enum CallTarget {
    /// `Type::name(..)` (`Self` already resolved to the impl type).
    Path(String, String),
    /// `recv.name(..)` with the receiver's segment path (`self.pool`).
    Method(Vec<Seg>, String),
    /// Bare `name(..)`.
    Free(String),
}

#[derive(Debug, Clone)]
struct CallSite {
    line: usize,
    target: CallTarget,
    /// Resolved callee fn indices (possibly several for trait dispatch).
    resolved: Vec<usize>,
}

#[derive(Debug, Clone)]
enum Event {
    /// Index into `FnInfo::acquires`.
    Acquire(usize),
    /// Index into `FnInfo::calls`.
    Call(usize),
    /// `drop(<binding>)`.
    Release(String),
    /// Depth at the end of a line: releases scope-bound guards.
    ScopeEnd(i32),
}

#[derive(Debug, Default)]
struct StructFacts {
    /// `(owner, field)` → declared type text.
    field_ty: BTreeMap<(String, String), String>,
}

/// The extracted workspace model.
#[derive(Debug, Default)]
pub struct Model {
    files: Vec<String>,
    fns: Vec<FnInfo>,
    classes: Vec<ClassInfo>,
    structs: StructFacts,
    /// `(owner, field)` → class index, for every Mutex/RwLock field.
    lock_fields: BTreeMap<(String, String), usize>,
    /// lock field name → owning (owner, class, file) candidates.
    lock_field_names: BTreeMap<String, Vec<(String, usize, usize)>>,
    /// `(type, method)` → fn indices (inherent impls).
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// `(trait, method)` → fn indices (all impls of the trait).
    trait_methods: BTreeMap<(String, String), Vec<usize>>,
    /// free fn name → fn indices.
    free_fns: BTreeMap<String, Vec<usize>>,
    /// method name → set of defining types (for the dispatch fallback).
    method_types: BTreeMap<String, BTreeSet<String>>,
}

impl Model {
    fn crate_of(&self, file_idx: usize) -> &str {
        crate_of_path(&self.files[file_idx])
    }
}

fn crate_of_path(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Strip smart-pointer/container wrappers and references off a declared
/// type and return the first meaningful type identifier:
/// `Arc<RwLock<KvStore>>` → `RwLock`… is a lock (checked separately);
/// `Arc<StoragePool>` → `StoragePool`; `Box<dyn Chore>` → `Chore`.
fn strip_type(ty: &str) -> Option<String> {
    let mut t = ty.trim();
    loop {
        t = t.trim_start_matches('&').trim();
        t = t.strip_prefix("mut ").unwrap_or(t).trim();
        t = t.strip_prefix("dyn ").unwrap_or(t).trim();
        let mut stripped = false;
        for w in ["Arc<", "Rc<", "Box<", "Option<", "Vec<"] {
            if let Some(rest) = t.strip_prefix(w) {
                t = rest.trim_end_matches(['>', ' ', ',']).trim();
                stripped = true;
                break;
            }
        }
        if !stripped {
            break;
        }
    }
    let ident: String =
        t.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    // Keep only path-leading idents; `BTreeMap` etc. are fine to return,
    // callers look them up and fail closed.
    if ident.is_empty() { None } else { Some(ident) }
}

/// The lock kind of a declared field type, if it is a lock.
fn lock_kind(ty: &str) -> Option<&'static str> {
    if ty.contains("Mutex<") {
        Some("Mutex")
    } else if ty.contains("RwLock<") {
        Some("RwLock")
    } else {
        None
    }
}

/// The protected inner type of a lock field (`Mutex<ShardState>` →
/// `ShardState`).
fn lock_inner_type(ty: &str) -> Option<String> {
    let pos = ty.find("Mutex<").map(|p| p + "Mutex<".len()).or_else(|| {
        ty.find("RwLock<").map(|p| p + "RwLock<".len())
    })?;
    let rest = ty[pos..].trim_start().trim_start_matches("dyn ").trim_start();
    let ident: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() { None } else { Some(ident) }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// Build the workspace model from `(workspace-relative path, source)`
/// pairs. Test code (`#[cfg(test)]` regions) contributes no facts.
pub fn build(files: &[(String, String)]) -> Model {
    let mut model = Model::default();
    let cleaned: Vec<CleanedSource> =
        files.iter().map(|(_, src)| scanner::clean(src)).collect();
    model.files = files.iter().map(|(p, _)| p.clone()).collect();

    // Pass 1: items — structs (fields), impl blocks, fn definitions.
    for (fi, clean) in cleaned.iter().enumerate() {
        extract_items(&mut model, fi, clean);
    }
    index_model(&mut model);

    // Pass 2: expressions — acquisitions, calls, mints, events.
    for (fi, clean) in cleaned.iter().enumerate() {
        extract_bodies(&mut model, fi, clean);
    }
    resolve_calls(&mut model);
    model
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Take the identifier starting at byte `pos`.
fn ident_at(code: &str, pos: usize) -> String {
    code[pos..].chars().take_while(|&c| is_ident_char(c)).collect()
}

/// Parse the type name out of an `impl` header line. Returns
/// `(self_ty, trait_ty)`.
fn parse_impl_header(line: &str) -> (Option<String>, Option<String>) {
    let rest = line.trim_start();
    let Some(mut rest) = rest.strip_prefix("impl") else { return (None, None) };
    // Generics on the impl itself: skip a balanced `<...>`.
    rest = rest.trim_start();
    if let Some(stripped) = skip_generics(rest) {
        rest = stripped;
    }
    let rest = rest.trim_start();
    let head = rest.split(" where ").next().unwrap_or(rest);
    let head = head.trim_end_matches('{').trim();
    if let Some(for_pos) = find_for_keyword(head) {
        let trait_part = head[..for_pos].trim();
        let ty_part = head[for_pos + 5..].trim();
        (last_type_ident(ty_part), last_type_ident(trait_part))
    } else {
        (last_type_ident(head), None)
    }
}

/// Find ` for ` as a keyword (not inside generics).
fn find_for_keyword(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i + 5 <= s.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            b' ' if depth == 0 && s[i..].starts_with(" for ") => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn skip_generics(s: &str) -> Option<&str> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '<')) => {}
        _ => return None,
    }
    let mut depth = 1;
    for (i, c) in chars {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[i + 1..]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Last path segment of a type expression, generics stripped:
/// `fmt::Debug` → `Debug`, `Mutex<T>` → `Mutex`, `&mut Foo<'a>` → `Foo`.
fn last_type_ident(ty: &str) -> Option<String> {
    let base = ty.split('<').next().unwrap_or(ty);
    let seg = base.rsplit("::").next().unwrap_or(base);
    let seg = seg.trim().trim_start_matches('&').trim_start_matches("mut ").trim();
    let ident: String = seg.chars().filter(|&c| is_ident_char(c)).collect();
    if ident.is_empty() { None } else { Some(ident) }
}

/// Parse a function signature (`fn name(params) -> Ret`) into a
/// name → type table for the parameters and the return type ident.
/// `self_ty` resolves `Self` in the return position.
fn parse_signature(
    sig: &str,
    self_ty: Option<&str>,
) -> (BTreeMap<String, String>, Option<String>) {
    let mut params = BTreeMap::new();
    // Find the parameter list: the first '(' outside generic brackets.
    let bytes = sig.as_bytes();
    let mut angle = 0i32;
    let mut open = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' => angle += 1,
            b'>' => angle -= 1,
            b'(' if angle <= 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else { return (params, None) };
    let mut depth = 0i32;
    let mut close = sig.len();
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let param_text = &sig[open + 1..close.min(sig.len())];
    // Split on top-level commas.
    let mut piece_start = 0;
    let mut nest = 0i32;
    let mut pieces = Vec::new();
    for (i, c) in param_text.char_indices() {
        match c {
            '<' | '(' | '[' => nest += 1,
            '>' | ')' | ']' => nest -= 1,
            ',' if nest <= 0 => {
                pieces.push(&param_text[piece_start..i]);
                piece_start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&param_text[piece_start..]);
    for piece in pieces {
        let piece = piece.trim();
        let piece = piece.strip_prefix("mut ").unwrap_or(piece).trim_start();
        let name: String = piece.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.is_empty() || name == "self" {
            continue;
        }
        let rest = piece[name.len()..].trim_start();
        let Some(ty_text) = rest.strip_prefix(':') else { continue };
        if let Some(ty) = strip_type(ty_text) {
            params.insert(name, ty);
        }
    }
    // Return type: after "->", up to a `where` clause or the body.
    let tail = &sig[close.min(sig.len())..];
    let ret = tail.find("->").and_then(|p| {
        let text = tail[p + 2..].split(" where ").next().unwrap_or("");
        let text = text.trim();
        let text = text
            .strip_prefix("Result<")
            .or_else(|| text.strip_prefix("Option<"))
            .unwrap_or(text);
        let ty = strip_type(text)?;
        if ty == "Self" {
            self_ty.map(|t| t.to_string())
        } else {
            Some(ty)
        }
    });
    (params, ret)
}

#[derive(Debug)]
enum Block {
    Impl { self_ty: Option<String>, trait_ty: Option<String> },
    Struct { name: String },
    Fn { fn_idx: usize },
    Other,
}

/// Pass 1: walk a file's lines tracking brace depth; record structs with
/// their fields, impl blocks, and fn definitions (signature facts only).
fn extract_items(model: &mut Model, file_idx: usize, clean: &CleanedSource) {
    let mut depth: i32 = 0;
    // Open blocks with the depth *inside* them.
    let mut blocks: Vec<(i32, Block)> = Vec::new();
    // An item header seen, waiting for its `{` (or `;`).
    let mut pending: Option<Block> = None;
    let mut pending_fn_sig = String::new();

    for (idx, line) in clean.lines.iter().enumerate() {
        let code = &line.code;
        let trimmed = code.trim_start();

        if pending.is_none() {
            let after_vis = strip_visibility(trimmed);
            if after_vis.starts_with("impl") &&
                after_vis.chars().nth(4).is_none_or(|c| c == ' ' || c == '<')
            {
                let (self_ty, trait_ty) = parse_impl_header(after_vis);
                pending = Some(Block::Impl { self_ty, trait_ty });
            } else if let Some(rest) = after_vis.strip_prefix("trait ") {
                if let Some(name) = last_type_ident(rest.split(['{', ':']).next().unwrap_or(rest)) {
                    pending = Some(Block::Impl { self_ty: Some(name.clone()), trait_ty: Some(name) });
                }
            } else if let Some(rest) = after_vis.strip_prefix("struct ") {
                let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                if !name.is_empty() && rest[name.len()..].trim_start().starts_with('{')
                    || !name.is_empty() && !rest.contains('(') && !rest.trim_end().ends_with(';')
                {
                    pending = Some(Block::Struct { name });
                } // tuple/unit structs carry no named fields
            } else if let Some(fn_pos) = fn_keyword_pos(code) {
                let name = ident_at(code, fn_pos + 3);
                if !name.is_empty() {
                    let (self_ty, trait_ty) = enclosing_impl(&blocks);
                    model.fns.push(FnInfo {
                        name,
                        self_ty,
                        trait_ty,
                        file: file_idx,
                        line: idx + 1,
                        has_ctx_param: false,
                        is_test: line.in_test_code,
                        ret_ty: None,
                        locals: BTreeMap::new(),
                        acquires: Vec::new(),
                        calls: Vec::new(),
                        mints: Vec::new(),
                        events: Vec::new(),
                    });
                    pending = Some(Block::Fn { fn_idx: model.fns.len() - 1 });
                    pending_fn_sig.clear();
                    pending_fn_sig.push_str(&code[fn_pos..]);
                }
            }
        } else if let Some(Block::Fn { .. }) = pending {
            pending_fn_sig.push(' ');
            pending_fn_sig.push_str(trimmed);
        }

        // Struct fields: a line inside an open struct block.
        if let Some((block_depth, Block::Struct { name })) = blocks.last().map(|(d, b)| (*d, b)) {
            if depth == block_depth && pending.is_none() {
                let name = name.clone();
                record_struct_field(model, &name, trimmed);
            }
        }

        // Brace tracking + pending binding.
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(block) = pending.take() {
                        if let Block::Fn { fn_idx } = block {
                            let sig = pending_fn_sig.split('{').next().unwrap_or("").to_string();
                            apply_signature(model, fn_idx, &sig);
                            blocks.push((depth, Block::Fn { fn_idx }));
                        } else {
                            blocks.push((depth, block));
                        }
                    } else {
                        blocks.push((depth, Block::Other));
                    }
                }
                '}' => {
                    while blocks.last().is_some_and(|(d, _)| *d >= depth) {
                        blocks.pop();
                    }
                    depth -= 1;
                }
                ';' => {
                    // `fn f(..);` (trait decl) or unit struct: drop pending.
                    if depth == blocks.last().map(|(d, _)| *d).unwrap_or(0) {
                        if let Some(Block::Fn { fn_idx }) = pending.take() {
                            // Body-less: keep the fn (trait decl) with sig facts.
                            let sig = pending_fn_sig.split(';').next().unwrap_or("").to_string();
                            apply_signature(model, fn_idx, &sig);
                        } else {
                            pending = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn apply_signature(model: &mut Model, fn_idx: usize, sig: &str) {
    model.fns[fn_idx].has_ctx_param = sig.contains("IoCtx");
    let self_ty = model.fns[fn_idx].self_ty.clone();
    let (params, ret) = parse_signature(sig, self_ty.as_deref());
    model.fns[fn_idx].locals = params;
    model.fns[fn_idx].ret_ty = ret;
}

fn strip_visibility(s: &str) -> &str {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix("pub") {
        let rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('(') {
            if let Some(close) = after.find(')') {
                return after[close + 1..].trim_start();
            }
        }
        return rest;
    }
    s
}

/// Position of a `fn` keyword introducing a definition on this line.
fn fn_keyword_pos(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("fn ") {
        let at = from + pos;
        let ok_before = at == 0 || !is_ident_char(bytes[at - 1] as char);
        if ok_before {
            let name = ident_at(code, at + 3);
            if !name.is_empty() {
                return Some(at);
            }
        }
        from = at + 3;
    }
    None
}

fn enclosing_impl(blocks: &[(i32, Block)]) -> (Option<String>, Option<String>) {
    for (_, b) in blocks.iter().rev() {
        if let Block::Impl { self_ty, trait_ty } = b {
            return (self_ty.clone(), trait_ty.clone());
        }
    }
    (None, None)
}

fn record_struct_field(model: &mut Model, owner: &str, line: &str) {
    let line = strip_visibility(line.trim_start());
    if line.starts_with('#') || line.is_empty() {
        return;
    }
    // `name: Type,` — the colon must come before any '<' or '(' to be a
    // field declaration and not an expression.
    let name: String = line.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() {
        return;
    }
    let rest = line[name.len()..].trim_start();
    let Some(ty) = rest.strip_prefix(':') else { return };
    let ty = ty.trim().trim_end_matches(',').trim();
    if ty.is_empty() {
        return;
    }
    model
        .structs
        .field_ty
        .insert((owner.to_string(), name), ty.to_string());
}

/// Build the class table and the method/field indexes after pass 1.
fn index_model(model: &mut Model) {
    // Declared classes first, in hierarchy order.
    for spec in LOCK_HIERARCHY {
        model.classes.push(ClassInfo {
            name: spec.name.to_string(),
            rank: Some(spec.rank),
            owner: spec.owner.to_string(),
            field: spec.field.to_string(),
        });
        model
            .lock_fields
            .insert((spec.owner.to_string(), spec.field.to_string()), model.classes.len() - 1);
    }
    // Auto-discovered lock fields.
    let fields: Vec<((String, String), String)> = model
        .structs
        .field_ty
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for ((owner, field), ty) in fields {
        if lock_kind(&ty).is_none() {
            continue;
        }
        let key = (owner.clone(), field.clone());
        if !model.lock_fields.contains_key(&key) {
            model.classes.push(ClassInfo {
                name: format!("auto:{owner}.{field}"),
                rank: None,
                owner: owner.clone(),
                field: field.clone(),
            });
            model.lock_fields.insert(key, model.classes.len() - 1);
        }
    }
    // Field-name candidates need file provenance; find each owner's file
    // by scanning fn/impl info is unreliable — record via struct decls
    // during pass 2 instead: here we only know owner names. Approximate
    // the file as "any file that declares a fn on the owner" — good
    // enough because same-file disambiguation only needs the declaring
    // file, which pass 2 supplies through `struct_files`.
    for ((owner, field), &class) in &model.lock_fields {
        model
            .lock_field_names
            .entry(field.clone())
            .or_default()
            .push((owner.clone(), class, usize::MAX));
    }

    for (i, f) in model.fns.iter().enumerate() {
        if let Some(ty) = &f.self_ty {
            model
                .methods
                .entry((ty.clone(), f.name.clone()))
                .or_default()
                .push(i);
            model
                .method_types
                .entry(f.name.clone())
                .or_default()
                .insert(ty.clone());
        }
        if let Some(tr) = &f.trait_ty {
            model
                .trait_methods
                .entry((tr.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
        if f.self_ty.is_none() {
            model.free_fns.entry(f.name.clone()).or_default().push(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 2: expressions
// ---------------------------------------------------------------------------

const ACQ_TOKENS: [(&str, &str); 3] =
    [(".lock()", "Mutex"), (".read()", "RwLock"), (".write()", "RwLock")];

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "trait", "true",
    "type", "unsafe", "use", "where", "while",
];

fn extract_bodies(model: &mut Model, file_idx: usize, clean: &CleanedSource) {
    // Re-walk the file, attributing lines to the innermost open fn. The
    // item structure was already captured; we only need fn boundaries.
    let mut depth: i32 = 0;
    let mut fn_stack: Vec<(i32, usize)> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    // fn defs in this file in order, to re-sync with pass 1.
    let mut defs: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.file == file_idx)
        .map(|(i, _)| i)
        .collect();
    defs.reverse(); // pop from the back in source order

    let mut prev_code = String::new();
    for (idx, line) in clean.lines.iter().enumerate() {
        let code = &line.code;
        if fn_keyword_pos(code).is_some() && defs.last().is_some_and(|&f| model.fns[f].line == idx + 1)
        {
            pending_fn = defs.pop();
        }

        // Identify the fn owning this line's expressions.
        let owner = fn_stack.last().map(|&(_, f)| f);
        let mut line_owner = owner;

        // Brace walk (and pending fn body binding).
        let mut depth_by_pos: Vec<(usize, i32)> = Vec::new();
        for (pos, c) in code.char_indices() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(fn_idx) = pending_fn.take() {
                        fn_stack.push((depth, fn_idx));
                        line_owner = Some(fn_idx);
                    }
                }
                '}' => {
                    while fn_stack.last().is_some_and(|&(d, _)| d >= depth) {
                        fn_stack.pop();
                    }
                    depth -= 1;
                }
                ';' if depth == 0 => {
                    pending_fn = None; // trait method decl without body
                }
                _ => {}
            }
            depth_by_pos.push((pos, depth));
        }
        let depth_at = |pos: usize| -> i32 {
            depth_by_pos
                .iter()
                .rev()
                .find(|&&(p, _)| p < pos)
                .map(|&(_, d)| d)
                .unwrap_or(depth)
        };

        let Some(fn_idx) = line_owner else {
            prev_code = code.clone();
            continue;
        };
        if line.in_test_code || model.fns[fn_idx].is_test {
            prev_code = code.clone();
            continue;
        }

        // `let` bindings with a recoverable type: an explicit annotation
        // (`let d: &Arc<Device> = ..`) or a `Type::ctor(..)` /
        // `Type { .. }` right-hand side. Flat per-fn scope; shadowing
        // overwrites.
        record_local_binding(model, fn_idx, code);

        // Events on this line, ordered by column.
        let mut line_events: Vec<(usize, Event)> = Vec::new();

        // Acquisitions.
        for (token, want_kind) in ACQ_TOKENS {
            let mut from = 0;
            while let Some(p) = code[from..].find(token) {
                let at = from + p;
                from = at + token.len();
                let Some(segments) = receiver_segments(code, at, &prev_code) else { continue };
                let Some((class, kind)) = resolve_lock_field(model, file_idx, fn_idx, &segments)
                else {
                    continue;
                };
                if kind != want_kind {
                    continue;
                }
                let (held, binding, chained) = acquisition_shape(code, at + token.len(), clean, idx);
                let acq = Acq {
                    class,
                    line: idx + 1,
                    depth: depth_at(at),
                    held,
                    binding,
                    chained,
                };
                model.fns[fn_idx].acquires.push(acq);
                line_events.push((at, Event::Acquire(model.fns[fn_idx].acquires.len() - 1)));
            }
        }

        // Calls, releases, mints.
        collect_calls(model, fn_idx, code, &prev_code, idx, &mut line_events);

        line_events.sort_by_key(|&(col, _)| col);
        for (_, ev) in line_events {
            model.fns[fn_idx].events.push(ev);
        }
        model.fns[fn_idx].events.push(Event::ScopeEnd(depth));
        prev_code = code.clone();
    }
}

/// Record a typed `let` binding from this line into the fn's local table.
fn record_local_binding(model: &mut Model, fn_idx: usize, code: &str) {
    let trimmed = code.trim_start();
    let Some(after_let) = trimmed.strip_prefix("let ") else { return };
    let after_let = after_let.trim_start();
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let).trim_start();
    let name = ident_at(after_mut, 0);
    if name.is_empty() {
        return;
    }
    let rest = after_mut[name.len()..].trim_start();
    let ty = if let Some(annot) = rest.strip_prefix(':') {
        // `let d: &Arc<Device> = ..`
        strip_type(annot.split('=').next().unwrap_or(annot))
    } else if let Some(rhs) = rest.strip_prefix('=') {
        // `let b = WriteBatch::new(..)` / `let c = Config { .. }`
        let rhs = rhs.trim_start();
        let head = ident_at(rhs, 0);
        let after_head = rhs[head.len()..].trim_start();
        if head.chars().next().is_some_and(|c| c.is_uppercase())
            && (after_head.starts_with("::") || after_head.starts_with('{'))
        {
            if head == "Self" {
                model.fns[fn_idx].self_ty.clone()
            } else {
                Some(head)
            }
        } else {
            None
        }
    } else {
        None
    };
    if let Some(ty) = ty {
        model.fns[fn_idx].locals.insert(name, ty);
    }
}

/// Walk backwards from the `.` at `dot` collecting the receiver's
/// segment path (`self.shards[i]` → `self.shards`; call segments like
/// `pool_for(..)` are marked). Falls back to `prev_line + line` when the
/// chain starts at column 0 (rustfmt multi-line chains).
fn receiver_segments(code: &str, dot: usize, prev_code: &str) -> Option<Vec<Seg>> {
    fn walk(code: &str, dot: usize) -> (Vec<Seg>, bool) {
        let bytes = code.as_bytes();
        let mut segments: Vec<Seg> = Vec::new();
        let mut i = dot;
        loop {
            // Skip balanced `[..]` / `(..)` groups; a `(..)` group means
            // this segment is a call.
            let mut is_call = false;
            while i > 0 && (bytes[i - 1] == b']' || bytes[i - 1] == b')') {
                let (open, close) = if bytes[i - 1] == b']' { (b'[', b']') } else { (b'(', b')') };
                if close == b')' {
                    is_call = true;
                }
                let mut d = 0i32;
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    if bytes[j] == close {
                        d += 1;
                    } else if bytes[j] == open {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                }
                i = j;
            }
            let end = i;
            while i > 0 && is_ident_char(bytes[i - 1] as char) {
                i -= 1;
            }
            if end == i {
                return (segments, i == 0);
            }
            segments.push(Seg { name: code[i..end].to_string(), is_call });
            if i > 0 && bytes[i - 1] == b'.' {
                i -= 1;
                continue;
            }
            return (segments, i == 0);
        }
    }
    let (mut segments, hit_start) = walk(code, dot);
    if segments.is_empty() && hit_start {
        // `.lock()` begins the line: join with the previous line.
        let joined = format!("{} {}", prev_code.trim_end(), code);
        let new_dot = prev_code.trim_end().len() + 1 + dot;
        let (s, _) = walk(&joined, new_dot);
        segments = s;
    }
    if segments.is_empty() {
        return None;
    }
    segments.reverse();
    Some(segments)
}

/// Resolve a receiver path ending in a lock field to its class.
/// Returns `(class index, lock kind)`.
fn resolve_lock_field(
    model: &Model,
    file_idx: usize,
    fn_idx: usize,
    segments: &[Seg],
) -> Option<(usize, &'static str)> {
    let field = &segments.last()?.name;
    let kind_of = |owner: &str, field: &str| -> Option<&'static str> {
        model
            .structs
            .field_ty
            .get(&(owner.to_string(), field.to_string()))
            .and_then(|ty| lock_kind(ty))
    };
    // `self.field`: enclosing impl type wins. A typed local base
    // (`let st = &self.state; st.lock()` is out of scope, but
    // `dev.state.lock()` with `dev: &Arc<Device>` resolves via locals).
    let base_ty = if segments[0].name == "self" && !segments[0].is_call {
        model.fns[fn_idx].self_ty.clone()
    } else if !segments[0].is_call {
        model.fns[fn_idx].locals.get(&segments[0].name).cloned()
    } else {
        None
    };
    if segments.len() >= 2 {
        if let Some(base_ty) = base_ty {
            // Chase intermediate segments for `self.a.b.lock()` paths;
            // call segments chase the callee's return type.
            let mut ty = base_ty;
            for seg in &segments[1..segments.len() - 1] {
                let next = if seg.is_call {
                    methods_of(model, &ty, &seg.name)
                        .iter()
                        .find_map(|&i| model.fns[i].ret_ty.clone())
                } else {
                    model
                        .structs
                        .field_ty
                        .get(&(ty.clone(), seg.name.clone()))
                        .and_then(|t| strip_type(t))
                };
                match next {
                    Some(t) => ty = t,
                    None => break,
                }
            }
            if let Some(&class) = model.lock_fields.get(&(ty.clone(), field.clone())) {
                return kind_of(&ty, field).map(|k| (class, k));
            }
        }
    }
    // Fallback: by field name, preferring owners declared in this file.
    let candidates = model.lock_field_names.get(field)?;
    let this_file = &model.files[file_idx];
    let this_crate = crate_of_path(this_file);
    let in_file: Vec<_> = candidates
        .iter()
        .filter(|(owner, _, _)| {
            // The owner is "in this file" if any fn on it is.
            model.fns.iter().any(|f| {
                f.self_ty.as_deref() == Some(owner.as_str()) && f.file == file_idx
            })
        })
        .collect();
    let pick = |cands: &[&(String, usize, usize)]| -> Option<(usize, &'static str)> {
        let classes: BTreeSet<usize> = cands.iter().map(|(_, c, _)| *c).collect();
        if classes.len() == 1 {
            let (owner, class, _) = cands[0];
            return kind_of(owner, field).map(|k| (*class, k));
        }
        None
    };
    if let Some(hit) = pick(&in_file) {
        return Some(hit);
    }
    let in_crate: Vec<_> = candidates
        .iter()
        .filter(|(owner, _, _)| {
            model.fns.iter().any(|f| {
                f.self_ty.as_deref() == Some(owner.as_str())
                    && model.crate_of(f.file) == this_crate
            })
        })
        .collect();
    if let Some(hit) = pick(&in_crate) {
        return Some(hit);
    }
    pick(&candidates.iter().collect::<Vec<_>>())
}

/// Classify what follows an acquisition: held guard binding vs transient,
/// and a method chained directly on the fresh guard.
fn acquisition_shape(
    code: &str,
    after: usize,
    clean: &CleanedSource,
    line_idx: usize,
) -> (bool, Option<String>, Option<String>) {
    let rest = code[after..].trim_start();
    let next_significant = if rest.is_empty() {
        // Chain may continue on the following line.
        clean
            .lines
            .get(line_idx + 1)
            .map(|l| l.code.trim_start().to_string())
            .unwrap_or_default()
    } else {
        rest.to_string()
    };
    if let Some(chain) = next_significant.strip_prefix('.') {
        let method = ident_at(chain, 0);
        let method = if method.is_empty() { None } else { Some(method) };
        return (false, None, method);
    }
    let terminal = rest.is_empty() || rest.starts_with(';');
    if !terminal {
        return (false, None, None);
    }
    // `let [mut] name = ... .lock();` → held with a named binding.
    let trimmed = code.trim_start();
    if let Some(after_let) = trimmed.strip_prefix("let ") {
        let after_let = after_let.trim_start();
        let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let).trim_start();
        let name = ident_at(after_mut, 0);
        if !name.is_empty() && after_mut[name.len()..].trim_start().starts_with('=') {
            return (true, Some(name), None);
        }
        // Destructuring or pattern binding: held, but unnamed (released
        // only by scope end).
        return (true, None, None);
    }
    (false, None, None)
}

/// Scan a line for call sites, `drop(..)` releases and `IoCtx::new(`
/// mints, appending events.
fn collect_calls(
    model: &mut Model,
    fn_idx: usize,
    code: &str,
    prev_code: &str,
    line_idx: usize,
    line_events: &mut Vec<(usize, Event)>,
) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < code.len() {
        if !is_ident_char(bytes[i] as char) {
            i += 1;
            continue;
        }
        let start = i;
        while i < code.len() && is_ident_char(bytes[i] as char) {
            i += 1;
        }
        let name = &code[start..i];
        // Word must begin here.
        if start > 0 && is_ident_char(bytes[start - 1] as char) {
            continue;
        }
        // Followed by `(` (allowing `::<..>` turbofish is out of scope).
        let mut j = i;
        while j < code.len() && bytes[j] == b' ' {
            j += 1;
        }
        if j >= code.len() || bytes[j] != b'(' {
            continue;
        }
        // Macros (`name!(`) were consumed above because `!` is not a space;
        // check explicitly: the char right after the ident.
        if bytes.get(i) == Some(&b'!') {
            continue;
        }
        // Skip definitions: `fn name(`.
        if code[..start].trim_end().ends_with("fn") {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        let preceded_by = |s: &str| code[..start].ends_with(s);
        if name == "drop" && !preceded_by(".") && !preceded_by("::") {
            let arg = ident_at(code, j + 1);
            if !arg.is_empty() && code[j + 1 + arg.len()..].starts_with(')') {
                line_events.push((start, Event::Release(arg)));
            }
            continue;
        }
        let target = if preceded_by("::") {
            // Path call: take the segment before `::`.
            let before = &code[..start - 2];
            let seg_end = before.len();
            let mut k = seg_end;
            let b2 = before.as_bytes();
            while k > 0 && is_ident_char(b2[k - 1] as char) {
                k -= 1;
            }
            let ty = &before[k..seg_end];
            if ty.is_empty() {
                None
            } else if ty == "IoCtx" && name == "new" {
                model.fns[fn_idx].mints.push(line_idx + 1);
                None
            } else {
                let ty = if ty == "Self" {
                    model.fns[fn_idx].self_ty.clone().unwrap_or_else(|| "Self".into())
                } else {
                    ty.to_string()
                };
                Some(CallTarget::Path(ty, name.to_string()))
            }
        } else if preceded_by(".") {
            if matches!(name, "lock" | "read" | "write" | "try_lock") {
                None // acquisitions, handled separately
            } else {
                receiver_segments(code, start - 1, prev_code)
                    .map(|segs| CallTarget::Method(segs, name.to_string()))
            }
        } else {
            Some(CallTarget::Free(name.to_string()))
        };
        if let Some(target) = target {
            model.fns[fn_idx].calls.push(CallSite {
                line: line_idx + 1,
                target,
                resolved: Vec::new(),
            });
            line_events.push((start, Event::Call(model.fns[fn_idx].calls.len() - 1)));
        }
    }
}

/// Resolve every recorded call site to callee fn indices.
fn resolve_calls(model: &mut Model) {
    let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(model.fns.len());
    for f in &model.fns {
        let mut per_fn = Vec::with_capacity(f.calls.len());
        for call in &f.calls {
            per_fn.push(resolve_one(model, f, &call.target));
        }
        resolved.push(per_fn);
    }
    for (f, per_fn) in model.fns.iter_mut().zip(resolved) {
        for (call, r) in f.calls.iter_mut().zip(per_fn) {
            call.resolved = r;
        }
    }
}

fn methods_of(model: &Model, ty: &str, name: &str) -> Vec<usize> {
    let key = (ty.to_string(), name.to_string());
    if let Some(v) = model.methods.get(&key) {
        return v.clone();
    }
    if let Some(v) = model.trait_methods.get(&key) {
        return v.clone();
    }
    Vec::new()
}

fn dispatch_fallback(model: &Model, name: &str) -> Vec<usize> {
    if NOISY_METHODS.contains(&name) {
        return Vec::new();
    }
    let Some(types) = model.method_types.get(name) else { return Vec::new() };
    if types.is_empty() || types.len() > MAX_DISPATCH {
        return Vec::new();
    }
    let mut out = Vec::new();
    for ty in types {
        out.extend(methods_of(model, ty, name));
    }
    out
}

fn resolve_one(model: &Model, caller: &FnInfo, target: &CallTarget) -> Vec<usize> {
    match target {
        CallTarget::Path(ty, name) => {
            let hit = methods_of(model, ty, name);
            if !hit.is_empty() {
                return hit;
            }
            Vec::new()
        }
        CallTarget::Method(segments, name) => {
            let base = &segments[0];
            if segments.len() == 1 && base.name == "self" && !base.is_call {
                if let Some(ty) = &caller.self_ty {
                    let hit = methods_of(model, ty, name);
                    if !hit.is_empty() {
                        return hit;
                    }
                }
                return dispatch_fallback(model, name);
            }
            // Base type: `self` → the impl type; a plain identifier → a
            // typed local or parameter; a call base → unknown.
            let mut ty: Option<String> = if base.name == "self" && !base.is_call {
                caller.self_ty.clone()
            } else if !base.is_call {
                caller.locals.get(&base.name).cloned()
            } else {
                None
            };
            let base_typed = ty.is_some();
            for seg in &segments[1..] {
                ty = match &ty {
                    Some(t) => {
                        if seg.is_call {
                            // `self.pool_for(..).delete(..)`: chase the
                            // callee's return type.
                            methods_of(model, t, &seg.name)
                                .iter()
                                .find_map(|&i| model.fns[i].ret_ty.clone())
                        } else {
                            model
                                .structs
                                .field_ty
                                .get(&(t.clone(), seg.name.clone()))
                                .and_then(|raw| strip_type(raw))
                        }
                    }
                    None if !seg.is_call => {
                        // Unknown base (`obj.plog.delete(..)`): all structs
                        // declaring this field must agree on the type.
                        let types: BTreeSet<String> = model
                            .structs
                            .field_ty
                            .iter()
                            .filter(|((_, f), _)| f == &seg.name)
                            .filter_map(|(_, raw)| strip_type(raw))
                            .collect();
                        if types.len() == 1 {
                            types.into_iter().next()
                        } else {
                            None
                        }
                    }
                    None => None,
                };
                if ty.is_none() {
                    break;
                }
            }
            match ty {
                Some(ty) => {
                    // A resolved receiver type is authoritative: no method
                    // in the workspace means the call is external
                    // (Vec::push, HashMap::get, ...) — no edges, no
                    // name-based fallback.
                    methods_of(model, &ty, name)
                }
                // The base had a known type but the chase dead-ended:
                // still authoritative enough to skip the noisy fallback.
                None if base_typed => Vec::new(),
                None => dispatch_fallback(model, name),
            }
        }
        CallTarget::Free(name) => {
            let Some(cands) = model.free_fns.get(name) else { return Vec::new() };
            let caller_crate = model.crate_of(caller.file).to_string();
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| model.crate_of(model.fns[i].file) == caller_crate)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            cands.clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// Per-function lock summaries: the classes a call into the function may
/// acquire, propagated along call edges to a fixpoint.
fn lock_summaries(model: &Model) -> Vec<BTreeSet<usize>> {
    let mut summary: Vec<BTreeSet<usize>> = model
        .fns
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.class).collect())
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in model.fns.iter().enumerate() {
            let mut add: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                for &callee in &call.resolved {
                    if callee != i {
                        add.extend(summary[callee].iter().copied());
                    }
                }
            }
            // Chained calls on a fresh guard resolve against the locked
            // inner type; fold those in too.
            for acq in &f.acquires {
                if let Some(chained) = &acq.chained {
                    for callee in chained_callees(model, acq, chained) {
                        if callee != i {
                            add.extend(summary[callee].iter().copied());
                        }
                    }
                }
            }
            if !add.is_subset(&summary[i]) {
                summary[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            return summary;
        }
    }
}

/// Resolve a method chained directly onto a fresh guard
/// (`self.inner.write().put(..)`) against the lock's protected type.
fn chained_callees(model: &Model, acq: &Acq, chained: &str) -> Vec<usize> {
    let info = &model.classes[acq.class];
    let inner = model
        .structs
        .field_ty
        .get(&(info.owner.clone(), info.field.clone()))
        .and_then(|raw| lock_inner_type(raw));
    if let Some(inner) = inner {
        let hit = methods_of(model, &inner, chained);
        if !hit.is_empty() {
            return hit;
        }
    }
    Vec::new()
}

struct ActiveGuard {
    class: usize,
    depth: i32,
    binding: Option<String>,
}

/// Run the full analysis over `(path, source)` pairs: build the model,
/// compute the lock graph and produce R9/R10 findings (unfiltered by
/// waivers — the caller applies those).
pub fn analyze(files: &[(String, String)]) -> (Vec<ModelFinding>, LockGraph) {
    let model = build(files);
    let summaries = lock_summaries(&model);
    let mut findings: Vec<ModelFinding> = Vec::new();

    // --- Lock graph: held-set walk over every function body. ---
    let mut edge_map: BTreeMap<(usize, usize), (String, usize, Option<String>)> = BTreeMap::new();
    for f in &model.fns {
        if f.is_test {
            continue;
        }
        let file = model.files[f.file].clone();
        let mut active: Vec<ActiveGuard> = Vec::new();
        for ev in &f.events {
            match ev {
                Event::Acquire(ai) => {
                    let acq = &f.acquires[*ai];
                    for g in &active {
                        if g.class == acq.class {
                            findings.push(ModelFinding {
                                rule: Rule::R9,
                                file: file.clone(),
                                line: acq.line,
                                message: format!(
                                    "nested acquisition of lock class `{}` while already held \
                                     (std::sync::Mutex self-deadlocks)",
                                    model.classes[acq.class].name
                                ),
                            });
                        } else {
                            edge_map
                                .entry((g.class, acq.class))
                                .or_insert((file.clone(), acq.line, None));
                        }
                    }
                    // A method chained on the fresh guard runs while the
                    // lock is held.
                    if let Some(chained) = &acq.chained {
                        for callee in chained_callees(&model, acq, chained) {
                            for &cls in &summaries[callee] {
                                if cls != acq.class {
                                    edge_map.entry((acq.class, cls)).or_insert((
                                        file.clone(),
                                        acq.line,
                                        Some(chained.clone()),
                                    ));
                                }
                                for g in &active {
                                    if cls != g.class {
                                        edge_map.entry((g.class, cls)).or_insert((
                                            file.clone(),
                                            acq.line,
                                            Some(chained.clone()),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    if acq.held {
                        active.push(ActiveGuard {
                            class: acq.class,
                            depth: acq.depth,
                            binding: acq.binding.clone(),
                        });
                    }
                }
                Event::Call(ci) => {
                    if active.is_empty() {
                        continue;
                    }
                    let call = &f.calls[*ci];
                    let mut acquired: BTreeSet<usize> = BTreeSet::new();
                    for &callee in &call.resolved {
                        acquired.extend(summaries[callee].iter().copied());
                    }
                    let via = match &call.target {
                        CallTarget::Path(t, n) => format!("{t}::{n}"),
                        CallTarget::Method(_, n) | CallTarget::Free(n) => n.clone(),
                    };
                    for g in &active {
                        for &cls in &acquired {
                            // Same-class edges via summaries are
                            // instance-ambiguous; suppressed by design.
                            if cls != g.class {
                                edge_map
                                    .entry((g.class, cls))
                                    .or_insert((file.clone(), call.line, Some(via.clone())));
                            }
                        }
                    }
                }
                Event::Release(name) => {
                    if let Some(pos) =
                        active.iter().rposition(|g| g.binding.as_deref() == Some(name))
                    {
                        active.remove(pos);
                    }
                }
                Event::ScopeEnd(depth) => {
                    active.retain(|g| g.depth <= *depth);
                }
            }
        }
    }

    let mut graph = LockGraph { classes: model.classes.clone(), edges: Vec::new() };
    for ((from, to), (file, line, via)) in &edge_map {
        graph.edges.push(LockEdge {
            from: *from,
            to: *to,
            file: file.clone(),
            line: *line,
            via: via.clone(),
        });
    }

    // --- R9: hierarchy violations. ---
    for e in &graph.edges {
        let (Some(rf), Some(rt)) = (graph.classes[e.from].rank, graph.classes[e.to].rank)
        else {
            continue;
        };
        if rf >= rt {
            let via = e.via.as_deref().map(|v| format!(" (via `{v}`)")).unwrap_or_default();
            findings.push(ModelFinding {
                rule: Rule::R9,
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "lock-order inversion: `{}` (rank {rt}) acquired while holding `{}` \
                     (rank {rf}){via}; the canonical hierarchy requires strictly \
                     increasing ranks",
                    graph.classes[e.to].name, graph.classes[e.from].name,
                ),
            });
        }
    }

    // --- R9: cycles among classes (deadlock candidates). ---
    for cycle in find_cycles(graph.classes.len(), &graph.edges) {
        let names: Vec<&str> =
            cycle.iter().map(|&c| graph.classes[c].name.as_str()).collect();
        // Anchor the finding at the provenance of the first edge inside
        // the cycle.
        let anchor = graph
            .edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to));
        let (file, line) = anchor
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| (model.files.first().cloned().unwrap_or_default(), 1));
        findings.push(ModelFinding {
            rule: Rule::R9,
            file,
            line,
            message: format!(
                "lock-acquisition cycle (deadlock candidate): {}",
                names.join(" -> "),
            ),
        });
    }

    // --- R10: fresh roots minted on the timed data path. ---
    let reaches = reaches_timed_op(&model);
    for (i, f) in model.fns.iter().enumerate() {
        if f.is_test || f.mints.is_empty() || !reaches[i] {
            continue;
        }
        let file = &model.files[f.file];
        if !DATA_PATH_CRATES.iter().any(|c| file.starts_with(&format!("crates/{c}/src/"))) {
            continue;
        }
        if ROOT_CTX_FILES.contains(&file.as_str()) {
            continue;
        }
        for &line in &f.mints {
            findings.push(ModelFinding {
                rule: Rule::R10,
                file: file.clone(),
                line,
                message: format!(
                    "`IoCtx::new(` in `{}`, which reaches a timed device operation: \
                     accept `&IoCtx` from the caller so deadlines and tracing propagate",
                    f.name
                ),
            });
        }
    }

    (findings, graph)
}

/// Functions that can reach a timed device operation (a simdisk function
/// taking `&IoCtx`), via the call graph.
fn reaches_timed_op(model: &Model) -> Vec<bool> {
    let mut reaches: Vec<bool> = model
        .fns
        .iter()
        .map(|f| {
            f.has_ctx_param
                && !f.is_test
                && model.files[f.file].starts_with("crates/simdisk/src/")
        })
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in model.fns.iter().enumerate() {
            if reaches[i] {
                continue;
            }
            let hit = f
                .calls
                .iter()
                .flat_map(|c| c.resolved.iter())
                .any(|&callee| reaches[callee]);
            if hit {
                reaches[i] = true;
                changed = true;
            }
        }
        if !changed {
            return reaches;
        }
    }
}

/// Strongly connected components with more than one node (Kahn-style
/// elimination: repeatedly strip nodes lacking in- or out-edges; what
/// remains decomposes into cycles). Self-loops are excluded — direct
/// same-class nesting is reported separately.
fn find_cycles(class_count: usize, edges: &[LockEdge]) -> Vec<Vec<usize>> {
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); class_count];
    for e in edges {
        if e.from != e.to {
            adj[e.from].insert(e.to);
        }
    }
    // Iteratively remove nodes with no outgoing or no incoming edges.
    let mut alive: Vec<bool> = vec![true; class_count];
    loop {
        let mut changed = false;
        for n in 0..class_count {
            if !alive[n] {
                continue;
            }
            let has_out = adj[n].iter().any(|&m| alive[m]);
            let has_in = (0..class_count).any(|m| alive[m] && adj[m].contains(&n));
            if !has_out || !has_in {
                alive[n] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Remaining nodes partition into SCCs; collect each weakly-coupled
    // group via DFS over the remaining directed edges.
    let mut seen: Vec<bool> = vec![false; class_count];
    let mut cycles = Vec::new();
    for n in 0..class_count {
        if !alive[n] || seen[n] {
            continue;
        }
        let mut group = Vec::new();
        let mut stack = vec![n];
        while let Some(v) = stack.pop() {
            if seen[v] || !alive[v] {
                continue;
            }
            seen[v] = true;
            group.push(v);
            for &m in &adj[v] {
                if alive[m] && !seen[m] {
                    stack.push(m);
                }
            }
        }
        if group.len() > 1 {
            group.sort();
            cycles.push(group);
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLE_FIXTURE: &str = include_str!("../fixtures/lock_cycle.rs");
    const ORDERED_FIXTURE: &str = include_str!("../fixtures/lock_ordered.rs");

    fn one_file(path: &str, source: &str) -> Vec<(String, String)> {
        vec![(path.to_string(), source.to_string())]
    }

    #[test]
    fn extracts_call_edges_through_typed_receivers() {
        let src = "pub struct Helper {
    n: u64,
}

impl Helper {
    pub fn bump(&self) {
        let _ = self.n;
    }
}

pub struct Owner {
    helper: Helper,
}

impl Owner {
    pub fn run(&self, h2: &Helper) {
        self.helper.bump();
        h2.bump();
        let local = Helper { n: 0 };
        local.bump();
    }
}
";
        let model = build(&one_file("crates/sim/src/x.rs", src));
        let run = model.fns.iter().find(|f| f.name == "run").expect("fn run extracted");
        let bump = model
            .fns
            .iter()
            .position(|f| f.name == "bump")
            .expect("fn bump extracted");
        // All three call shapes — field receiver, typed parameter, typed
        // local — resolve to Helper::bump.
        assert_eq!(run.calls.len(), 3, "three call sites: {:?}", run.calls);
        for call in &run.calls {
            assert_eq!(call.resolved, vec![bump], "unresolved: {:?}", call.target);
        }
    }

    #[test]
    fn detects_lock_sites_with_class_and_hold_state() {
        let src = "pub struct PlogStore {
    shards: Mutex<u64>,
}

impl PlogStore {
    pub fn held_then_released(&self) {
        let g = self.shards.lock();
        drop(g);
    }

    pub fn transient(&self) -> u64 {
        *self.shards.lock()
    }
}
";
        let model = build(&one_file("crates/plog/src/store.rs", src));
        let held = model.fns.iter().find(|f| f.name == "held_then_released").unwrap();
        assert_eq!(held.acquires.len(), 1);
        let class = &model.classes[held.acquires[0].class];
        // Owner + field match the canonical table, so the declared class
        // name and rank attach.
        assert_eq!(class.name, "plog.shard");
        assert_eq!(class.rank, Some(60));
        let transient = model.fns.iter().find(|f| f.name == "transient").unwrap();
        assert_eq!(transient.acquires.len(), 1);
    }

    #[test]
    fn fixture_cycle_is_flagged_by_r9() {
        let (findings, graph) = analyze(&one_file("crates/sim/src/pair.rs", CYCLE_FIXTURE));
        assert_eq!(graph.edges.len(), 2, "both orders observed: {:?}", graph.edges);
        let r9: Vec<_> = findings.iter().filter(|f| f.rule == Rule::R9).collect();
        assert!(
            r9.iter().any(|f| f.message.contains("cycle")),
            "expected a cycle finding, got {findings:?}"
        );
    }

    #[test]
    fn fixture_with_consistent_order_is_clean() {
        let (findings, graph) = analyze(&one_file("crates/sim/src/pair.rs", ORDERED_FIXTURE));
        assert_eq!(graph.edges.len(), 1, "one direction only: {:?}", graph.edges);
        assert!(
            findings.iter().all(|f| f.rule != Rule::R9),
            "consistent ordering must not flag: {findings:?}"
        );
    }

    #[test]
    fn deep_ioctx_mint_on_the_timed_path_is_flagged_by_r10() {
        let device = "pub struct Device {
    n: u64,
}

impl Device {
    pub fn read_ctx(&self, ctx: &IoCtx) -> u64 {
        let _ = ctx;
        self.n
    }
}
";
        let caller = "pub struct Reader {
    dev: Device,
}

impl Reader {
    pub fn fetch(&self) -> u64 {
        let ctx = IoCtx::new(0);
        self.dev.read_ctx(&ctx)
    }
}
";
        let files = vec![
            ("crates/simdisk/src/device.rs".to_string(), device.to_string()),
            ("crates/plog/src/reader.rs".to_string(), caller.to_string()),
        ];
        let (findings, _) = analyze(&files);
        let r10: Vec<_> = findings.iter().filter(|f| f.rule == Rule::R10).collect();
        assert_eq!(r10.len(), 1, "exactly the deep mint flags: {findings:?}");
        assert_eq!(r10[0].file, "crates/plog/src/reader.rs");
    }

    #[test]
    fn hierarchy_table_matches_lockwitness() {
        // The runtime witness table lives in common; parse its source so
        // the two tables cannot drift apart silently.
        let witness_src = include_str!("../../common/src/lockwitness.rs");
        let start = witness_src
            .find("HIERARCHY: &[(&str, u32)] = &[")
            .expect("HIERARCHY table present in lockwitness.rs");
        let table = &witness_src[start..];
        let table = &table[..table.find("];").expect("table terminator")];
        for spec in LOCK_HIERARCHY {
            let entry = format!("(\"{}\", {})", spec.name, spec.rank);
            assert!(
                table.contains(&entry),
                "lockwitness::HIERARCHY is missing `{entry}` — keep it in \
                 lockstep with model::LOCK_HIERARCHY"
            );
        }
        let declared = table.matches("(\"").count();
        assert_eq!(
            declared,
            LOCK_HIERARCHY.len(),
            "lockwitness::HIERARCHY has entries model::LOCK_HIERARCHY lacks"
        );
    }

    #[test]
    fn committer_rank_sits_between_scrub_and_shard_in_both_tables() {
        // The group committer holds its state lock while reserving shard
        // address space (plog.shard) and issuing the batched index put
        // (kv.index): its rank must be strictly between the scrub cursor
        // and the shard lock, and the runtime witness must agree.
        let rank_of = |name: &str| {
            LOCK_HIERARCHY
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing from model::LOCK_HIERARCHY"))
                .rank
        };
        let commit = rank_of("plog.commit.state");
        assert!(rank_of("plog.scrub.cursor") < commit && commit < rank_of("plog.shard"));
        assert!(commit < rank_of("kv.index") && commit < rank_of("simdisk.device.state"));
        let witness_src = include_str!("../../common/src/lockwitness.rs");
        assert!(
            witness_src.contains(&format!("(\"plog.commit.state\", {commit})")),
            "lockwitness must carry the committer rank at the same value"
        );
    }

    #[test]
    fn frontdoor_ranks_sit_between_chore_and_access_in_both_tables() {
        // The front door locks its state before journaling a decision
        // (state < journal) and may hold either while calling auth-free
        // paths into stream/plog/simdisk/metrics — so both must rank
        // below every data-path lock, and below access.grants (auth runs
        // and releases before the state lock is taken).
        let rank_of = |name: &str| {
            LOCK_HIERARCHY
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing from model::LOCK_HIERARCHY"))
                .rank
        };
        let state = rank_of("core.frontdoor.state");
        let journal = rank_of("core.frontdoor.journal");
        assert!(state < journal, "decisions are journaled under the state lock");
        assert!(rank_of("core.chore.runtime") < state);
        assert!(journal < rank_of("core.access.grants"));
        assert!(journal < rank_of("stream.service.worker_ids"));
        assert!(journal < rank_of("simdisk.device.state"));
        assert!(journal < rank_of("common.metrics"));
        let witness_src = include_str!("../../common/src/lockwitness.rs");
        for (name, rank) in [("core.frontdoor.state", state), ("core.frontdoor.journal", journal)] {
            assert!(
                witness_src.contains(&format!("(\"{name}\", {rank})")),
                "lockwitness must carry {name} at rank {rank}"
            );
        }
    }
}
