//! `slint` — StreamLake lint: a workspace-wide determinism and
//! error-hygiene checker.
//!
//! The repo's validity claim is that every simulated experiment is a pure
//! function of its seed: virtual time comes from `common::clock::SimClock`,
//! randomness from explicitly seeded generators, and library layers report
//! failures through `common::error::Error` instead of panicking. This crate
//! enforces those invariants mechanically with a dependency-free line/token
//! scanner:
//!
//! * **R1** — no `std::time::Instant` / `std::time::SystemTime` (wall-clock
//!   time) outside `crates/bench`, which measures the real host.
//! * **R2** — no ambient entropy (`thread_rng`, `rand::random`,
//!   `from_entropy`, `OsRng`, `getrandom`) in the simulation crates.
//! * **R3** — no `std::thread::sleep` and no real file I/O (`std::fs`,
//!   `File::open`, …) in the simulation crates; `kvstore/src/wal.rs` is
//!   exempt because the WAL deliberately owns durable-storage modelling.
//! * **R4** — no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` in non-test library code of the layered
//!   crates (`lake`, `stream`, `format`, `plog`, `core`); failures must
//!   propagate as `common::error::Error`.
//! * **R5** — flag `HashMap` / `HashSet` in deterministic-output crates
//!   when the same file iterates a map, since `RandomState` iteration
//!   order varies per process; prefer `BTreeMap` / `BTreeSet`.
//! * **R6** — every `unsafe` block needs a `// SAFETY:` comment on the
//!   same line or within the three lines above.
//! * **R7** — outside `crates/common` and `crates/simdisk`, library code
//!   must not call `SimClock::advance` / `advance_to` directly: upper
//!   layers receive time through `common::ctx::IoCtx` and the `_at`
//!   methods; only the device layer may move the shared clock.
//! * **R8** — background-service entry points (`run_policy`, `run_cycle`,
//!   `run_to_convergence`, `maybe_archive`, `compact_all`) may only be
//!   called from the owning service's own crate; everywhere else the work
//!   must be driven through the `core::chore` maintenance runtime, so one
//!   scheduler owns budgets, backpressure and deterministic retry.
//!
//! On top of the token rules, the [`model`] module builds workspace-wide
//! facts (function definitions, call edges, lock-field acquisition sites,
//! `IoCtx` parameter flow) and checks three semantic rules:
//!
//! * **R9** — the inter-procedural lock-acquisition graph must be acyclic
//!   and every `held → acquired` edge must respect the canonical lock
//!   hierarchy ([`model::LOCK_HIERARCHY`]); direct same-class nesting is
//!   flagged as a self-deadlock.
//! * **R10** — functions in the data-path crates that can reach a timed
//!   device operation must receive `&IoCtx` from their caller: minting a
//!   fresh root with `IoCtx::new(` deep in the stack (outside
//!   [`model::ROOT_CTX_FILES`]) silently drops deadlines and tracing, and
//!   `.without_deadline(` is only allowed in the healing/scrub services.
//! * **R11** — swallowed `Result`s (`let _ = ..;` and trailing-statement
//!   `.ok();`) in library code of the layered crates; failures must
//!   propagate or carry a reasoned waiver.
//!
//! Findings can be waived inline with `// slint:allow(R4): reason` (the
//! reason is mandatory; a reasonless waiver is itself a finding, rule W1)
//! and existing debt is held in a checked-in baseline that may only
//! shrink: the gate fails when a (rule, file) pair exceeds its baselined
//! count, and `--baseline-update` rewrites the file to current reality.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

pub mod model;
pub mod scanner;

use scanner::CleanedSource;

/// Lint rules. `W1` covers malformed waiver comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock time outside `crates/bench`.
    R1,
    /// Ambient entropy in simulation crates.
    R2,
    /// Real sleeping or file I/O in simulation crates.
    R3,
    /// Panicking operators in library code of layered crates.
    R4,
    /// Hash containers iterated in deterministic-output crates.
    R5,
    /// `unsafe` without a `// SAFETY:` comment.
    R6,
    /// Direct clock advancement above the device layer.
    R7,
    /// Ad-hoc background-service calls outside the chore runtime.
    R8,
    /// Lock-order violations: cycles, hierarchy inversions, same-class
    /// nesting in the inter-procedural lock graph.
    R9,
    /// `IoCtx` not propagated: fresh roots or `without_deadline` on the
    /// timed data path.
    R10,
    /// Swallowed `Result` in library code.
    R11,
    /// Waiver comment without a reason.
    W1,
}

impl Rule {
    /// All enforceable rules, in order.
    pub const ALL: [Rule; 12] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
        Rule::R10,
        Rule::R11,
        Rule::W1,
    ];

    /// Code as written in waivers and the baseline file.
    pub fn code(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
            Rule::R11 => "R11",
            Rule::W1 => "W1",
        }
    }

    /// Parse a rule code (case-sensitive).
    pub fn parse(code: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.code() == code)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Crates whose run-to-run output must be a pure function of the seed.
const SIM_CRATES: [&str; 7] =
    ["simdisk", "plog", "stream", "lake", "lakebrain", "workloads", "kvstore"];

/// Crates whose library layers must propagate `common::error::Error`.
const NO_PANIC_CRATES: [&str; 5] = ["lake", "stream", "format", "plog", "core"];

/// Crates where hash-container iteration order can leak into output.
const ORDERED_ITER_CRATES: [&str; 6] = ["simdisk", "plog", "stream", "lake", "lakebrain", "format"];

/// Crates where swallowed `Result`s (R11) are findings: the no-panic
/// layers plus the storage substrate and the KV index.
const NO_SWALLOW_CRATES: [&str; 7] =
    ["lake", "stream", "format", "plog", "core", "simdisk", "kvstore"];

/// Files allowed to strip deadlines with `.without_deadline(`: the
/// self-healing read-repair path and the scrub service deliberately
/// outlive the failed request that triggered them.
const WITHOUT_DEADLINE_ALLOWLIST: [&str; 2] =
    ["crates/plog/src/store.rs", "crates/plog/src/scrub.rs"];

fn in_crate_src(path: &str, names: &[&str]) -> bool {
    names.iter().any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn rule_applies(rule: Rule, path: &str) -> bool {
    match rule {
        // bench measures the real host; everything else runs on virtual time.
        Rule::R1 => !path.starts_with("crates/bench/"),
        Rule::R2 => in_crate_src(path, &SIM_CRATES),
        // The WAL module deliberately models durable storage.
        Rule::R3 => in_crate_src(path, &SIM_CRATES) && path != "crates/kvstore/src/wal.rs",
        Rule::R4 => in_crate_src(path, &NO_PANIC_CRATES),
        Rule::R5 => in_crate_src(path, &ORDERED_ITER_CRATES),
        // The device layer (simdisk) owns clock advancement; common hosts
        // the clock itself. Everything above threads time via IoCtx.
        Rule::R7 => {
            path.starts_with("crates/")
                && path.contains("/src/")
                && !path.starts_with("crates/common/")
                && !path.starts_with("crates/simdisk/")
        }
        // The lock graph spans every crate's library code.
        Rule::R9 => path.starts_with("crates/") && path.contains("/src/"),
        Rule::R10 => in_crate_src(path, &model::DATA_PATH_CRATES),
        Rule::R11 => in_crate_src(path, &NO_SWALLOW_CRATES),
        // R8's per-token owner-crate exemptions live in
        // `check_chore_entry_points`; the rule itself applies everywhere.
        Rule::R6 | Rule::R8 | Rule::W1 => true,
    }
}

/// Whether non-test code in `cleaned` iterates some map/set (the R5
/// trigger: a `HashMap` that is never iterated cannot leak ordering).
fn file_iterates_a_map(cleaned: &CleanedSource) -> bool {
    const ITER_TOKENS: [&str; 6] =
        [".values()", ".values_mut()", ".keys()", ".iter()", ".iter_mut()", ".into_iter()"];
    cleaned
        .lines
        .iter()
        .filter(|l| !l.in_test_code)
        .any(|l| ITER_TOKENS.iter().any(|t| l.code.contains(t)))
}

/// Tokens that are findings when present in code text, per rule.
/// `(token, message)` — token matching is substring with word-ish
/// boundaries handled by the caller where needed.
struct TokenRule {
    rule: Rule,
    tokens: &'static [(&'static str, &'static str)],
    /// Whether `#[cfg(test)]` code is exempt.
    skip_test_code: bool,
}

const TOKEN_RULES: [TokenRule; 6] = [
    TokenRule {
        rule: Rule::R1,
        tokens: &[
            ("std::time::Instant", "wall-clock Instant; use common::clock::SimClock"),
            ("std::time::SystemTime", "wall-clock SystemTime; use common::clock::SimClock"),
            ("Instant::now", "wall-clock Instant::now(); use common::clock::SimClock"),
            ("SystemTime::now", "wall-clock SystemTime::now(); use common::clock::SimClock"),
            ("time::Instant", "wall-clock Instant; use common::clock::SimClock"),
            ("time::SystemTime", "wall-clock SystemTime; use common::clock::SimClock"),
        ],
        skip_test_code: false,
    },
    TokenRule {
        rule: Rule::R2,
        tokens: &[
            ("thread_rng", "ambient entropy; seed an explicit StdRng"),
            ("rand::random", "ambient entropy; seed an explicit StdRng"),
            ("from_entropy", "ambient entropy; seed an explicit StdRng"),
            ("OsRng", "OS entropy; seed an explicit StdRng"),
            ("getrandom", "OS entropy; seed an explicit StdRng"),
        ],
        skip_test_code: false,
    },
    TokenRule {
        rule: Rule::R3,
        tokens: &[
            ("thread::sleep", "real sleeping; advance the SimClock instead"),
            ("std::fs", "real file I/O; route through the simulated disk"),
            ("File::open", "real file I/O; route through the simulated disk"),
            ("File::create", "real file I/O; route through the simulated disk"),
            ("OpenOptions", "real file I/O; route through the simulated disk"),
        ],
        skip_test_code: false,
    },
    TokenRule {
        rule: Rule::R4,
        tokens: &[
            (".unwrap()", "panicking operator in library code; return common::error::Error"),
            (".expect(", "panicking operator in library code; return common::error::Error"),
            ("panic!(", "panicking operator in library code; return common::error::Error"),
            ("unreachable!(", "panicking operator in library code; return common::error::Error"),
            ("todo!(", "unfinished code path in library code"),
            ("unimplemented!(", "unfinished code path in library code"),
        ],
        skip_test_code: true,
    },
    TokenRule {
        rule: Rule::R5,
        tokens: &[
            ("HashMap", "hash iteration order is per-process; prefer BTreeMap"),
            ("HashSet", "hash iteration order is per-process; prefer BTreeSet"),
        ],
        skip_test_code: true,
    },
    TokenRule {
        rule: Rule::R7,
        tokens: &[
            (".advance(", "direct clock advance above the device layer; thread time via IoCtx"),
            (".advance_to(", "direct clock advance above the device layer; thread time via IoCtx"),
        ],
        skip_test_code: true,
    },
];

/// Scan one file's source text. `rel_path` must be workspace-relative
/// with forward slashes; it selects which rules apply.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let cleaned = scanner::clean(source);
    let waivers = collect_waivers(&cleaned);
    let mut findings = Vec::new();

    // Malformed waivers are findings themselves, never waivable.
    for w in &waivers.malformed {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: w.line,
            rule: Rule::W1,
            message: w.message.clone(),
        });
    }

    let iterates = file_iterates_a_map(&cleaned);
    for token_rule in &TOKEN_RULES {
        if !rule_applies(token_rule.rule, rel_path) {
            continue;
        }
        if token_rule.rule == Rule::R5 && !iterates {
            continue;
        }
        for (idx, line) in cleaned.lines.iter().enumerate() {
            let lineno = idx + 1;
            if token_rule.skip_test_code && line.in_test_code {
                continue;
            }
            // Tokens overlap (`std::time::Instant` contains `time::Instant`);
            // earlier, longer tokens claim their span so one occurrence
            // yields one finding.
            let mut claimed: Vec<(usize, usize)> = Vec::new();
            for (token, message) in token_rule.tokens {
                for start in find_token(&line.code, token) {
                    let end = start + token.len();
                    if claimed.iter().any(|&(s, e)| start < e && s < end) {
                        continue;
                    }
                    claimed.push((start, end));
                    if waivers.allows(lineno, token_rule.rule) {
                        continue;
                    }
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: token_rule.rule,
                        message: format!("`{token}`: {message}"),
                    });
                }
            }
        }
    }

    if rule_applies(Rule::R6, rel_path) {
        findings.extend(check_unsafe_blocks(rel_path, &cleaned, &waivers));
    }

    if rule_applies(Rule::R8, rel_path) {
        findings.extend(check_chore_entry_points(rel_path, &cleaned, &waivers));
    }

    if rule_applies(Rule::R10, rel_path)
        && !WITHOUT_DEADLINE_ALLOWLIST.contains(&rel_path)
    {
        findings.extend(check_without_deadline(rel_path, &cleaned, &waivers));
    }

    if rule_applies(Rule::R11, rel_path) {
        findings.extend(check_swallowed_results(rel_path, &cleaned, &waivers));
    }

    findings.sort();
    findings
}

/// R10 (token half): `.without_deadline(` strips the caller's deadline;
/// outside the allowlisted healing/scrub services that silently turns a
/// timed request into an unbounded one.
fn check_without_deadline(
    rel_path: &str,
    cleaned: &CleanedSource,
    waivers: &Waivers,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in cleaned.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test_code {
            continue;
        }
        for _ in find_token(&line.code, ".without_deadline(") {
            if waivers.allows(lineno, Rule::R10) {
                continue;
            }
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: Rule::R10,
                message: "`.without_deadline(`: strips the caller's deadline on the data \
                          path; only the healing/scrub services may outlive their trigger"
                    .to_string(),
            });
        }
    }
    findings
}

/// R11: a discarded `Result` hides the failure from every layer above.
/// Flags `let _ = ..;` and *statement-position* `.ok();` (an `.ok()` that
/// feeds an assignment or a `return` is a legitimate Option conversion).
fn check_swallowed_results(
    rel_path: &str,
    cleaned: &CleanedSource,
    waivers: &Waivers,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in cleaned.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test_code || waivers.allows(lineno, Rule::R11) {
            continue;
        }
        let code = &line.code;
        if !find_token(code, "let _ =").is_empty() {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: Rule::R11,
                message: "`let _ =`: discards a Result in library code; propagate the \
                          error or waive with the reason the failure is tolerable"
                    .to_string(),
            });
        }
        for start in find_token(code, ".ok();") {
            // Assignment / return / match-arm positions use the Option.
            let before = &code[..start];
            if before.contains('=') || before.contains("return ") {
                continue;
            }
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule: Rule::R11,
                message: "`.ok();`: swallows a Result in statement position; propagate \
                          the error or waive with the reason the failure is tolerable"
                    .to_string(),
            });
        }
    }
    findings
}

/// Occurrences of `token` in `code` at word-ish boundaries: the character
/// before/after the match must not be alphanumeric or `_` when the token
/// itself starts/ends with an identifier character. This keeps `Instant`
/// from matching `InstantLike` and `HashMap` from matching `HashMapLike`.
fn find_token(code: &str, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let token_starts_ident = token.as_bytes().first().is_some_and(|&b| is_ident(b));
    let token_ends_ident = token.as_bytes().last().is_some_and(|&b| is_ident(b));
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let ok_before =
            !token_starts_ident || start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = !token_ends_ident || end >= bytes.len() || !is_ident(bytes[end]);
        // `::std::time::Instant` and `std::time::Instant` both match the
        // shorter token once; overlapping prefixed forms are deduped by
        // only recording the first token per position.
        if ok_before && ok_after {
            hits.push(start);
        }
        from = start + 1;
    }
    hits
}

struct MalformedWaiver {
    line: usize,
    message: String,
}

struct Waivers {
    /// Lines covered by a valid waiver, per rule. A waiver on line `n`
    /// covers line `n` and line `n + 1`, so it can sit on the offending
    /// line or the line above it.
    allowed: BTreeMap<Rule, BTreeSet<usize>>,
    malformed: Vec<MalformedWaiver>,
}

impl Waivers {
    fn allows(&self, line: usize, rule: Rule) -> bool {
        self.allowed.get(&rule).is_some_and(|lines| lines.contains(&line))
    }
}

/// Parse waiver comments out of comment text. A waiver must *start* the
/// comment (`// slint:allow(R4): reason`); mid-sentence prose mentioning
/// the marker does not arm or malform anything.
fn collect_waivers(cleaned: &CleanedSource) -> Waivers {
    let mut waivers =
        Waivers { allowed: BTreeMap::new(), malformed: Vec::new() };
    for (idx, line) in cleaned.lines.iter().enumerate() {
        let lineno = idx + 1;
        let comment = line.comment.trim_start();
        let Some(rest) = comment.strip_prefix("slint:allow") else { continue };
        let parsed = parse_waiver_args(rest);
        match parsed {
            Ok((rule, reason)) if reason.is_empty() => {
                waivers.malformed.push(MalformedWaiver {
                    line: lineno,
                    message: format!(
                        "waiver for {rule} is missing a reason; write `slint:allow({rule}): <why>`"
                    ),
                });
            }
            Ok((rule, _reason)) => {
                let lines = waivers.allowed.entry(rule).or_default();
                lines.insert(lineno);
                lines.insert(lineno + 1);
            }
            Err(msg) => {
                waivers
                    .malformed
                    .push(MalformedWaiver { line: lineno, message: msg });
            }
        }
    }
    waivers
}

/// Parse the `(<RULE>): reason` tail of a waiver comment.
fn parse_waiver_args(rest: &str) -> Result<(Rule, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("malformed waiver; write `slint:allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed waiver; missing `)` after rule code".to_string());
    };
    let code = rest[..close].trim();
    let Some(rule) = Rule::parse(code) else {
        return Err(format!("waiver names unknown rule `{code}`"));
    };
    let mut reason = rest[close + 1..].trim_start();
    reason = reason.strip_prefix(':').unwrap_or(reason).trim();
    Ok((rule, reason.to_string()))
}

/// R6: each `unsafe` keyword needs `SAFETY:` in a comment on the same
/// line or within the three lines above.
fn check_unsafe_blocks(
    rel_path: &str,
    cleaned: &CleanedSource,
    waivers: &Waivers,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in cleaned.lines.iter().enumerate() {
        let lineno = idx + 1;
        if find_token(&line.code, "unsafe").is_empty() {
            continue;
        }
        let documented = (idx.saturating_sub(3)..=idx)
            .any(|i| cleaned.lines[i].comment.contains("SAFETY:"));
        if documented || waivers.allows(lineno, Rule::R6) {
            continue;
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line: lineno,
            rule: Rule::R6,
            message: "`unsafe` without a `// SAFETY:` comment".to_string(),
        });
    }
    findings
}

/// R8: `(method-call token, owning crate prefix)`. Calling one of these
/// outside the owner means bypassing the maintenance runtime's budgets,
/// backpressure and deterministic scheduling.
const CHORE_ENTRY_POINTS: [(&str, &str); 5] = [
    (".run_policy(", "crates/simdisk/"),
    (".run_cycle(", "crates/plog/"),
    (".run_to_convergence(", "crates/plog/"),
    (".maybe_archive(", "crates/stream/"),
    (".compact_all(", "crates/lake/"),
];

/// R8: background-service entry points may only be driven through the
/// chore runtime outside the owning service's crate (the owner's own
/// code, tests and benches drive itself freely).
fn check_chore_entry_points(
    rel_path: &str,
    cleaned: &CleanedSource,
    waivers: &Waivers,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (token, owner) in CHORE_ENTRY_POINTS {
        if rel_path.starts_with(owner) {
            continue;
        }
        for (idx, line) in cleaned.lines.iter().enumerate() {
            let lineno = idx + 1;
            for _ in find_token(&line.code, token) {
                if waivers.allows(lineno, Rule::R8) {
                    continue;
                }
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: Rule::R8,
                    message: format!(
                        "`{token}`: ad-hoc background-service call; drive it through the \
                         core::chore maintenance runtime"
                    ),
                });
            }
        }
    }
    findings
}

/// Scan a set of `(workspace-relative path, source)` pairs as one unit:
/// the per-file token rules plus the cross-file model rules (R9/R10),
/// with model findings filtered through each file's inline waivers.
pub fn scan_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, source) in files {
        findings.extend(scan_source(rel, source));
    }
    let (model_findings, _) = model::analyze(files);
    let sources: BTreeMap<&str, &str> =
        files.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    let mut waiver_cache: BTreeMap<String, Waivers> = BTreeMap::new();
    for mf in model_findings {
        if !rule_applies(mf.rule, &mf.file) {
            continue;
        }
        let waivers = waiver_cache.entry(mf.file.clone()).or_insert_with(|| {
            sources
                .get(mf.file.as_str())
                .map(|src| collect_waivers(&scanner::clean(src)))
                .unwrap_or_else(|| Waivers { allowed: BTreeMap::new(), malformed: Vec::new() })
        });
        if waivers.allows(mf.line, mf.rule) {
            continue;
        }
        findings.push(Finding {
            file: mf.file,
            line: mf.line,
            rule: mf.rule,
            message: mf.message,
        });
    }
    findings.sort();
    findings
}

/// Read every workspace `.rs` file under `root` as `(relative path,
/// source)` pairs, in stable order.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Walk every workspace `.rs` file under `root` and scan it.
///
/// `target/`, `.git/`, `shims/` and `fixtures/` are skipped: the shims
/// are offline stand-ins for third-party crates, and fixtures are
/// deliberately-broken inputs for slint's own tests.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(scan_sources(&collect_workspace_sources(root)?))
}

/// Build the inter-procedural lock graph for the workspace under `root`
/// (the `--graph` / `--json` views).
pub fn lock_graph(root: &Path) -> std::io::Result<model::LockGraph> {
    let files = collect_workspace_sources(root)?;
    let (_, graph) = model::analyze(&files);
    Ok(graph)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "shims" | "node_modules" | "fixtures") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Baseline: accepted debt as `(rule, file) -> count`. The gate only
/// fails when a pair exceeds its baselined count, so the file ratchets —
/// it can shrink but never silently grow.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Group findings into baseline form.
pub fn tally(findings: &[Finding]) -> Baseline {
    let mut counts = Baseline::new();
    for f in findings {
        *counts.entry((f.rule.code().to_string(), f.file.clone())).or_insert(0) += 1;
    }
    counts
}

/// Parse a baseline file. Lines are `<rule> <count> <path>`; `#` starts
/// a comment.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (rule, count, path) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(c), Some(p)) => (r, c, p.trim()),
            _ => return Err(format!("baseline line {}: expected `<rule> <count> <path>`", idx + 1)),
        };
        if Rule::parse(rule).is_none() {
            return Err(format!("baseline line {}: unknown rule `{rule}`", idx + 1));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        baseline.insert((rule.to_string(), path.to_string()), count);
    }
    Ok(baseline)
}

/// Render a baseline file, stable order, zero entries omitted.
pub fn format_baseline(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# slint baseline: accepted (rule, file) violation counts.\n\
         # Ratchet-only: counts may shrink but the gate fails if any grows.\n\
         # Regenerate with: cargo run -p slint -- --baseline-update\n",
    );
    for ((rule, path), count) in baseline {
        if *count > 0 {
            out.push_str(&format!("{rule} {count} {path}\n"));
        }
    }
    out
}

/// Result of judging findings against a baseline.
#[derive(Debug, Default)]
pub struct GateReport {
    /// (rule, file, actual, allowed) where actual > allowed.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// (rule, file, actual, allowed) where actual < allowed — the
    /// baseline should be ratcheted down.
    pub improvements: Vec<(String, String, usize, usize)>,
    /// Total findings seen.
    pub total_findings: usize,
}

impl GateReport {
    /// Whether the gate passes (no counts above baseline).
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare current findings to the accepted baseline.
pub fn judge(findings: &[Finding], baseline: &Baseline) -> GateReport {
    let actual = tally(findings);
    let mut report = GateReport { total_findings: findings.len(), ..Default::default() };
    for (key, &count) in &actual {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if count > allowed {
            report.regressions.push((key.0.clone(), key.1.clone(), count, allowed));
        }
    }
    for (key, &allowed) in baseline {
        let count = actual.get(key).copied().unwrap_or(0);
        if count < allowed {
            report.improvements.push((key.0.clone(), key.1.clone(), count, allowed));
        }
    }
    report
}

#[cfg(test)]
mod tests;
