//! `slint` CLI: scan the workspace, judge against the baseline.
//!
//! ```text
//! cargo run -p slint                      # gate: exit 0 iff no new violations
//! cargo run -p slint -- --list            # print every current finding
//! cargo run -p slint -- --baseline-update # rewrite the baseline to reality
//! cargo run -p slint -- --root DIR --baseline FILE
//! ```
//!
//! Exit codes: 0 = clean (at or below baseline), 1 = new violations,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    update: bool,
    list: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slint [--root DIR] [--baseline FILE] [--baseline-update] [--list]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    // Default root: the workspace directory two levels above this crate's
    // manifest (cargo sets CARGO_MANIFEST_DIR when running via cargo),
    // falling back to the current directory.
    let manifest_root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|p| p.parent().and_then(|p| p.parent()).map(PathBuf::from));
    let mut opts = Options {
        root: manifest_root.unwrap_or_else(|| PathBuf::from(".")),
        baseline: PathBuf::new(),
        update: false,
        list: false,
    };
    let mut baseline_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-update" => opts.update = true,
            "--list" => opts.list = true,
            "--root" => match args.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_arg = Some(PathBuf::from(file)),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    opts.baseline = baseline_arg.unwrap_or_else(|| opts.root.join("slint.baseline"));
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let findings = match slint::scan_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("slint: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for f in &findings {
            println!("{f}");
        }
        println!("{} finding(s) total", findings.len());
    }

    if opts.update {
        let baseline = slint::tally(&findings);
        let text = slint::format_baseline(&baseline);
        if let Err(e) = std::fs::write(&opts.baseline, text) {
            eprintln!("slint: failed to write {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "slint: baseline updated ({} finding(s) across {} (rule, file) pairs)",
            findings.len(),
            baseline.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&opts.baseline) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("slint: failed to read {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
    };
    let baseline = match slint::parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("slint: bad baseline {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
    };

    let report = slint::judge(&findings, &baseline);
    if !report.ok() {
        eprintln!("slint: new violations above baseline:");
        for (rule, file, actual, allowed) in &report.regressions {
            eprintln!("  [{rule}] {file}: {actual} finding(s), baseline allows {allowed}");
            for f in findings.iter().filter(|f| f.rule.code() == rule && &f.file == file) {
                eprintln!("    {}:{}: {}", f.file, f.line, f.message);
            }
        }
        eprintln!(
            "slint: fix the new findings, add a `// slint:allow(<rule>): <reason>` waiver,\n\
             slint: or (for accepted debt) run `cargo run -p slint -- --baseline-update`."
        );
        return ExitCode::FAILURE;
    }

    if !report.improvements.is_empty() {
        println!("slint: baseline is stale (debt was paid down) — ratchet it:");
        for (rule, file, actual, allowed) in &report.improvements {
            println!("  [{rule}] {file}: now {actual}, baseline allows {allowed}");
        }
        println!("slint: run `cargo run -p slint -- --baseline-update` to ratchet.");
    }
    println!(
        "slint: ok — {} finding(s), all within baseline",
        report.total_findings
    );
    ExitCode::SUCCESS
}
