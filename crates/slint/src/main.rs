//! `slint` CLI: scan the workspace, judge against the baseline.
//!
//! ```text
//! cargo run -p slint                      # gate: exit 0 iff no new violations
//! cargo run -p slint -- --list            # print every current finding
//! cargo run -p slint -- --baseline-update # rewrite the baseline to reality
//! cargo run -p slint -- --graph           # print the lock-acquisition graph
//! cargo run -p slint -- --json FILE       # write findings + graph as JSON
//! cargo run -p slint -- --root DIR --baseline FILE
//! ```
//!
//! Exit codes: 0 = clean (at or below baseline), 1 = new violations,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    update: bool,
    list: bool,
    graph: bool,
    json: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slint [--root DIR] [--baseline FILE] [--baseline-update] [--list] \
         [--graph] [--json FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    // Default root: the workspace directory two levels above this crate's
    // manifest (cargo sets CARGO_MANIFEST_DIR when running via cargo),
    // falling back to the current directory.
    let manifest_root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|p| p.parent().and_then(|p| p.parent()).map(PathBuf::from));
    let mut opts = Options {
        root: manifest_root.unwrap_or_else(|| PathBuf::from(".")),
        baseline: PathBuf::new(),
        update: false,
        list: false,
        graph: false,
        json: None,
    };
    let mut baseline_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-update" => opts.update = true,
            "--list" => opts.list = true,
            "--graph" => opts.graph = true,
            "--json" => match args.next() {
                Some(file) => opts.json = Some(PathBuf::from(file)),
                None => return Err(usage()),
            },
            "--root" => match args.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_arg = Some(PathBuf::from(file)),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    opts.baseline = baseline_arg.unwrap_or_else(|| opts.root.join("slint.baseline"));
    Ok(opts)
}

/// Render the lock-acquisition graph in `--graph` form: the class table
/// first (hierarchy order), then every observed `held -> acquired` edge
/// with its provenance.
fn print_graph(graph: &slint::model::LockGraph) {
    println!("lock classes ({}):", graph.classes.len());
    for c in &graph.classes {
        match c.rank {
            Some(r) => println!("  [{r:>3}] {:<28} {}.{}", c.name, c.owner, c.field),
            None => println!("  [  -] {:<28} {}.{}", c.name, c.owner, c.field),
        }
    }
    println!("acquisition edges ({}):", graph.edges.len());
    for e in &graph.edges {
        let from = &graph.classes[e.from];
        let to = &graph.classes[e.to];
        let via = e.via.as_deref().map(|v| format!(" via `{v}`")).unwrap_or_default();
        println!(
            "  {:<28} -> {:<28} {}:{}{via}",
            from.name, to.name, e.file, e.line
        );
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled JSON report (slint is dependency-free by design):
/// `{"findings": [...], "lock_graph": {"classes": [...], "edges": [...]}}`.
fn render_json(findings: &[slint::Finding], graph: &slint::model::LockGraph) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str("\n  ],\n  \"lock_graph\": {\n    \"classes\": [");
    for (i, c) in graph.classes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rank = c.rank.map(|r| r.to_string()).unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "\n      {{\"name\": \"{}\", \"rank\": {rank}, \"owner\": \"{}\", \"field\": \"{}\"}}",
            json_escape(&c.name),
            json_escape(&c.owner),
            json_escape(&c.field)
        ));
    }
    out.push_str("\n    ],\n    \"edges\": [");
    for (i, e) in graph.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let via = e
            .via
            .as_deref()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "\n      {{\"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \"line\": {}, \"via\": {via}}}",
            json_escape(&graph.classes[e.from].name),
            json_escape(&graph.classes[e.to].name),
            json_escape(&e.file),
            e.line
        ));
    }
    out.push_str("\n    ]\n  }\n}\n");
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let findings = match slint::scan_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("slint: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for f in &findings {
            println!("{f}");
        }
        println!("{} finding(s) total", findings.len());
    }

    if opts.graph || opts.json.is_some() {
        let graph = match slint::lock_graph(&opts.root) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("slint: failed to build lock graph: {e}");
                return ExitCode::from(2);
            }
        };
        if opts.graph {
            print_graph(&graph);
        }
        if let Some(path) = &opts.json {
            let text = render_json(&findings, &graph);
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("slint: failed to write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("slint: wrote JSON report to {}", path.display());
        }
    }

    if opts.update {
        let baseline = slint::tally(&findings);
        let text = slint::format_baseline(&baseline);
        if let Err(e) = std::fs::write(&opts.baseline, text) {
            eprintln!("slint: failed to write {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "slint: baseline updated ({} finding(s) across {} (rule, file) pairs)",
            findings.len(),
            baseline.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&opts.baseline) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("slint: failed to read {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
    };
    let baseline = match slint::parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("slint: bad baseline {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
    };

    let report = slint::judge(&findings, &baseline);
    if !report.ok() {
        eprintln!("slint: new violations above baseline:");
        for (rule, file, actual, allowed) in &report.regressions {
            eprintln!("  [{rule}] {file}: {actual} finding(s), baseline allows {allowed}");
            for f in findings.iter().filter(|f| f.rule.code() == rule && &f.file == file) {
                eprintln!("    {}:{}: {}", f.file, f.line, f.message);
            }
        }
        eprintln!(
            "slint: fix the new findings, add a `// slint:allow(<rule>): <reason>` waiver,\n\
             slint: or (for accepted debt) run `cargo run -p slint -- --baseline-update`."
        );
        return ExitCode::FAILURE;
    }

    if !report.improvements.is_empty() {
        println!("slint: baseline is stale (debt was paid down) — ratchet it:");
        for (rule, file, actual, allowed) in &report.improvements {
            println!("  [{rule}] {file}: now {actual}, baseline allows {allowed}");
        }
        println!("slint: run `cargo run -p slint -- --baseline-update` to ratchet.");
    }
    println!(
        "slint: ok — {} finding(s), all within baseline",
        report.total_findings
    );
    ExitCode::SUCCESS
}
