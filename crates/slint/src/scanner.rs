//! Source cleaning for the lint rules.
//!
//! Token rules must not fire on words inside comments or string literals,
//! and waiver/SAFETY detection must look *only* at comments. This module
//! splits each source line into its code text (string-literal contents
//! blanked, comments removed) and its comment text, and marks lines that
//! sit inside `#[cfg(test)]` items via brace-depth tracking.
//!
//! The splitter is a character-level state machine covering line comments,
//! nested block comments, string/byte-string literals, raw strings with
//! arbitrary `#` counts, and char literals (distinguished from lifetimes
//! by lookahead). It is deliberately not a full Rust lexer; it only needs
//! to be right about where comments and literals begin and end.

/// One cleaned source line.
#[derive(Debug, Default)]
pub struct CleanedLine {
    /// Code with comments removed and literal contents blanked. The
    /// literal's delimiting quotes are kept, so `.expect("msg")` cleans
    /// to `.expect("")` and token matching still sees `.expect(`.
    pub code: String,
    /// Concatenated text of every comment on the line.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item.
    pub in_test_code: bool,
}

/// A whole file, cleaned line by line.
#[derive(Debug, Default)]
pub struct CleanedSource {
    /// Lines in file order (index 0 is line 1).
    pub lines: Vec<CleanedLine>,
}

/// Split `source` into per-line code and comment text.
pub fn clean(source: &str) -> CleanedSource {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = vec![CleanedLine::default()];
    let mut i = 0;

    macro_rules! cur {
        () => {
            lines.last_mut().expect("lines is never empty")
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(CleanedLine::default());
            i += 1;
            continue;
        }
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: consume to end of line into comment text.
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    cur!().comment.push(chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, possibly nested and multi-line.
                i += 2;
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    match chars[i] {
                        '\n' => lines.push(CleanedLine::default()),
                        '/' if chars.get(i + 1) == Some(&'*') => {
                            depth += 1;
                            i += 1;
                        }
                        '*' if chars.get(i + 1) == Some(&'/') => {
                            depth -= 1;
                            i += 1;
                        }
                        ch => cur!().comment.push(ch),
                    }
                    i += 1;
                }
            }
            '"' => {
                cur!().code.push('"');
                i += 1;
                i = skip_string_body(&chars, i, &mut lines, 0);
            }
            'r' | 'b' if starts_raw_string(&chars, i) => {
                // r"..", r#".."#, br".." etc.: emit the opener, blank body.
                let mut j = i;
                while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                    cur!().code.push(chars[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    cur!().code.push('#');
                    hashes += 1;
                    j += 1;
                }
                cur!().code.push('"');
                j += 1;
                i = skip_raw_string_body(&chars, j, &mut lines, hashes);
            }
            'b' if chars.get(i + 1) == Some(&'"') => {
                cur!().code.push('b');
                cur!().code.push('"');
                i += 2;
                i = skip_string_body(&chars, i, &mut lines, 0);
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals; 'a in
                // `Foo<'a>` is a lifetime (no closing quote right after).
                let is_char_literal = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(_) => chars.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char_literal {
                    cur!().code.push('\'');
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 1; // skip the backslash
                        i += 1; // and the escaped character
                        // multi-char escapes (\x41, \u{..}) run to the quote
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        cur!().code.push('\'');
                        i += 1;
                    }
                } else {
                    cur!().code.push('\'');
                    i += 1;
                }
            }
            ch => {
                cur!().code.push(ch);
                i += 1;
            }
        }
    }

    mark_test_lines(&mut lines);
    CleanedSource { lines }
}

/// Consume a normal (escaped) string body; returns index after the
/// closing quote. Emits only the closing quote into code.
fn skip_string_body(
    chars: &[char],
    mut i: usize,
    lines: &mut Vec<CleanedLine>,
    _hashes: usize,
) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                lines.push(CleanedLine::default());
                i += 1;
            }
            '"' => {
                if let Some(line) = lines.last_mut() {
                    line.code.push('"');
                }
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consume a raw string body terminated by `"` plus `hashes` `#`s.
fn skip_raw_string_body(
    chars: &[char],
    mut i: usize,
    lines: &mut Vec<CleanedLine>,
    hashes: usize,
) -> usize {
    while i < chars.len() {
        if chars[i] == '\n' {
            lines.push(CleanedLine::default());
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
            if closed {
                if let Some(line) = lines.last_mut() {
                    line.code.push('"');
                    for _ in 0..hashes {
                        line.code.push('#');
                    }
                }
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Whether position `i` starts a raw-string opener (`r"`, `r#`, `br"`,
/// `br#`) and not just an identifier containing `r`/`b`.
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character (e.g. `var"` never
    // happens, but `for r in ..` has r followed by space).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Mark lines inside `#[cfg(test)]` items by tracking brace depth: the
/// attribute arms a pending flag, the next `{` opens the test region,
/// and the matching `}` closes it.
fn mark_test_lines(lines: &mut [CleanedLine]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut test_depth: Option<i64> = None;
    for line in lines.iter_mut() {
        let attr_here = line.code.contains("cfg(test)");
        if attr_here {
            pending = true;
        }
        let mark = test_depth.is_some() || pending;
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                }
                _ => {}
            }
        }
        line.in_test_code = mark || test_depth.is_some();
    }
}
