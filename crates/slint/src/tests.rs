//! Unit tests for every rule, the waiver syntax, and the baseline ratchet.
//!
//! Fixtures are inline source strings scanned under fake workspace paths,
//! so each test controls exactly which rule scopes apply.

use super::*;

fn rules_fired(path: &str, source: &str) -> Vec<Rule> {
    scan_source(path, source).into_iter().map(|f| f.rule).collect()
}

// ---- R1: wall-clock time ------------------------------------------------

#[test]
fn r1_flags_instant_outside_bench() {
    let src = "pub fn now() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(rules_fired("crates/lake/src/x.rs", src), vec![Rule::R1]);
    assert_eq!(rules_fired("src/lib.rs", src), vec![Rule::R1]);
}

#[test]
fn r1_allows_bench_and_duration() {
    let src = "pub fn now() { let _t = std::time::Instant::now(); }\n";
    assert!(rules_fired("crates/bench/benches/x.rs", src).is_empty());
    // Duration is deterministic data, not a clock read.
    let dur = "use std::time::Duration;\npub fn f(_d: Duration) {}\n";
    assert!(rules_fired("crates/lake/src/x.rs", dur).is_empty());
}

#[test]
fn r1_flags_systemtime_via_use_then_call() {
    let src = "use std::time::SystemTime;\npub fn f() -> u64 { let _t = SystemTime::now(); 0 }\n";
    let fired = rules_fired("crates/stream/src/x.rs", src);
    assert!(fired.iter().all(|r| *r == Rule::R1));
    assert_eq!(fired.len(), 2, "the use and the call site both flag");
}

// ---- R2: ambient entropy ------------------------------------------------

#[test]
fn r2_flags_entropy_in_sim_crates_only() {
    let src = "pub fn f() -> u64 { rand::thread_rng().gen() }\n";
    assert_eq!(rules_fired("crates/simdisk/src/x.rs", src), vec![Rule::R2]);
    assert_eq!(rules_fired("crates/workloads/src/gen.rs", src), vec![Rule::R2]);
    // ec is pure math over explicit inputs; out of R2 scope.
    assert!(rules_fired("crates/ec/src/x.rs", src).is_empty());
}

#[test]
fn r2_flags_osrng_and_from_entropy() {
    let src = "use rand::rngs::OsRng;\nlet r = StdRng::from_entropy();\n";
    let fired = rules_fired("crates/plog/src/x.rs", src);
    assert_eq!(fired, vec![Rule::R2, Rule::R2]);
}

// ---- R3: real sleeping / file I/O --------------------------------------

#[test]
fn r3_flags_sleep_and_fs_in_sim_crates() {
    let src = "pub fn f() { std::thread::sleep(d); let _ = std::fs::read(\"x\"); }\n";
    let fired = rules_fired("crates/lakebrain/src/x.rs", src);
    assert_eq!(fired, vec![Rule::R3, Rule::R3]);
}

#[test]
fn r3_exempts_the_kvstore_wal() {
    let src = "pub fn persist() { let _r = std::fs::write(\"wal\", b\"x\"); }\n";
    assert!(rules_fired("crates/kvstore/src/wal.rs", src).is_empty());
    assert_eq!(rules_fired("crates/kvstore/src/store.rs", src), vec![Rule::R3]);
}

// ---- R4: panicking operators in library code ---------------------------

#[test]
fn r4_flags_unwrap_expect_panic_in_lib_code() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    let a = v.unwrap();\n    let b = v.expect(\"x\");\n    if a == b { panic!(\"boom\"); }\n    unreachable!()\n}\n";
    let fired = rules_fired("crates/lake/src/x.rs", src);
    assert_eq!(fired, vec![Rule::R4; 4]);
}

#[test]
fn r4_skips_cfg_test_modules() {
    let src = "pub fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert!(rules_fired("crates/stream/src/x.rs", src).is_empty());
}

#[test]
fn r4_resumes_after_cfg_test_module_closes() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   fn t() { Some(1).unwrap(); }\n\
               }\n\
               pub fn bad() { Some(1).unwrap(); }\n";
    let findings = scan_source("crates/format/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 5);
}

#[test]
fn r4_out_of_scope_crates_are_untouched() {
    let src = "pub fn f() { Some(1).unwrap(); }\n";
    assert!(rules_fired("crates/common/src/x.rs", src).is_empty());
    assert!(rules_fired("crates/ec/src/x.rs", src).is_empty());
}

#[test]
fn r4_ignores_tokens_in_strings_and_comments() {
    let src = "pub fn f() -> String {\n    // the docs say .unwrap() is bad\n    format!(\"never .unwrap() here\")\n}\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

#[test]
fn r4_does_not_match_expect_err() {
    let src = "pub fn f(r: Result<u8, u8>) -> u8 { r.expect_err(\"want err\") }\n";
    // expect_err panics too, but the lint targets the common operators;
    // this test pins the word-boundary behaviour either way.
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

// ---- R5: hash containers in deterministic crates ------------------------

#[test]
fn r5_flags_iterated_hashmap() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u64, u64>) -> u64 {\n\
                   m.values().sum()\n\
               }\n";
    let fired = rules_fired("crates/simdisk/src/x.rs", src);
    assert_eq!(fired, vec![Rule::R5, Rule::R5], "use + type position");
}

#[test]
fn r5_ignores_uniterated_hashmap_and_foreign_crates() {
    // No iteration tokens anywhere in the file: point lookups are fine.
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u64, u64>) -> Option<&u64> { m.get(&1) }\n";
    assert!(rules_fired("crates/simdisk/src/x.rs", src).is_empty());
    // workloads is R2-scoped but not R5-scoped.
    let iterating = "use std::collections::HashMap;\npub fn f(m: &HashMap<u64,u64>) -> u64 { m.values().sum() }\n";
    assert!(rules_fired("crates/workloads/src/x.rs", iterating).is_empty());
}

#[test]
fn r5_skips_test_code() {
    let src = "pub fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   use std::collections::HashMap;\n\
                   fn t(m: &HashMap<u64,u64>) -> u64 { m.values().sum() }\n\
               }\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

// ---- R6: unsafe needs SAFETY --------------------------------------------

#[test]
fn r6_flags_undocumented_unsafe_everywhere() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(rules_fired("crates/ec/src/x.rs", src), vec![Rule::R6]);
    assert_eq!(rules_fired("crates/common/src/x.rs", src), vec![Rule::R6]);
}

#[test]
fn r6_accepts_safety_comment_within_three_lines() {
    let src = "// SAFETY: p is non-null and points into the arena, whose\n\
               // lifetime outlives this call.\n\
               pub fn f(p: *const u8) -> u8 {\n\
                   unsafe { *p }\n\
               }\n";
    assert!(rules_fired("crates/ec/src/x.rs", src).is_empty());
}

#[test]
fn r6_safety_comment_too_far_away_does_not_count() {
    let src = "// SAFETY: stale note\n\nfn a() {}\nfn b() {}\n\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(rules_fired("crates/ec/src/x.rs", src), vec![Rule::R6]);
}

// ---- R7: clock advancement above the device layer ------------------------

#[test]
fn r7_flags_clock_advance_in_upper_layers() {
    let src = "pub fn f(c: &common::SimClock) { c.advance(10); c.advance_to(50); }\n";
    let fired = rules_fired("crates/lake/src/x.rs", src);
    assert_eq!(fired, vec![Rule::R7, Rule::R7]);
    assert_eq!(rules_fired("crates/stream/src/x.rs", src), vec![Rule::R7, Rule::R7]);
}

#[test]
fn r7_exempts_the_clock_owner_and_the_device_layer() {
    let src = "pub fn f(c: &SimClock) { c.advance_to(t); }\n";
    assert!(rules_fired("crates/common/src/clock.rs", src).is_empty());
    assert!(rules_fired("crates/simdisk/src/device.rs", src).is_empty());
    // Root integration tests and examples drive scenarios; out of scope.
    assert!(rules_fired("tests/operations.rs", src).is_empty());
    assert!(rules_fired("examples/quickstart.rs", src).is_empty());
}

#[test]
fn r7_skips_test_code() {
    let src = "pub fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t(c: &common::SimClock) { c.advance(5); }\n\
               }\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

// ---- R8: ad-hoc background-service calls ---------------------------------

#[test]
fn r8_flags_service_entry_points_outside_the_owner_crate() {
    let src = "pub fn f(s: &ScrubService) { let _r = s.run_cycle(&ctx, 4); }\n";
    assert_eq!(rules_fired("crates/core/src/system.rs", src), vec![Rule::R8]);
    // root integration tests are not exempt: they drive deployments and
    // must use the runtime (or carry an explicit waiver).
    assert_eq!(rules_fired("tests/chaos.rs", src), vec![Rule::R8]);
}

#[test]
fn r8_exempts_each_entry_point_in_its_own_crate_only() {
    let scrub = "pub fn f(s: &ScrubService) { let _r = s.run_cycle(&ctx, 4); }\n";
    assert!(rules_fired("crates/plog/src/scrub.rs", scrub).is_empty());
    let tier = "pub fn f(t: &TieringService) { let _r = t.run_policy(); }\n";
    assert!(rules_fired("crates/simdisk/src/tier.rs", tier).is_empty());
    // the exemption is per token, not blanket: plog calling the tiering
    // entry point still flags.
    assert_eq!(rules_fired("crates/plog/src/x.rs", tier), vec![Rule::R8]);
}

#[test]
fn r8_applies_even_inside_test_modules() {
    // Unlike R4/R5/R7, test code is in scope: tests are exactly where
    // ad-hoc service loops accumulate, so they need an explicit waiver.
    let src = "pub fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t(c: &Compactor) { let _ = c.compact_all(&s, &ctx); }\n\
               }\n";
    assert_eq!(rules_fired("crates/stream/src/x.rs", src), vec![Rule::R8]);
}

#[test]
fn r8_waiver_suppresses_with_a_reason() {
    let src = "// slint:allow(R8): this test asserts run-to-convergence semantics directly\n\
               fn t(s: &ScrubService) { let _ = s.run_to_convergence(&ctx, 8); }\n";
    assert!(rules_fired("tests/chaos.rs", src).is_empty());
}

// ---- waivers -------------------------------------------------------------

#[test]
fn waiver_on_same_line_suppresses() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() } // slint:allow(R4): invariant: caller checked is_some\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

#[test]
fn waiver_on_line_above_suppresses() {
    let src = "// slint:allow(R4): the constructor guarantees the key exists\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

#[test]
fn waiver_only_covers_its_rule() {
    let src = "// slint:allow(R1): timing debug\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(rules_fired("crates/lake/src/x.rs", src), vec![Rule::R4]);
}

#[test]
fn waiver_without_reason_is_its_own_finding() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() } // slint:allow(R4)\n";
    let fired = rules_fired("crates/lake/src/x.rs", src);
    // The waiver is rejected (W1) and therefore does not suppress R4.
    assert_eq!(fired, vec![Rule::R4, Rule::W1]);
}

#[test]
fn waiver_with_unknown_rule_is_malformed() {
    let src = "// slint:allow(R99): whatever\npub fn ok() {}\n";
    assert_eq!(rules_fired("crates/lake/src/x.rs", src), vec![Rule::W1]);
}

// ---- scanner edge cases --------------------------------------------------

#[test]
fn scanner_strips_raw_strings_and_block_comments() {
    let src = "pub fn f() -> &'static str {\n\
               /* block comment with .unwrap() and unsafe */\n\
               r#\"raw with .unwrap() and std::time::Instant\"#\n\
               }\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

#[test]
fn scanner_handles_char_literals_and_lifetimes() {
    let src = "pub fn f<'a>(s: &'a str) -> usize {\n\
               let q = '\"';\n\
               s.chars().filter(|&c| c == q).count()\n\
               }\n\
               pub fn g(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let findings = scan_source("crates/lake/src/x.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 5);
}

#[test]
fn word_boundaries_prevent_identifier_false_positives() {
    let src = "struct InstantLike;\nfn do_not_unwrap_me() {}\npub fn f() { do_not_unwrap_me(); }\n";
    assert!(rules_fired("crates/lake/src/x.rs", src).is_empty());
}

// ---- baseline ratchet ----------------------------------------------------

fn finding(rule: Rule, file: &str, line: usize) -> Finding {
    Finding { file: file.to_string(), line, rule, message: "x".into() }
}

#[test]
fn baseline_roundtrips_through_text() {
    let findings = vec![
        finding(Rule::R4, "crates/lake/src/table.rs", 10),
        finding(Rule::R4, "crates/lake/src/table.rs", 20),
        finding(Rule::R1, "src/lib.rs", 3),
    ];
    let baseline = tally(&findings);
    let text = format_baseline(&baseline);
    let parsed = parse_baseline(&text).expect("roundtrip parses");
    assert_eq!(parsed, baseline);
}

#[test]
fn gate_passes_at_or_below_baseline_and_fails_above() {
    let baseline = tally(&[
        finding(Rule::R4, "a.rs", 1),
        finding(Rule::R4, "a.rs", 2),
    ]);
    // Equal: ok.
    let equal = vec![finding(Rule::R4, "a.rs", 1), finding(Rule::R4, "a.rs", 5)];
    assert!(judge(&equal, &baseline).ok());
    // Below: ok, and reported as an improvement to ratchet down.
    let below = vec![finding(Rule::R4, "a.rs", 1)];
    let report = judge(&below, &baseline);
    assert!(report.ok());
    assert_eq!(report.improvements, vec![("R4".into(), "a.rs".into(), 1, 2)]);
    // Above: regression.
    let above = vec![
        finding(Rule::R4, "a.rs", 1),
        finding(Rule::R4, "a.rs", 2),
        finding(Rule::R4, "a.rs", 3),
    ];
    let report = judge(&above, &baseline);
    assert!(!report.ok());
    assert_eq!(report.regressions, vec![("R4".into(), "a.rs".into(), 3, 2)]);
}

#[test]
fn gate_fails_on_new_file_not_in_baseline() {
    let baseline = Baseline::new();
    let report = judge(&[finding(Rule::R2, "crates/simdisk/src/new.rs", 1)], &baseline);
    assert!(!report.ok());
    assert_eq!(report.regressions[0].3, 0, "allowed count defaults to zero");
}

#[test]
fn baseline_rejects_garbage() {
    assert!(parse_baseline("R4 nonsense crates/x.rs").is_err());
    assert!(parse_baseline("R99 1 crates/x.rs").is_err());
    assert!(parse_baseline("R4").is_err());
    // Comments and blanks are fine.
    assert!(parse_baseline("# header\n\nR4 3 crates/x.rs\n").is_ok());
}

#[test]
fn findings_count_multiple_hits_per_line() {
    let src = "pub fn f(a: Option<u8>, b: Option<u8>) -> u8 { a.unwrap() + b.unwrap() }\n";
    let findings = scan_source("crates/lake/src/x.rs", src);
    assert_eq!(findings.len(), 2, "both unwraps on one line count");
    assert_eq!(tally(&findings).values().copied().sum::<usize>(), 2);
}
