//! Synthetic two-lock deadlock: `forward` acquires queue → index while
//! `backward` acquires index → queue. slint R9 must flag the cycle.
//!
//! This file is NOT compiled into any crate (the `fixtures/` directory is
//! excluded from workspace scans); `slint::model` tests scan it under a
//! fake `crates/.../src/` path.

use parking_lot::Mutex;

pub struct LeftHalf {
    queue: Mutex<Vec<u64>>,
}

pub struct RightHalf {
    index: Mutex<Vec<u64>>,
}

pub struct Pair {
    left: LeftHalf,
    right: RightHalf,
}

impl Pair {
    pub fn forward(&self) -> usize {
        let q = self.left.queue.lock();
        let i = self.right.index.lock();
        q.len() + i.len()
    }

    pub fn backward(&self) -> usize {
        let i = self.right.index.lock();
        let q = self.left.queue.lock();
        i.len() + q.len()
    }
}
