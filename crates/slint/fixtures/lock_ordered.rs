//! Same two-lock shape as `lock_cycle.rs`, but every function acquires in
//! the same queue → index order. slint R9 must stay silent: a consistent
//! order is exactly what the hierarchy asks for.

use parking_lot::Mutex;

pub struct LeftHalf {
    queue: Mutex<Vec<u64>>,
}

pub struct RightHalf {
    index: Mutex<Vec<u64>>,
}

pub struct Pair {
    left: LeftHalf,
    right: RightHalf,
}

impl Pair {
    pub fn forward(&self) -> usize {
        let q = self.left.queue.lock();
        let i = self.right.index.lock();
        q.len() + i.len()
    }

    pub fn forward_again(&self) -> usize {
        let q = self.left.queue.lock();
        let i = self.right.index.lock();
        q.len().max(i.len())
    }
}
