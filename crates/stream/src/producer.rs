//! The producer client API (Fig 7).
//!
//! `Producer::send` is compatible in shape with "the open-source de facto
//! standard": messages are keyed, routed to a partition by a pluggable
//! [`Partitioner`] (stable key hash by default), batched per partition, and
//! flushed when the batch fills (or explicitly). Producers
//! are idempotent — every record carries a `(producer_id, sequence)` pair
//! that the stream object uses to drop duplicate retries — and can send
//! within a transaction for exactly-once pipelines.

use crate::object::AppendAck;
use crate::partition::{KeyHashPartitioner, Partitioner};
use crate::record::Record;
use crate::service::StreamService;
use common::ctx::IoCtx;
use common::{Error, Result, TxnId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default records per batch before an automatic flush.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// A producer handle.
#[derive(Debug)]
pub struct Producer {
    svc: Arc<StreamService>,
    pid: u64,
    batch_size: usize,
    partitioner: Arc<dyn Partitioner>,
    batches: BTreeMap<(String, u32), Vec<Record>>,
    seqs: BTreeMap<(String, u32), u64>,
}

impl Producer {
    pub(crate) fn new(svc: Arc<StreamService>, pid: u64) -> Self {
        Producer {
            svc,
            pid,
            batch_size: DEFAULT_BATCH_SIZE,
            partitioner: Arc::new(KeyHashPartitioner),
            batches: BTreeMap::new(),
            seqs: BTreeMap::new(),
        }
    }

    /// This producer's idempotence id.
    pub fn id(&self) -> u64 {
        self.pid
    }

    /// Set the per-partition batch size (1 = unbatched).
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n.max(1);
    }

    /// Replace the record→partition policy (default:
    /// [`KeyHashPartitioner`]). Per-key ordering only survives for
    /// partitioners that are pure functions of the key.
    pub fn set_partitioner(&mut self, partitioner: Arc<dyn Partitioner>) {
        self.partitioner = partitioner;
    }

    /// Send one message. Returns the append ack when this send flushed a
    /// batch, `None` while the message is only buffered.
    pub fn send(
        &mut self,
        topic: &str,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
        ctx: &IoCtx,
    ) -> Result<Option<AppendAck>> {
        self.send_inner(topic, key.into(), value.into(), None, ctx)
    }

    /// Send one message inside transaction `txn` (invisible to committed
    /// readers until the coordinator commits).
    pub fn send_in_txn(
        &mut self,
        txn: TxnId,
        topic: &str,
        key: impl Into<Vec<u8>>,
        value: impl Into<Vec<u8>>,
        ctx: &IoCtx,
    ) -> Result<Option<AppendAck>> {
        self.send_inner(topic, key.into(), value.into(), Some(txn), ctx)
    }

    fn send_inner(
        &mut self,
        topic: &str,
        key: Vec<u8>,
        value: Vec<u8>,
        txn: Option<TxnId>,
        ctx: &IoCtx,
    ) -> Result<Option<AppendAck>> {
        let partition_count = self.svc.dispatcher().partition_count(topic)?;
        let idx = self.partitioner.partition(topic, &key, partition_count);
        if idx >= partition_count {
            return Err(Error::InvalidArgument(format!(
                "partitioner returned {idx} for a {partition_count}-partition topic"
            )));
        }
        let route = self.svc.dispatcher().route_partition(topic, idx)?;
        let slot = (topic.to_string(), route.partition_idx);
        let seq = self.seqs.entry(slot.clone()).or_insert(0);
        *seq += 1;
        let mut record = Record::new(key, value, (ctx.now / 1_000_000) as i64);
        record.producer_seq = Some((self.pid, *seq));
        record.txn = txn.map(|t| t.raw());
        let batch = self.batches.entry(slot.clone()).or_default();
        batch.push(record);
        if batch.len() >= self.batch_size {
            let records = std::mem::take(batch);
            let ack = self.svc.produce_to(topic, &route, &records, ctx)?;
            return Ok(Some(ack));
        }
        Ok(None)
    }

    /// Flush all buffered batches; returns one ack per flushed stream.
    pub fn flush(&mut self, ctx: &IoCtx) -> Result<Vec<AppendAck>> {
        let mut acks = Vec::new();
        let slots: Vec<(String, u32)> = self
            .batches
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        for slot in slots {
            let Some(batch) = self.batches.get_mut(&slot) else {
                continue;
            };
            let records = std::mem::take(batch);
            // Re-resolve the route: the partition may have moved workers.
            let route = self.svc.dispatcher().route_partition(&slot.0, slot.1)?;
            acks.push(self.svc.produce_to(&slot.0, &route, &records, ctx)?);
        }
        Ok(acks)
    }

    /// Buffered (unflushed) record count.
    pub fn pending(&self) -> usize {
        self.batches.values().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TopicConfig;
    use crate::object::ReadCtrl;
    use crate::service::tests::test_service;
    use common::ctx::IoCtx;

    #[test]
    fn batching_flushes_at_threshold() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(1)).unwrap();
        let mut p = svc.producer();
        p.set_batch_size(4);
        for i in 0..3 {
            assert!(p.send("t", b"k".to_vec(), format!("m{i}").into_bytes(), &IoCtx::new(0)).unwrap().is_none());
        }
        assert_eq!(p.pending(), 3);
        let ack = p.send("t", b"k".to_vec(), b"m3".to_vec(), &IoCtx::new(0)).unwrap();
        assert!(ack.is_some(), "4th message must flush the batch");
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn explicit_flush_delivers_partial_batches() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(2)).unwrap();
        let mut p = svc.producer();
        p.set_batch_size(100);
        for i in 0..10 {
            p.send("t", format!("key-{i}").into_bytes(), b"v".to_vec(), &IoCtx::new(0)).unwrap();
        }
        let acks = p.flush(&IoCtx::new(0)).unwrap();
        assert!(!acks.is_empty());
        assert_eq!(p.pending(), 0);
        // Every message is readable afterwards.
        let mut total = 0;
        for route in svc.dispatcher().topic_partitions("t").unwrap() {
            svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();
            let (got, _) = svc.fetch_from(&route, 0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
            total += got.len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn custom_partitioner_overrides_key_hash() {
        use crate::partition::RoundRobinPartitioner;
        use std::sync::Arc;
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_partitions(4)).unwrap();
        let mut p = svc.producer();
        p.set_batch_size(1);
        p.set_partitioner(Arc::new(RoundRobinPartitioner::default()));
        // Same key every time, yet records walk all four partitions.
        for _ in 0..4 {
            p.send("t", b"same".to_vec(), b"v".to_vec(), &IoCtx::new(0)).unwrap();
        }
        let mut non_empty = 0;
        for route in svc.dispatcher().topic_partitions("t").unwrap() {
            let obj = svc.dispatcher().object_of(&route).unwrap();
            obj.flush_at(&IoCtx::new(0)).unwrap();
            let (got, _) = svc.fetch_from(&route, 0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
            non_empty += usize::from(!got.is_empty());
        }
        assert_eq!(non_empty, 4, "round-robin must touch every partition");
    }

    #[test]
    fn producer_ids_are_distinct() {
        let svc = test_service(1, false);
        let a = svc.producer();
        let b = svc.producer();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn records_carry_monotonic_sequences() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(1)).unwrap();
        let mut p = svc.producer();
        p.set_batch_size(1);
        for _ in 0..5 {
            p.send("t", b"k".to_vec(), b"v".to_vec(), &IoCtx::new(0)).unwrap();
        }
        let route = svc.dispatcher().route("t", b"k").unwrap();
        let obj = svc.dispatcher().object_of(&route).unwrap();
        obj.flush_at(&IoCtx::new(0)).unwrap();
        let (got, _) = obj.read_at(0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|(_, r)| r.producer_seq.unwrap().1).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }
}
