//! Partitions: the unit of parallelism in the stream layer.
//!
//! A topic is a set of numbered **partitions**; each partition is one
//! ordered log backed by a stream object pinned to one PLog shard
//! (`plog::placement::shard_for_partition`). Producers pick a partition per
//! record through a [`Partitioner`]; consumer groups assign partitions to
//! members ([`crate::group`]); quotas, offsets and positions are all keyed
//! by [`Partition`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fully-qualified partition: `(topic, partition_idx)`.
///
/// The ordering (topic first, then index) is what every deterministic
/// iteration in the stream layer — assignment, quota tables, consumer
/// positions, the rebalance journal — relies on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Partition {
    /// Topic name.
    pub topic: String,
    /// Partition index within the topic.
    pub idx: u32,
}

impl Partition {
    /// The partition `idx` of `topic`.
    pub fn new(topic: impl Into<String>, idx: u32) -> Self {
        Partition { topic: topic.into(), idx }
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.topic, self.idx)
    }
}

/// The stable 64-bit key hash every built-in placement decision uses
/// (FNV-1a, shared with PLog shard placement so one hash function governs
/// the whole path from record key to shard).
pub fn stable_key_hash(key: &[u8]) -> u64 {
    plog::placement::fnv1a(key)
}

/// The partition of a `partition_count`-partition topic that owns `key`
/// under the default key-hash policy. Every key — including the empty one —
/// maps deterministically, keeping routing replayable in the simulation.
pub fn partition_for_key(key: &[u8], partition_count: u32) -> u32 {
    debug_assert!(partition_count > 0);
    (stable_key_hash(key) % partition_count as u64) as u32
}

/// Pluggable record→partition policy, the producer-side extension point.
///
/// Contract: given the same `(topic, key, partition_count)` a partitioner
/// may consult only its own state — never wall-clock time or unseeded
/// randomness — and must return an index in `0..partition_count`. Per-key
/// ordering guarantees only hold for partitioners that are pure functions
/// of the key (like [`KeyHashPartitioner`]); stateful spreaders such as
/// [`RoundRobinPartitioner`] trade that for balance.
pub trait Partitioner: fmt::Debug + Send + Sync {
    /// The partition of `topic` that should receive a record with `key`.
    fn partition(&self, topic: &str, key: &[u8], partition_count: u32) -> u32;
}

/// The default policy: stable FNV-1a key hashing, so one key always maps
/// to one partition and per-key order is preserved end to end.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyHashPartitioner;

impl Partitioner for KeyHashPartitioner {
    fn partition(&self, _topic: &str, key: &[u8], partition_count: u32) -> u32 {
        partition_for_key(key, partition_count)
    }
}

/// A key-oblivious spreader: successive sends from one producer walk the
/// partitions round-robin. Deterministic per handle (a plain counter), but
/// per-key ordering is intentionally given up for perfect balance.
#[derive(Debug, Default)]
pub struct RoundRobinPartitioner {
    next: AtomicU64,
}

impl Partitioner for RoundRobinPartitioner {
    fn partition(&self, _topic: &str, _key: &[u8], partition_count: u32) -> u32 {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        (n % partition_count as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ordering_is_topic_then_index() {
        let mut v = vec![
            Partition::new("b", 0),
            Partition::new("a", 2),
            Partition::new("a", 0),
            Partition::new("b", 1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Partition::new("a", 0),
                Partition::new("a", 2),
                Partition::new("b", 0),
                Partition::new("b", 1),
            ]
        );
    }

    #[test]
    fn key_hash_partitioner_is_stable_and_in_range() {
        let p = KeyHashPartitioner;
        for n in [1u32, 2, 7, 256] {
            for i in 0..200 {
                let key = format!("user-{i}");
                let a = p.partition("t", key.as_bytes(), n);
                assert_eq!(a, p.partition("t", key.as_bytes(), n));
                assert!(a < n);
            }
        }
        // Matches the stable hash directly (the documented contract).
        assert_eq!(p.partition("t", b"k", 16), partition_for_key(b"k", 16));
        // Empty keys are legal and deterministic too.
        assert_eq!(partition_for_key(b"", 16), partition_for_key(b"", 16));
    }

    #[test]
    fn round_robin_walks_all_partitions() {
        let p = RoundRobinPartitioner::default();
        let got: Vec<u32> = (0..8).map(|_| p.partition("t", b"same-key", 4)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
