//! The stream service facade.
//!
//! Wires the dispatcher, workers, stream objects, quotas and the
//! transaction manager into the surface producers and consumers talk to
//! (Fig 6: producers → stream workers → stream objects, coordinated by the
//! stream dispatcher).

use crate::config::TopicConfig;
use crate::consumer::Consumer;
use crate::dispatcher::{RescaleReport, StreamDispatcher, StreamRoute};
use crate::object::{AppendAck, ReadCtrl, StreamObjectStore};
use crate::producer::Producer;
use crate::quota::QuotaLimiter;
use crate::record::Record;
use crate::txn::TxnManager;
use crate::worker::StreamWorker;
use common::clock::Nanos;
use common::ctx::IoCtx;
use common::id::IdGen;
use common::metrics::Metrics;
use common::{Error, Result, SimClock, WorkerId};
use plog::PlogStore;
use simdisk::{Bus, Transport};
use std::collections::HashMap;
use std::sync::Arc;
use common::lockwitness::{TrackedMutex, TrackedRwLock};

/// Construction options for [`StreamService`].
#[derive(Debug, Clone)]
pub struct StreamServiceOptions {
    /// Initial number of stream workers.
    pub workers: usize,
    /// Per-worker consumption-cache bytes.
    pub worker_cache_bytes: u64,
    /// SCM staging capacity shared by scm-enabled topics (0 disables).
    pub scm_capacity: u64,
    /// Bus transport between workers and stream objects.
    pub transport: Transport,
}

impl Default for StreamServiceOptions {
    fn default() -> Self {
        StreamServiceOptions {
            workers: 3,
            worker_cache_bytes: 4 * 1024 * 1024,
            scm_capacity: 0,
            transport: Transport::Rdma,
        }
    }
}

/// The message streaming service.
#[derive(Debug)]
pub struct StreamService {
    clock: SimClock,
    objects: Arc<StreamObjectStore>,
    dispatcher: Arc<StreamDispatcher>,
    workers: TrackedRwLock<HashMap<WorkerId, Arc<StreamWorker>>>,
    quotas: TrackedMutex<HashMap<(String, u32), QuotaLimiter>>,
    txns: TxnManager,
    bus: Arc<Bus>,
    producer_ids: IdGen,
    metrics: Metrics,
    next_worker_id: TrackedMutex<u64>,
}

impl StreamService {
    /// Build a service over an existing PLog store.
    pub fn new(plog: Arc<PlogStore>, clock: SimClock, opts: StreamServiceOptions) -> Arc<Self> {
        let objects = Arc::new(StreamObjectStore::new(
            plog,
            opts.scm_capacity,
            clock.clone(),
        ));
        let dispatcher = Arc::new(StreamDispatcher::new(objects.clone()));
        let bus = Arc::new(Bus::new(opts.transport, clock.clone()));
        let svc = Arc::new(StreamService {
            clock,
            objects,
            dispatcher,
            workers: TrackedRwLock::new("stream.service.workers", HashMap::new()),
            quotas: TrackedMutex::new("stream.service.quotas", HashMap::new()),
            txns: TxnManager::new(),
            bus,
            producer_ids: IdGen::new(),
            metrics: Metrics::new(),
            next_worker_id: TrackedMutex::new("stream.service.worker_ids", 0),
        });
        for _ in 0..opts.workers.max(1) {
            svc.add_worker(opts.worker_cache_bytes);
        }
        svc
    }

    /// The virtual clock shared with the storage substrate.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The dispatcher (topology inspection, offsets).
    pub fn dispatcher(&self) -> &Arc<StreamDispatcher> {
        &self.dispatcher
    }

    /// The stream object store.
    pub fn objects(&self) -> &Arc<StreamObjectStore> {
        &self.objects
    }

    /// The transaction coordinator.
    pub fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// Service metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Add a stream worker; returns its id. Rescaling is metadata-only.
    pub fn add_worker(&self, cache_bytes: u64) -> WorkerId {
        let mut next = self.next_worker_id.lock();
        let id = WorkerId(*next);
        *next += 1;
        let worker = Arc::new(StreamWorker::new(id, self.bus.clone(), cache_bytes));
        self.workers.write().insert(id, worker);
        self.dispatcher.register_worker(id);
        id
    }

    /// Remove a worker, reassigning its streams.
    pub fn remove_worker(&self, id: WorkerId, ctx: &IoCtx) -> Result<RescaleReport> {
        let report = self.dispatcher.deregister_worker(id, ctx)?;
        self.workers.write().remove(&id);
        Ok(report)
    }

    /// Number of live workers.
    pub fn worker_count(&self) -> usize {
        self.workers.read().len()
    }

    /// Create a topic.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<RescaleReport> {
        let quota = config.quota;
        let report = self.dispatcher.create_topic(name, config, &IoCtx::new(self.clock.now()))?;
        let mut quotas = self.quotas.lock();
        for route in self.dispatcher.topic_routes(name)? {
            quotas.insert((name.to_string(), route.stream_idx), QuotaLimiter::new(quota));
        }
        Ok(report)
    }

    /// Scale a topic to more streams (Fig 14(c)).
    pub fn scale_topic(&self, name: &str, streams: u32, ctx: &IoCtx) -> Result<RescaleReport> {
        let report = self.dispatcher.scale_topic(name, streams, ctx)?;
        let quota = self.dispatcher.topic_config(name)?.quota;
        let mut quotas = self.quotas.lock();
        for route in self.dispatcher.topic_routes(name)? {
            quotas
                .entry((name.to_string(), route.stream_idx))
                .or_insert_with(|| QuotaLimiter::new(quota));
        }
        Ok(report)
    }

    /// A new producer handle.
    pub fn producer(self: &Arc<Self>) -> Producer {
        Producer::new(self.clone(), self.producer_ids.next())
    }

    /// A new consumer handle in `group`.
    pub fn consumer(self: &Arc<Self>, group: &str) -> Consumer {
        Consumer::new(self.clone(), group)
    }

    /// Internal produce path: quota → worker → stream object.
    pub(crate) fn produce_to(
        &self,
        topic: &str,
        route: &StreamRoute,
        records: &[Record],
        ctx: &IoCtx,
    ) -> Result<AppendAck> {
        {
            let mut quotas = self.quotas.lock();
            if let Some(q) = quotas.get_mut(&(topic.to_string(), route.stream_idx)) {
                q.try_acquire(records.len() as u64, ctx)?;
            }
        }
        let worker = self.worker_for(route)?;
        let object = self.dispatcher.object_of(route)?;
        let ack = worker.produce(&object, records, ctx)?;
        // Register transactional participants with the coordinator.
        for r in records {
            if let Some(t) = r.txn {
                self.txns
                    .register_participant(common::TxnId(t), object.clone())?;
            }
        }
        self.metrics.incr("produce.records", records.len() as u64);
        self.metrics
            .observe("produce.latency_ns", ack.ack_time.saturating_sub(ctx.now));
        Ok(ack)
    }

    /// Internal fetch path through the owning worker.
    pub(crate) fn fetch_from(
        &self,
        route: &StreamRoute,
        offset: u64,
        ctrl: ReadCtrl,
        ctx: &IoCtx,
    ) -> Result<(Vec<(u64, Record)>, Nanos)> {
        let worker = self.worker_for(route)?;
        let object = self.dispatcher.object_of(route)?;
        let out = worker.fetch(&object, offset, ctrl, ctx)?;
        self.metrics.incr("fetch.records", out.0.len() as u64);
        Ok(out)
    }

    fn worker_for(&self, route: &StreamRoute) -> Result<Arc<StreamWorker>> {
        self.workers
            .read()
            .get(&route.worker)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("stream worker {}", route.worker)))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use common::size::MIB;
    use ec::Redundancy;
    use plog::PlogConfig;
    use simdisk::{MediaKind, StoragePool};

    pub(crate) fn test_service(workers: usize, scm: bool) -> Arc<StreamService> {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            6,
            512 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 64,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 256 * MIB,
                },
            )
            .unwrap(),
        );
        StreamService::new(
            plog,
            clock,
            StreamServiceOptions {
                workers,
                scm_capacity: if scm { 16 * MIB } else { 0 },
                ..Default::default()
            },
        )
    }

    #[test]
    fn topic_creation_and_worker_scaling() {
        let svc = test_service(2, false);
        assert_eq!(svc.worker_count(), 2);
        svc.create_topic("t", TopicConfig::with_streams(4)).unwrap();
        let id = svc.add_worker(MIB);
        assert_eq!(svc.worker_count(), 3);
        let report = svc.remove_worker(id, &IoCtx::new(0)).unwrap();
        assert_eq!(report.bytes_migrated, 0);
        assert_eq!(svc.worker_count(), 2);
    }

    #[test]
    fn quota_rejects_overload() {
        let svc = test_service(1, false);
        let mut cfg = TopicConfig::with_streams(1);
        cfg.quota = 10; // 10 msgs/sec
        svc.create_topic("slow", cfg).unwrap();
        let route = svc.dispatcher().route("slow", b"k").unwrap();
        let records: Vec<Record> =
            (0..10).map(|i| Record::new(b"k".to_vec(), b"v".to_vec(), i)).collect();
        svc.produce_to("slow", &route, &records, &IoCtx::new(0)).unwrap();
        let err = svc.produce_to("slow", &route, &records[..1], &IoCtx::new(0));
        assert!(matches!(err, Err(Error::QuotaExceeded(_))));
    }

    #[test]
    fn produce_fetch_roundtrip_through_service() {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_streams(2)).unwrap();
        let route = svc.dispatcher().route("t", b"key-1").unwrap();
        let records: Vec<Record> =
            (0..5).map(|i| Record::new(b"key-1".to_vec(), format!("m{i}").into_bytes(), i)).collect();
        let ack = svc.produce_to("t", &route, &records, &IoCtx::new(0)).unwrap();
        assert_eq!(ack.base_offset, Some(0));
        // flush the open slice so a fresh read sees everything
        svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();
        let (got, _) = svc.fetch_from(&route, 0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(svc.metrics().counter("produce.records"), 5);
    }
}
