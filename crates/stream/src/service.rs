//! The stream service facade.
//!
//! Wires the dispatcher, workers, stream objects, per-partition quotas,
//! the consumer-group coordinator and the transaction manager into the
//! surface producers and consumers talk to (Fig 6: producers → stream
//! workers → stream objects, coordinated by the stream dispatcher).

use crate::config::TopicConfig;
use crate::consumer::Consumer;
use crate::dispatcher::{PartitionRoute, RescaleReport, StreamDispatcher};
use crate::group::{GroupConfig, GroupCoordinator};
use crate::object::{AppendAck, ReadCtrl, StreamObjectStore};
use crate::partition::Partition;
use crate::producer::Producer;
use crate::quota::QuotaLimiter;
use crate::record::Record;
use crate::txn::TxnManager;
use crate::worker::StreamWorker;
use common::clock::Nanos;
use common::ctx::IoCtx;
use common::id::IdGen;
use common::metrics::Metrics;
use common::{Error, Result, SimClock, WorkerId};
use kvstore::MvccStore;
use plog::{GroupCommitConfig, GroupCommitter, PlogStore};
use simdisk::{Bus, Transport};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use common::lockwitness::{TrackedMutex, TrackedRwLock};

/// Construction options for [`StreamService`].
#[derive(Debug, Clone)]
pub struct StreamServiceOptions {
    /// Initial number of stream workers.
    pub workers: usize,
    /// Per-worker consumption-cache bytes.
    pub worker_cache_bytes: u64,
    /// SCM staging capacity shared by scm-enabled topics (0 disables).
    pub scm_capacity: u64,
    /// Bus transport between workers and stream objects.
    pub transport: Transport,
    /// Consumer-group coordination (session timeout, assignment strategy,
    /// offset retention).
    pub group: GroupConfig,
    /// MVCC store backing transaction records. `None` gives the service a
    /// private store; pass a shared one to let stream transactions commit
    /// atomically with other subsystems (e.g. lake table commits).
    pub txn_mvcc: Option<Arc<MvccStore>>,
}

impl Default for StreamServiceOptions {
    fn default() -> Self {
        StreamServiceOptions {
            workers: 3,
            worker_cache_bytes: 4 * 1024 * 1024,
            scm_capacity: 0,
            transport: Transport::Rdma,
            group: GroupConfig::default(),
            txn_mvcc: None,
        }
    }
}

/// The message streaming service.
#[derive(Debug)]
pub struct StreamService {
    clock: SimClock,
    objects: Arc<StreamObjectStore>,
    dispatcher: Arc<StreamDispatcher>,
    groups: Arc<GroupCoordinator>,
    workers: TrackedRwLock<HashMap<WorkerId, Arc<StreamWorker>>>,
    quotas: TrackedMutex<BTreeMap<Partition, QuotaLimiter>>,
    txns: TxnManager,
    bus: Arc<Bus>,
    producer_ids: IdGen,
    consumer_ids: IdGen,
    metrics: Metrics,
    next_worker_id: TrackedMutex<u64>,
}

impl StreamService {
    /// Build a service over an existing PLog store.
    pub fn new(plog: Arc<PlogStore>, clock: SimClock, opts: StreamServiceOptions) -> Arc<Self> {
        let metrics = Metrics::new();
        let committer = Arc::new(GroupCommitter::new(
            plog.clone(),
            GroupCommitConfig::default(),
        ));
        let objects = Arc::new(
            StreamObjectStore::new(plog, opts.scm_capacity, clock.clone())
                .with_committer(committer)
                .with_metrics(metrics.clone()),
        );
        let dispatcher = Arc::new(StreamDispatcher::with_metrics(
            objects.clone(),
            metrics.clone(),
        ));
        let groups = Arc::new(GroupCoordinator::new(
            dispatcher.clone(),
            metrics.clone(),
            opts.group,
        ));
        let bus = Arc::new(Bus::new(opts.transport, clock.clone()));
        let svc = Arc::new(StreamService {
            clock,
            objects,
            dispatcher,
            groups,
            workers: TrackedRwLock::new("stream.service.workers", HashMap::new()),
            quotas: TrackedMutex::new("stream.service.quotas", BTreeMap::new()),
            txns: opts
                .txn_mvcc
                .map(TxnManager::with_mvcc)
                .unwrap_or_default(),
            bus,
            producer_ids: IdGen::new(),
            consumer_ids: IdGen::new(),
            metrics,
            next_worker_id: TrackedMutex::new("stream.service.worker_ids", 0),
        });
        for _ in 0..opts.workers.max(1) {
            svc.add_worker(opts.worker_cache_bytes);
        }
        svc
    }

    /// The virtual clock shared with the storage substrate.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The dispatcher (topology inspection, offsets).
    pub fn dispatcher(&self) -> &Arc<StreamDispatcher> {
        &self.dispatcher
    }

    /// The consumer-group coordinator.
    pub fn groups(&self) -> &Arc<GroupCoordinator> {
        &self.groups
    }

    /// The stream object store.
    pub fn objects(&self) -> &Arc<StreamObjectStore> {
        &self.objects
    }

    /// The transaction coordinator.
    pub fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// Service metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Add a stream worker; returns its id. Rescaling is metadata-only.
    pub fn add_worker(&self, cache_bytes: u64) -> WorkerId {
        let mut next = self.next_worker_id.lock();
        let id = WorkerId(*next);
        *next += 1;
        let worker = Arc::new(StreamWorker::new(id, self.bus.clone(), cache_bytes));
        self.workers.write().insert(id, worker);
        self.dispatcher.register_worker(id);
        id
    }

    /// Remove a worker, reassigning its partitions.
    pub fn remove_worker(&self, id: WorkerId, ctx: &IoCtx) -> Result<RescaleReport> {
        let report = self.dispatcher.deregister_worker(id, ctx)?;
        self.workers.write().remove(&id);
        Ok(report)
    }

    /// Number of live workers.
    pub fn worker_count(&self) -> usize {
        self.workers.read().len()
    }

    /// Create a topic; every partition gets its own quota bucket.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<RescaleReport> {
        let quota = config.quota;
        let report = self.dispatcher.create_topic(name, config, &IoCtx::new(self.clock.now()))?;
        let mut quotas = self.quotas.lock();
        for route in self.dispatcher.topic_partitions(name)? {
            quotas.insert(
                Partition::new(name, route.partition_idx),
                QuotaLimiter::new(quota),
            );
        }
        Ok(report)
    }

    /// Scale a topic to more partitions (Fig 14(c)); new partitions get
    /// fresh quota buckets, existing ones keep their fill level.
    pub fn scale_topic(&self, name: &str, partitions: u32, ctx: &IoCtx) -> Result<RescaleReport> {
        let report = self.dispatcher.scale_topic(name, partitions, ctx)?;
        let quota = self.dispatcher.topic_config(name)?.quota;
        let mut quotas = self.quotas.lock();
        for route in self.dispatcher.topic_partitions(name)? {
            quotas
                .entry(Partition::new(name, route.partition_idx))
                .or_insert_with(|| QuotaLimiter::new(quota));
        }
        Ok(report)
    }

    /// A new producer handle.
    pub fn producer(self: &Arc<Self>) -> Producer {
        Producer::new(self.clone(), self.producer_ids.next())
    }

    /// A new consumer handle — a fresh member of `group`.
    pub fn consumer(self: &Arc<Self>, group: &str) -> Consumer {
        let member = format!("m{}", self.consumer_ids.next());
        Consumer::new(self.clone(), group, member)
    }

    /// Internal produce path: per-partition quota → worker → stream object.
    pub(crate) fn produce_to(
        &self,
        topic: &str,
        route: &PartitionRoute,
        records: &[Record],
        ctx: &IoCtx,
    ) -> Result<AppendAck> {
        {
            let mut quotas = self.quotas.lock();
            if let Some(q) = quotas.get_mut(&Partition::new(topic, route.partition_idx)) {
                q.try_acquire(records.len() as u64, ctx)?;
            }
        }
        let worker = self.worker_for(route)?;
        let object = self.dispatcher.object_of(route)?;
        let ack = worker.produce(&object, records, ctx)?;
        // Register transactional participants with the coordinator.
        for r in records {
            if let Some(t) = r.txn {
                self.txns
                    .register_participant(common::TxnId(t), object.clone())?;
            }
        }
        self.metrics.incr("produce.records", records.len() as u64);
        self.metrics
            .observe("produce.latency_ns", ack.ack_time.saturating_sub(ctx.now));
        Ok(ack)
    }

    /// Internal fetch path through the owning worker.
    pub(crate) fn fetch_from(
        &self,
        route: &PartitionRoute,
        offset: u64,
        ctrl: ReadCtrl,
        ctx: &IoCtx,
    ) -> Result<(Vec<(u64, Record)>, Nanos)> {
        let worker = self.worker_for(route)?;
        let object = self.dispatcher.object_of(route)?;
        let out = worker.fetch(&object, offset, ctrl, ctx)?;
        self.metrics.incr("fetch.records", out.0.len() as u64);
        Ok(out)
    }

    fn worker_for(&self, route: &PartitionRoute) -> Result<Arc<StreamWorker>> {
        self.workers
            .read()
            .get(&route.worker)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("stream worker {}", route.worker)))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use common::size::MIB;
    use ec::Redundancy;
    use plog::PlogConfig;
    use simdisk::{MediaKind, StoragePool};

    pub(crate) fn test_service(workers: usize, scm: bool) -> Arc<StreamService> {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            6,
            512 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 64,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 256 * MIB,
                },
            )
            .unwrap(),
        );
        StreamService::new(
            plog,
            clock,
            StreamServiceOptions {
                workers,
                scm_capacity: if scm { 16 * MIB } else { 0 },
                ..Default::default()
            },
        )
    }

    #[test]
    fn topic_creation_and_worker_scaling() {
        let svc = test_service(2, false);
        assert_eq!(svc.worker_count(), 2);
        svc.create_topic("t", TopicConfig::with_partitions(4)).unwrap();
        let id = svc.add_worker(MIB);
        assert_eq!(svc.worker_count(), 3);
        let report = svc.remove_worker(id, &IoCtx::new(0)).unwrap();
        assert_eq!(report.bytes_migrated, 0);
        assert_eq!(svc.worker_count(), 2);
    }

    #[test]
    fn quota_rejects_overload() {
        let svc = test_service(1, false);
        let mut cfg = TopicConfig::with_partitions(1);
        cfg.quota = 10; // 10 msgs/sec
        svc.create_topic("slow", cfg).unwrap();
        let route = svc.dispatcher().route("slow", b"k").unwrap();
        let records: Vec<Record> =
            (0..10).map(|i| Record::new(b"k".to_vec(), b"v".to_vec(), i)).collect();
        svc.produce_to("slow", &route, &records, &IoCtx::new(0)).unwrap();
        let err = svc.produce_to("slow", &route, &records[..1], &IoCtx::new(0));
        assert!(matches!(err, Err(Error::QuotaExceeded(_))));
    }

    #[test]
    fn quotas_are_per_partition_not_per_topic() {
        let svc = test_service(2, false);
        let mut cfg = TopicConfig::with_partitions(2);
        cfg.quota = 10;
        svc.create_topic("t", cfg).unwrap();
        let records: Vec<Record> =
            (0..10).map(|i| Record::new(b"k".to_vec(), b"v".to_vec(), i)).collect();
        let r0 = svc.dispatcher().route_partition("t", 0).unwrap();
        let r1 = svc.dispatcher().route_partition("t", 1).unwrap();
        // Draining partition 0's bucket must not starve partition 1.
        svc.produce_to("t", &r0, &records, &IoCtx::new(0)).unwrap();
        assert!(svc.produce_to("t", &r0, &records[..1], &IoCtx::new(0)).is_err());
        svc.produce_to("t", &r1, &records, &IoCtx::new(0)).unwrap();
    }

    #[test]
    fn produce_fetch_roundtrip_through_service() {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_partitions(2)).unwrap();
        let route = svc.dispatcher().route("t", b"key-1").unwrap();
        let records: Vec<Record> =
            (0..5).map(|i| Record::new(b"key-1".to_vec(), format!("m{i}").into_bytes(), i)).collect();
        let ack = svc.produce_to("t", &route, &records, &IoCtx::new(0)).unwrap();
        assert_eq!(ack.base_offset, Some(0));
        // flush the open slice so a fresh read sees everything
        svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();
        let (got, _) = svc.fetch_from(&route, 0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(svc.metrics().counter("produce.records"), 5);
    }
}
