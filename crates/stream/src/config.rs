//! Per-topic configuration.
//!
//! The dispatcher "sets configurations for the messaging service in the
//! unit of the topic" (§V-A); Fig 8 shows the JSON document. This module
//! mirrors that document exactly, including the `convert_2_table` and
//! `archive` sub-objects, and parses the paper's own example verbatim.

use serde::{Deserialize, Serialize};

/// Configuration of the automatic stream→table conversion (Fig 8,
/// `convert_2_table`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvertToTable {
    /// Columns of the target table, as `name:type` strings (the paper's
    /// `table_schema` object, flattened).
    #[serde(default)]
    pub table_schema: Vec<String>,
    /// Table-object directory path for the converted records.
    #[serde(default)]
    pub table_path: String,
    /// Convert after this many accumulated messages (paper: 10^7).
    #[serde(default = "default_split_offset")]
    pub split_offset: u64,
    /// Convert after this many seconds (paper: 36000).
    #[serde(default = "default_split_time")]
    pub split_time: u64,
    /// Whether converted messages are removed from the stream object.
    #[serde(default)]
    pub delete_msg: bool,
    /// Whether conversion is active.
    #[serde(default)]
    pub enabled: bool,
}

fn default_split_offset() -> u64 {
    10_000_000
}
fn default_split_time() -> u64 {
    36_000
}

impl Default for ConvertToTable {
    fn default() -> Self {
        ConvertToTable {
            table_schema: Vec::new(),
            table_path: String::new(),
            split_offset: default_split_offset(),
            split_time: default_split_time(),
            delete_msg: false,
            enabled: false,
        }
    }
}

/// Configuration of historical-data archiving (Fig 8, `archive`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveConfig {
    /// External archive target, or `None` for the built-in archive pool.
    #[serde(default)]
    pub external_archive_url: Option<String>,
    /// Data volume in MB that triggers archiving (paper example: 262144).
    #[serde(default = "default_archive_size")]
    pub archive_size: u64,
    /// Whether archived data is converted to columnar format.
    #[serde(default)]
    pub row_2_col: bool,
    /// Whether archiving is active.
    #[serde(default)]
    pub enabled: bool,
}

fn default_archive_size() -> u64 {
    262_144
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            external_archive_url: None,
            archive_size: default_archive_size(),
            row_2_col: false,
            enabled: false,
        }
    }
}

/// Full topic configuration (Fig 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicConfig {
    /// Parallelism of the topic: number of streams.
    pub stream_num: u32,
    /// Maximum messages per second per stream (paper example: 10^6).
    #[serde(default = "default_quota")]
    pub quota: u64,
    /// Whether the SCM cache is enabled for this topic.
    #[serde(default)]
    pub scm_cache: bool,
    /// Stream→table conversion settings.
    #[serde(default)]
    pub convert_2_table: ConvertToTable,
    /// Archiving settings.
    #[serde(default)]
    pub archive: ArchiveConfig,
}

fn default_quota() -> u64 {
    1_000_000
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            stream_num: 1,
            quota: default_quota(),
            scm_cache: false,
            convert_2_table: ConvertToTable::default(),
            archive: ArchiveConfig::default(),
        }
    }
}

impl TopicConfig {
    /// A topic with `stream_num` streams and defaults elsewhere.
    pub fn with_streams(stream_num: u32) -> Self {
        TopicConfig { stream_num, ..Default::default() }
    }

    /// Parse a Fig 8-style JSON document.
    pub fn from_json(json: &str) -> common::Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| common::Error::InvalidArgument(format!("bad topic config: {e}")))
    }

    /// Serialize to JSON (pretty, for operator inspection).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig8_example() {
        // The example from Fig 8, with table_schema flattened to name:type
        // pairs (the paper elides the object body with "...").
        let json = r#"{
            "stream_num": 3,
            "quota": 1000000,
            "scm_cache": true,
            "convert_2_table": {
                "table_schema": ["url:utf8", "start_time:int64", "province:utf8"],
                "table_path": "/tables/tb_dpi_log_hours",
                "split_offset": 10000000,
                "split_time": 36000,
                "delete_msg": false,
                "enabled": true
            },
            "archive": {
                "external_archive_url": null,
                "archive_size": 262144,
                "row_2_col": true,
                "enabled": true
            }
        }"#;
        let c = TopicConfig::from_json(json).unwrap();
        assert_eq!(c.stream_num, 3);
        assert_eq!(c.quota, 1_000_000);
        assert!(c.scm_cache);
        assert!(c.convert_2_table.enabled);
        assert_eq!(c.convert_2_table.split_offset, 10_000_000);
        assert_eq!(c.convert_2_table.split_time, 36_000);
        assert!(!c.convert_2_table.delete_msg);
        assert!(c.archive.enabled);
        assert!(c.archive.row_2_col);
        assert_eq!(c.archive.archive_size, 262_144);
        assert!(c.archive.external_archive_url.is_none());
    }

    #[test]
    fn defaults_match_paper_values() {
        let c = TopicConfig::default();
        assert_eq!(c.quota, 1_000_000);
        assert_eq!(c.convert_2_table.split_offset, 10_000_000);
        assert_eq!(c.convert_2_table.split_time, 36_000);
        assert_eq!(c.archive.archive_size, 262_144);
        assert!(!c.convert_2_table.enabled);
        assert!(!c.archive.enabled);
    }

    #[test]
    fn json_roundtrip() {
        let mut c = TopicConfig::with_streams(8);
        c.scm_cache = true;
        c.archive.enabled = true;
        c.archive.external_archive_url = Some("s3://bucket/archive".into());
        let back = TopicConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn minimal_document_uses_defaults() {
        let c = TopicConfig::from_json(r#"{"stream_num": 2}"#).unwrap();
        assert_eq!(c.stream_num, 2);
        assert_eq!(c.quota, 1_000_000);
    }

    #[test]
    fn malformed_json_is_invalid_argument() {
        assert!(matches!(
            TopicConfig::from_json("{not json"),
            Err(common::Error::InvalidArgument(_))
        ));
    }
}
