//! Per-topic configuration.
//!
//! The dispatcher "sets configurations for the messaging service in the
//! unit of the topic" (§V-A); Fig 8 shows the JSON document. This module
//! mirrors that document exactly, including the `convert_2_table` and
//! `archive` sub-objects, and parses the paper's own example verbatim.
//! Parsing is field-by-field over [`common::json::Json`]; absent fields
//! take the paper's defaults, present fields must have the right type.

use common::json::Json;
use common::{Error, Result};

/// Configuration of the automatic stream→table conversion (Fig 8,
/// `convert_2_table`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertToTable {
    /// Columns of the target table, as `name:type` strings (the paper's
    /// `table_schema` object, flattened).
    pub table_schema: Vec<String>,
    /// Table-object directory path for the converted records.
    pub table_path: String,
    /// Convert after this many accumulated messages (paper: 10^7).
    pub split_offset: u64,
    /// Convert after this many seconds (paper: 36000).
    pub split_time: u64,
    /// Whether converted messages are removed from the stream object.
    pub delete_msg: bool,
    /// Whether conversion is active.
    pub enabled: bool,
}

impl Default for ConvertToTable {
    fn default() -> Self {
        ConvertToTable {
            table_schema: Vec::new(),
            table_path: String::new(),
            split_offset: 10_000_000,
            split_time: 36_000,
            delete_msg: false,
            enabled: false,
        }
    }
}

impl ConvertToTable {
    fn from_json(doc: &Json) -> Result<Self> {
        let d = ConvertToTable::default();
        Ok(ConvertToTable {
            table_schema: string_list_field(doc, "table_schema", d.table_schema)?,
            table_path: string_field(doc, "table_path", d.table_path)?,
            split_offset: u64_field(doc, "split_offset", d.split_offset)?,
            split_time: u64_field(doc, "split_time", d.split_time)?,
            delete_msg: bool_field(doc, "delete_msg", d.delete_msg)?,
            enabled: bool_field(doc, "enabled", d.enabled)?,
        })
    }

    fn to_json(&self) -> Json {
        Json::object([
            (
                "table_schema",
                Json::Array(self.table_schema.iter().cloned().map(Json::Str).collect()),
            ),
            ("table_path", Json::Str(self.table_path.clone())),
            ("split_offset", Json::Num(self.split_offset as f64)),
            ("split_time", Json::Num(self.split_time as f64)),
            ("delete_msg", Json::Bool(self.delete_msg)),
            ("enabled", Json::Bool(self.enabled)),
        ])
    }
}

/// Configuration of historical-data archiving (Fig 8, `archive`).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveConfig {
    /// External archive target, or `None` for the built-in archive pool.
    pub external_archive_url: Option<String>,
    /// Data volume in MB that triggers archiving (paper example: 262144).
    pub archive_size: u64,
    /// Whether archived data is converted to columnar format.
    pub row_2_col: bool,
    /// Whether archiving is active.
    pub enabled: bool,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            external_archive_url: None,
            archive_size: 262_144,
            row_2_col: false,
            enabled: false,
        }
    }
}

impl ArchiveConfig {
    fn from_json(doc: &Json) -> Result<Self> {
        let d = ArchiveConfig::default();
        let external_archive_url = match doc.get("external_archive_url") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => {
                return Err(Error::InvalidArgument(
                    "bad topic config: external_archive_url must be a string or null".into(),
                ))
            }
        };
        Ok(ArchiveConfig {
            external_archive_url,
            archive_size: u64_field(doc, "archive_size", d.archive_size)?,
            row_2_col: bool_field(doc, "row_2_col", d.row_2_col)?,
            enabled: bool_field(doc, "enabled", d.enabled)?,
        })
    }

    fn to_json(&self) -> Json {
        let url = match &self.external_archive_url {
            Some(u) => Json::Str(u.clone()),
            None => Json::Null,
        };
        Json::object([
            ("external_archive_url", url),
            ("archive_size", Json::Num(self.archive_size as f64)),
            ("row_2_col", Json::Bool(self.row_2_col)),
            ("enabled", Json::Bool(self.enabled)),
        ])
    }
}

/// Full topic configuration (Fig 8).
#[derive(Debug, Clone, PartialEq)]
pub struct TopicConfig {
    /// Parallelism of the topic: number of streams.
    pub stream_num: u32,
    /// Maximum messages per second per stream (paper example: 10^6).
    pub quota: u64,
    /// Whether the SCM cache is enabled for this topic.
    pub scm_cache: bool,
    /// Stream→table conversion settings.
    pub convert_2_table: ConvertToTable,
    /// Archiving settings.
    pub archive: ArchiveConfig,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            stream_num: 1,
            quota: 1_000_000,
            scm_cache: false,
            convert_2_table: ConvertToTable::default(),
            archive: ArchiveConfig::default(),
        }
    }
}

impl TopicConfig {
    /// A topic with `partitions` partitions and defaults elsewhere.
    ///
    /// The struct field (and the Fig 8 JSON key) stays `stream_num` — the
    /// paper's vocabulary — but the rest of the crate treats each stream
    /// as one **partition**, the unit of parallelism, assignment and
    /// quota.
    pub fn with_partitions(partitions: u32) -> Self {
        TopicConfig { stream_num: partitions, ..Default::default() }
    }

    /// Paper-vocabulary alias for [`with_partitions`](Self::with_partitions).
    pub fn with_streams(stream_num: u32) -> Self {
        Self::with_partitions(stream_num)
    }

    /// Number of partitions (the Fig 8 `stream_num`).
    pub fn partitions(&self) -> u32 {
        self.stream_num
    }

    /// Parse a Fig 8-style JSON document.
    pub fn from_json(json: &str) -> Result<Self> {
        let doc = Json::parse(json)
            .map_err(|e| Error::InvalidArgument(format!("bad topic config: {e}")))?;
        if doc.as_object().is_none() {
            return Err(Error::InvalidArgument(
                "bad topic config: top level must be an object".into(),
            ));
        }
        let stream_num = doc
            .get("stream_num")
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                Error::InvalidArgument(
                    "bad topic config: missing or non-integer stream_num".into(),
                )
            })?;
        let stream_num = u32::try_from(stream_num).map_err(|_| {
            Error::InvalidArgument("bad topic config: stream_num out of range".into())
        })?;
        let d = TopicConfig::default();
        let convert_2_table = match doc.get("convert_2_table") {
            None => d.convert_2_table,
            Some(sub) => ConvertToTable::from_json(sub)?,
        };
        let archive = match doc.get("archive") {
            None => d.archive,
            Some(sub) => ArchiveConfig::from_json(sub)?,
        };
        Ok(TopicConfig {
            stream_num,
            quota: u64_field(&doc, "quota", d.quota)?,
            scm_cache: bool_field(&doc, "scm_cache", d.scm_cache)?,
            convert_2_table,
            archive,
        })
    }

    /// Serialize to JSON (pretty, for operator inspection).
    pub fn to_json(&self) -> String {
        Json::object([
            ("stream_num", Json::Num(self.stream_num as f64)),
            ("quota", Json::Num(self.quota as f64)),
            ("scm_cache", Json::Bool(self.scm_cache)),
            ("convert_2_table", self.convert_2_table.to_json()),
            ("archive", self.archive.to_json()),
        ])
        .to_pretty()
    }
}

fn u64_field(doc: &Json, key: &str, default: u64) -> Result<u64> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            Error::InvalidArgument(format!("bad topic config: {key} must be a non-negative integer"))
        }),
    }
}

fn bool_field(doc: &Json, key: &str, default: bool) -> Result<bool> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| {
            Error::InvalidArgument(format!("bad topic config: {key} must be a boolean"))
        }),
    }
}

fn string_field(doc: &Json, key: &str, default: String) -> Result<String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::InvalidArgument(format!("bad topic config: {key} must be a string"))),
    }
}

fn string_list_field(doc: &Json, key: &str, default: Vec<String>) -> Result<Vec<String>> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_array()
            .and_then(|items| {
                items
                    .iter()
                    .map(|i| i.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()
            })
            .ok_or_else(|| {
                Error::InvalidArgument(format!("bad topic config: {key} must be a string array"))
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig8_example() {
        // The example from Fig 8, with table_schema flattened to name:type
        // pairs (the paper elides the object body with "...").
        let json = r#"{
            "stream_num": 3,
            "quota": 1000000,
            "scm_cache": true,
            "convert_2_table": {
                "table_schema": ["url:utf8", "start_time:int64", "province:utf8"],
                "table_path": "/tables/tb_dpi_log_hours",
                "split_offset": 10000000,
                "split_time": 36000,
                "delete_msg": false,
                "enabled": true
            },
            "archive": {
                "external_archive_url": null,
                "archive_size": 262144,
                "row_2_col": true,
                "enabled": true
            }
        }"#;
        let c = TopicConfig::from_json(json).unwrap();
        assert_eq!(c.stream_num, 3);
        assert_eq!(c.quota, 1_000_000);
        assert!(c.scm_cache);
        assert!(c.convert_2_table.enabled);
        assert_eq!(c.convert_2_table.split_offset, 10_000_000);
        assert_eq!(c.convert_2_table.split_time, 36_000);
        assert!(!c.convert_2_table.delete_msg);
        assert!(c.archive.enabled);
        assert!(c.archive.row_2_col);
        assert_eq!(c.archive.archive_size, 262_144);
        assert!(c.archive.external_archive_url.is_none());
    }

    #[test]
    fn defaults_match_paper_values() {
        let c = TopicConfig::default();
        assert_eq!(c.quota, 1_000_000);
        assert_eq!(c.convert_2_table.split_offset, 10_000_000);
        assert_eq!(c.convert_2_table.split_time, 36_000);
        assert_eq!(c.archive.archive_size, 262_144);
        assert!(!c.convert_2_table.enabled);
        assert!(!c.archive.enabled);
    }

    #[test]
    fn json_roundtrip() {
        let mut c = TopicConfig::with_streams(8);
        c.scm_cache = true;
        c.archive.enabled = true;
        c.archive.external_archive_url = Some("s3://bucket/archive".into());
        let back = TopicConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn minimal_document_uses_defaults() {
        let c = TopicConfig::from_json(r#"{"stream_num": 2}"#).unwrap();
        assert_eq!(c.stream_num, 2);
        assert_eq!(c.quota, 1_000_000);
    }

    #[test]
    fn malformed_json_is_invalid_argument() {
        assert!(matches!(
            TopicConfig::from_json("{not json"),
            Err(common::Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn wrong_field_types_are_invalid_argument() {
        for bad in [
            r#"{"stream_num": "three"}"#,
            r#"{"stream_num": 2, "quota": true}"#,
            r#"{"stream_num": 2, "archive": {"external_archive_url": 5}}"#,
            r#"{"stream_num": 2, "convert_2_table": {"table_schema": [1]}}"#,
        ] {
            assert!(
                matches!(TopicConfig::from_json(bad), Err(common::Error::InvalidArgument(_))),
                "should reject {bad}"
            );
        }
    }
}
