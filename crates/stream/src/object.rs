//! The stream object (§IV-A).
//!
//! A stream object stores one partition of a message stream "organized as a
//! collection of data slices. Each slice contains up to 256 records." The
//! operations mirror Fig 3: create/destroy, append (returning the starting
//! offset) and offset-addressed reads. Appends buffer records until a slice
//! fills, then persist the slice to the object's PLog shard under the
//! store's redundancy policy.
//!
//! Stream objects also carry the mechanics behind the paper's delivery
//! guarantees (§V-A):
//!
//! * *strict order* — offsets are assigned under the object lock;
//! * *idempotent writes* — `(producer_id, sequence)` pairs dedup retries;
//! * *exactly-once* — transactional records stay invisible to
//!   `committed_only` readers until their transaction commits.
//!
//! With `scm_cache` enabled, slice flushes are acknowledged from a
//! storage-class-memory staging device and drained to the PLog in the
//! background; acknowledgement falls back to PLog completion once the drain
//! backlog exceeds the staging budget (this is what makes the SCM benefit
//! disappear at saturation in Fig 14(a)/(b)).

use crate::record::Record;
use common::clock::{Nanos, millis};
use common::ctx::{IoCtx, QosClass};
use common::metrics::Metrics;
use common::{Error, ObjectId, Result};
use plog::{GroupCommitter, PlogAddress, PlogStore, Ticket};
use simdisk::device::{Device, MediaKind};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// Maximum records per slice (paper: 256).
pub const SLICE_CAPACITY: usize = 256;

/// Options for [`StreamObjectStore::create`] (the paper's
/// `CREATE_OPTIONS_S`).
#[derive(Debug, Clone)]
pub struct CreateOptions {
    /// Records per slice before a flush (≤ [`SLICE_CAPACITY`]).
    pub slice_capacity: usize,
    /// Stage slice flushes in SCM and acknowledge early.
    pub scm_cache: bool,
    /// Pin the object to a specific PLog shard (defaults to hashing the
    /// object id).
    pub shard_hint: Option<u32>,
}

/// What [`StreamObjectStore::destroy`] accomplished: destruction itself is
/// all-or-nothing (the object is unpublished), but slice reclamation in
/// PLog is per-slice and best-effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DestroyOutcome {
    /// Slices whose PLog records were reclaimed (or already absent).
    pub freed_slices: u64,
    /// Slices whose PLog delete failed (e.g. a corrupt index entry); their
    /// extents may leak until scrub reclaims them.
    pub failed_deletes: u64,
}

impl Default for CreateOptions {
    fn default() -> Self {
        CreateOptions { slice_capacity: SLICE_CAPACITY, scm_cache: false, shard_hint: None }
    }
}

/// Read control (the paper's `READ_CTRL_S`).
#[derive(Debug, Clone, Copy)]
pub struct ReadCtrl {
    /// Maximum records returned.
    pub max_records: usize,
    /// Hide records of open or aborted transactions.
    pub committed_only: bool,
}

impl Default for ReadCtrl {
    fn default() -> Self {
        ReadCtrl { max_records: usize::MAX, committed_only: true }
    }
}

#[derive(Debug, Clone)]
struct SliceMeta {
    base_offset: u64,
    count: u64,
    addr: PlogAddress,
}

#[derive(Debug, Default)]
struct ObjectState {
    slices: Vec<SliceMeta>,
    buffer: Vec<Record>,
    buffer_base: u64,
    next_offset: u64,
    open_txns: BTreeSet<u64>,
    aborted_txns: BTreeSet<u64>,
    producer_seqs: BTreeMap<u64, u64>,
    persisted_bytes: u64,
    /// Virtual time at which the background SCM→PLog drain frees up.
    drain_backlog_until: Nanos,
    destroyed: bool,
}

/// One stream object.
#[derive(Debug)]
pub struct StreamObject {
    id: ObjectId,
    shard: u32,
    slice_capacity: usize,
    scm: Option<Arc<Device>>,
    plog: Arc<PlogStore>,
    committer: Option<Arc<GroupCommitter>>,
    metrics: Metrics,
    state: TrackedMutex<ObjectState>,
}

/// A filled slice staged with the group committer during one `append_at`
/// call, awaiting its ticket's outcome.
struct StagedSlice {
    ticket: Ticket,
    base_offset: u64,
    records: Vec<Record>,
    encoded_len: u64,
}

/// Outcome of an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendAck {
    /// Offset of the first appended record, or `None` if every record was
    /// an idempotent duplicate.
    pub base_offset: Option<u64>,
    /// Virtual time at which the append is acknowledged durable.
    pub ack_time: Nanos,
}

impl StreamObject {
    /// The object's id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The PLog shard holding this object's slices.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Next offset to be assigned (== record count including buffered).
    pub fn end_offset(&self) -> u64 {
        self.state.lock().next_offset
    }

    /// Logical bytes persisted to the PLog so far.
    pub fn persisted_bytes(&self) -> u64 {
        self.state.lock().persisted_bytes
    }

    /// Number of persisted slices.
    pub fn slice_count(&self) -> usize {
        self.state.lock().slices.len()
    }

    /// Append records under `ctx` (arrival time, deadline, QoS).
    ///
    /// Duplicate `(producer_id, sequence)` pairs are dropped (idempotence);
    /// a sequence gap is an error, as the broker cannot know what was lost.
    pub fn append_at(&self, records: &[Record], ctx: &IoCtx) -> Result<AppendAck> {
        let mut st = self.state.lock();
        if st.destroyed {
            return Err(Error::NotFound(format!("stream object {} destroyed", self.id)));
        }
        let mut base: Option<u64> = None;
        let mut ack = ctx.now;
        let mut staged: Vec<StagedSlice> = Vec::new();
        for r in records {
            if let Some((pid, seq)) = r.producer_seq {
                let last = st.producer_seqs.get(&pid).copied();
                match last {
                    Some(l) if seq <= l => continue, // duplicate retry: drop
                    Some(l) if seq > l + 1 => {
                        return Err(Error::InvalidArgument(format!(
                            "producer {pid} sequence gap: last {l}, got {seq}"
                        )))
                    }
                    _ => {}
                }
                st.producer_seqs.insert(pid, seq);
            }
            if let Some(t) = r.txn {
                st.open_txns.insert(t);
            }
            let offset = st.next_offset;
            base.get_or_insert(offset);
            st.next_offset += 1;
            st.buffer.push(r.clone());
            if st.buffer.len() >= self.slice_capacity {
                match &self.committer {
                    // Batched path: every filled slice of this append joins
                    // one group-commit submission instead of paying its own
                    // index put; outcomes resolve in one flush below. SCM
                    // staging keeps its per-slice early-ack path.
                    Some(gc) if self.scm.is_none() => {
                        let slice_records = std::mem::take(&mut st.buffer);
                        let encoded = Record::encode_slice(&slice_records);
                        let encoded_len = encoded.len() as u64;
                        let ticket = gc.submit(self.shard, encoded, ctx)?;
                        staged.push(StagedSlice {
                            ticket,
                            base_offset: st.buffer_base,
                            records: slice_records,
                            encoded_len,
                        });
                        st.buffer_base = st.next_offset;
                    }
                    _ => ack = ack.max(self.flush_locked(&mut st, ctx)?),
                }
            }
        }
        if !staged.is_empty() {
            ack = ack.max(self.commit_staged_locked(&mut st, staged, ctx)?);
        }
        Ok(AppendAck { base_offset: base, ack_time: ack })
    }

    /// Resolve the slices staged with the group committer during one
    /// `append_at`: flush the open group, record successful slices in
    /// offset order, and on failure restore every unpersisted slice to the
    /// open buffer so `buffer_base + buffer.len() == next_offset` keeps
    /// holding and a later flush retries them.
    fn commit_staged_locked(
        &self,
        st: &mut ObjectState,
        staged: Vec<StagedSlice>,
        ctx: &IoCtx,
    ) -> Result<Nanos> {
        let gc: &GroupCommitter = match &self.committer {
            Some(gc) => gc,
            None => return Ok(ctx.now), // unreachable: callers stage only with a committer
        };
        gc.flush(ctx)?;
        let mut ack = ctx.now;
        let mut committed = 0u64;
        let mut failed: Option<Error> = None;
        let mut restage: Vec<StagedSlice> = Vec::new();
        for s in staged {
            let outcome = gc
                .take(s.ticket)
                .unwrap_or_else(|| Err(Error::Io("group commit lost a slice outcome".into())));
            match outcome {
                Ok((addr, finish)) if failed.is_none() => {
                    st.persisted_bytes += s.encoded_len;
                    st.slices.push(SliceMeta {
                        base_offset: s.base_offset,
                        count: s.records.len() as u64,
                        addr,
                    });
                    ack = ack.max(finish);
                    committed += 1;
                }
                Ok((addr, _)) => {
                    // An earlier slice failed: keep the slice sequence
                    // gap-free by rolling this one back and restaging it.
                    // slint:allow(R11): best-effort rollback, orphan is scrub-reclaimed
                    let _ = self.plog.delete(&addr);
                    restage.push(s);
                }
                Err(e) => {
                    if failed.is_none() {
                        failed = Some(e);
                    }
                    restage.push(s);
                }
            }
        }
        if committed > 0 {
            self.metrics.incr("stream.batched_appends", committed);
        }
        match failed {
            None => Ok(ack),
            Some(e) => {
                let mut buffer = Vec::new();
                let mut buffer_base = st.buffer_base;
                for mut s in restage {
                    buffer_base = buffer_base.min(s.base_offset);
                    buffer.append(&mut s.records);
                }
                buffer.append(&mut st.buffer);
                st.buffer = buffer;
                st.buffer_base = buffer_base;
                Err(e)
            }
        }
    }

    /// Force-persist the open slice buffer (e.g. on shutdown or conversion).
    pub fn flush_at(&self, ctx: &IoCtx) -> Result<Nanos> {
        let mut st = self.state.lock();
        if st.destroyed {
            return Err(Error::NotFound(format!("stream object {} destroyed", self.id)));
        }
        self.flush_locked(&mut st, ctx)
    }

    fn flush_locked(&self, st: &mut ObjectState, ctx: &IoCtx) -> Result<Nanos> {
        if st.buffer.is_empty() {
            return Ok(ctx.now);
        }
        let encoded = Record::encode_slice(&st.buffer);
        let count = st.buffer.len() as u64;
        let base_offset = st.buffer_base;
        let ack = match &self.scm {
            Some(scm) => {
                // Stage in SCM: fast ack, background drain to the PLog.
                let scm_ext = self.id.raw() * 1_000_003 + st.slices.len() as u64;
                let t = scm.write_extent_ctx(scm_ext, &encoded, ctx)?;
                let drain_start = t.finish.max(st.drain_backlog_until);
                // The drain is background work: it keeps the request's trace
                // and sink but must not inherit its deadline or foreground
                // device lane.
                let mut drain_ctx =
                    ctx.at(drain_start).with_qos(QosClass::Background);
                drain_ctx.deadline = None;
                let (addr, plog_finish) =
                    self.plog.append_to_shard_at(self.shard, &encoded, &drain_ctx)?;
                st.drain_backlog_until = plog_finish;
                // The slice is durable in the PLog by now; a failed SCM
                // delete only delays persistent-memory reuse.
                // slint:allow(R11): slice already durable in PLog
                let _ = scm.delete_extent(scm_ext); // drained
                st.slices.push(SliceMeta { base_offset, count, addr });
                // Ack from SCM while the drain keeps up; once the backlog
                // exceeds ~5 ms the PLog becomes the critical path — this is
                // why persistent memory stops helping near saturation in
                // Fig 14(a)/(b).
                if plog_finish.saturating_sub(t.finish) > millis(5) {
                    plog_finish
                } else {
                    t.finish
                }
            }
            None => {
                let (addr, finish) = self.plog.append_to_shard_at(self.shard, &encoded, ctx)?;
                st.slices.push(SliceMeta { base_offset, count, addr });
                finish
            }
        };
        st.persisted_bytes += encoded.len() as u64;
        st.buffer.clear();
        st.buffer_base = st.next_offset;
        Ok(ack)
    }

    /// Read up to `ctrl.max_records` records starting at `offset`.
    ///
    /// Returns `(offset, record)` pairs in offset order and the virtual
    /// completion time of the underlying PLog reads.
    pub fn read_at(
        &self,
        offset: u64,
        ctrl: ReadCtrl,
        ctx: &IoCtx,
    ) -> Result<(Vec<(u64, Record)>, Nanos)> {
        let (slices, buffer, buffer_base, open, aborted) = {
            let st = self.state.lock();
            if st.destroyed {
                return Err(Error::NotFound(format!("stream object {} destroyed", self.id)));
            }
            (
                st.slices.clone(),
                st.buffer.clone(),
                st.buffer_base,
                st.open_txns.clone(),
                st.aborted_txns.clone(),
            )
        };
        // Visibility under `committed_only` follows last-stable-offset
        // semantics: the scan STOPS at the first record of a still-open
        // transaction (so a later commit is not skipped over by consumers
        // that already advanced), and records of aborted transactions are
        // filtered out.
        enum Vis {
            Deliver,
            Skip,
            Stop,
        }
        let classify = |r: &Record| -> Vis {
            if !ctrl.committed_only {
                return Vis::Deliver;
            }
            match r.txn {
                Some(t) if open.contains(&t) => Vis::Stop,
                Some(t) if aborted.contains(&t) => Vis::Skip,
                _ => Vis::Deliver,
            }
        };
        let mut out = Vec::new();
        let mut finish = ctx.now;
        for meta in &slices {
            if out.len() >= ctrl.max_records {
                return Ok((out, finish));
            }
            if meta.base_offset + meta.count <= offset {
                continue;
            }
            let (bytes, t) = self.plog.read_at(&meta.addr, ctx)?;
            finish = finish.max(t);
            for (i, r) in Record::decode_slice(&bytes)?.into_iter().enumerate() {
                let off = meta.base_offset + i as u64;
                if off < offset || out.len() >= ctrl.max_records {
                    continue;
                }
                match classify(&r) {
                    Vis::Deliver => out.push((off, r)),
                    Vis::Skip => {}
                    Vis::Stop => return Ok((out, finish)),
                }
            }
        }
        for (i, r) in buffer.iter().enumerate() {
            let off = buffer_base + i as u64;
            if off < offset || out.len() >= ctrl.max_records {
                continue;
            }
            match classify(r) {
                Vis::Deliver => out.push((off, r.clone())),
                Vis::Skip => {}
                Vis::Stop => break,
            }
        }
        Ok((out, finish))
    }

    /// Drop persisted slices that lie entirely before `offset`, freeing
    /// their PLog space (used after archiving and by `delete_msg`
    /// stream→table conversion). Offsets are never reused: reads below the
    /// truncation point simply return nothing.
    pub fn truncate_before(&self, offset: u64) -> u64 {
        let mut st = self.state.lock();
        let mut freed = 0u64;
        st.slices.retain(|s| {
            if s.base_offset + s.count <= offset {
                // Truncation is logical — offsets are never reused, so a
                // leaked extent is unreachable and scrub-reclaimed.
                // slint:allow(R11): leaked extent is scrub-reclaimed
                let _ = self.plog.delete(&s.addr);
                freed += s.count;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Mark a transaction committed: its records become visible.
    pub fn commit_txn(&self, txn: u64) {
        self.state.lock().open_txns.remove(&txn);
    }

    /// Mark a transaction aborted: its records stay permanently invisible.
    pub fn abort_txn(&self, txn: u64) {
        let mut st = self.state.lock();
        st.open_txns.remove(&txn);
        st.aborted_txns.insert(txn);
    }

    /// Whether this participant can prepare `txn` (2PC phase one).
    pub fn prepared(&self, txn: u64) -> bool {
        let st = self.state.lock();
        !st.destroyed && st.open_txns.contains(&txn)
    }
}

/// Registry of stream objects over one PLog store (the store-layer service
/// behind `CreateServerStreamObject` / `DestroyServerStreamObject`).
#[derive(Debug)]
pub struct StreamObjectStore {
    plog: Arc<PlogStore>,
    scm: Option<Arc<Device>>,
    committer: Option<Arc<GroupCommitter>>,
    metrics: Metrics,
    objects: TrackedMutex<BTreeMap<ObjectId, Arc<StreamObject>>>,
    next_id: AtomicU64,
}

impl StreamObjectStore {
    /// Create a store over `plog`; `scm_capacity` provisions a shared SCM
    /// staging device when nonzero (Set-2 hardware in §VII-C).
    pub fn new(plog: Arc<PlogStore>, scm_capacity: u64, clock: common::SimClock) -> Self {
        let scm = (scm_capacity > 0)
            .then(|| Arc::new(Device::new(u64::MAX, MediaKind::Scm, scm_capacity, clock)));
        StreamObjectStore {
            plog,
            scm,
            committer: None,
            metrics: Metrics::new(),
            objects: TrackedMutex::new("stream.object.registry", BTreeMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Route filled-slice flushes through `committer`: each `append_at`
    /// submits all of its filled slices as one group-commit batch.
    pub fn with_committer(mut self, committer: Arc<GroupCommitter>) -> Self {
        self.committer = Some(committer);
        self
    }

    /// Record stream counters (`stream.*`) into a shared registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// `CreateServerStreamObject`: allocate a new stream object.
    pub fn create(&self, options: CreateOptions) -> Result<Arc<StreamObject>> {
        if options.slice_capacity == 0 || options.slice_capacity > SLICE_CAPACITY {
            return Err(Error::InvalidArgument(format!(
                "slice_capacity must be in 1..={SLICE_CAPACITY}"
            )));
        }
        let id = ObjectId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let shard = options
            .shard_hint
            .unwrap_or_else(|| self.plog.shard_of(&id.raw().to_be_bytes()));
        let obj = Arc::new(StreamObject {
            id,
            shard,
            slice_capacity: options.slice_capacity,
            scm: options.scm_cache.then(|| self.scm.clone()).flatten(),
            plog: self.plog.clone(),
            committer: self.committer.clone(),
            metrics: self.metrics.clone(),
            state: TrackedMutex::new("stream.object.state", ObjectState::default()),
        });
        self.objects.lock().insert(id, obj.clone());
        Ok(obj)
    }

    /// Look up an object by id.
    pub fn get(&self, id: ObjectId) -> Result<Arc<StreamObject>> {
        self.objects
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("stream object {id}")))
    }

    /// `DestroyServerStreamObject`: drop the object and free its slices.
    ///
    /// Freeing slices stays best-effort (the object is already unpublished
    /// from the registry), but the outcome is reported instead of
    /// swallowed: callers like `StreamDispatcher::delete_topic` surface
    /// [`DestroyOutcome::failed_deletes`] as a metric so leaked extents are
    /// observable.
    pub fn destroy(&self, id: ObjectId) -> Result<DestroyOutcome> {
        let obj = self
            .objects
            .lock()
            .remove(&id)
            .ok_or_else(|| Error::NotFound(format!("stream object {id}")))?;
        let mut st = obj.state.lock();
        st.destroyed = true;
        let mut outcome = DestroyOutcome::default();
        for s in &st.slices {
            match obj.plog.delete(&s.addr) {
                // Ok(0) means the record was already gone — still freed.
                Ok(_) => outcome.freed_slices += 1,
                Err(_) => outcome.failed_deletes += 1,
            }
        }
        st.slices.clear();
        st.buffer.clear();
        Ok(outcome)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }

    /// The backing PLog store.
    pub fn plog(&self) -> &Arc<PlogStore> {
        &self.plog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::size::MIB;
    use common::SimClock;
    use common::ctx::IoCtx;
    use ec::Redundancy;
    use plog::PlogConfig;
    use simdisk::StoragePool;

    fn store(scm: bool) -> StreamObjectStore {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 8,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        StreamObjectStore::new(plog, if scm { 16 * MIB } else { 0 }, clock)
    }

    fn at(t: Nanos) -> IoCtx {
        IoCtx::new(t)
    }

    fn recs(n: usize, start: i64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(format!("k{i}").into_bytes(), vec![b'v'; 64], start + i as i64))
            .collect()
    }

    #[test]
    fn append_assigns_contiguous_offsets() {
        let s = store(false);
        let obj = s.create(CreateOptions::default()).unwrap();
        let a1 = obj.append_at(&recs(10, 0), &at(0)).unwrap();
        let a2 = obj.append_at(&recs(5, 10), &at(0)).unwrap();
        assert_eq!(a1.base_offset, Some(0));
        assert_eq!(a2.base_offset, Some(10));
        assert_eq!(obj.end_offset(), 15);
    }

    #[test]
    fn slices_flush_at_capacity_and_reads_span_slices_and_buffer() {
        let s = store(false);
        let obj = s
            .create(CreateOptions { slice_capacity: 16, ..Default::default() })
            .unwrap();
        obj.append_at(&recs(40, 0), &at(0)).unwrap();
        assert_eq!(obj.slice_count(), 2, "two full slices persisted");
        let (got, _) = obj.read_at(0, ReadCtrl::default(), &at(0)).unwrap();
        assert_eq!(got.len(), 40);
        for (i, (off, r)) in got.iter().enumerate() {
            assert_eq!(*off, i as u64);
            assert_eq!(r.timestamp, i as i64);
        }
    }

    #[test]
    fn read_from_mid_offset_with_limit() {
        let s = store(false);
        let obj = s
            .create(CreateOptions { slice_capacity: 8, ..Default::default() })
            .unwrap();
        obj.append_at(&recs(30, 0), &at(0)).unwrap();
        let ctrl = ReadCtrl { max_records: 5, committed_only: true };
        let (got, _) = obj.read_at(12, ctrl, &at(0)).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, 12);
        assert_eq!(got[4].0, 16);
    }

    #[test]
    fn idempotent_duplicates_are_dropped() {
        let s = store(false);
        let obj = s.create(CreateOptions::default()).unwrap();
        let mut r = Record::new(b"k".to_vec(), b"v".to_vec(), 1);
        r.producer_seq = Some((7, 1));
        obj.append_at(std::slice::from_ref(&r), &at(0)).unwrap();
        // network retry resends the same sequence
        let ack = obj.append_at(std::slice::from_ref(&r), &at(0)).unwrap();
        assert_eq!(ack.base_offset, None, "duplicate must not be re-appended");
        assert_eq!(obj.end_offset(), 1);
        // a gap is an error
        let mut r3 = r.clone();
        r3.producer_seq = Some((7, 5));
        assert!(obj.append_at(&[r3], &at(0)).is_err());
    }

    #[test]
    fn transactional_visibility() {
        let s = store(false);
        let obj = s.create(CreateOptions::default()).unwrap();
        let mut r = Record::new(b"k".to_vec(), b"txn-value".to_vec(), 1);
        r.txn = Some(42);
        obj.append_at(&[r], &at(0)).unwrap();
        obj.append_at(&recs(1, 99), &at(0)).unwrap(); // plain record after

        let committed = ReadCtrl { max_records: usize::MAX, committed_only: true };
        let all = ReadCtrl { max_records: usize::MAX, committed_only: false };
        // LSO semantics: the committed read stops at the open transaction,
        // hiding it AND everything after it.
        assert_eq!(obj.read_at(0, committed, &at(0)).unwrap().0.len(), 0, "open txn blocks");
        assert_eq!(obj.read_at(0, all, &at(0)).unwrap().0.len(), 2);

        obj.commit_txn(42);
        assert_eq!(obj.read_at(0, committed, &at(0)).unwrap().0.len(), 2, "commit reveals");
    }

    #[test]
    fn aborted_txn_records_stay_hidden() {
        let s = store(false);
        let obj = s.create(CreateOptions::default()).unwrap();
        let mut r = Record::new(b"k".to_vec(), b"poison".to_vec(), 1);
        r.txn = Some(9);
        obj.append_at(&[r], &at(0)).unwrap();
        obj.abort_txn(9);
        let (got, _) = obj.read_at(0, ReadCtrl::default(), &at(0)).unwrap();
        assert!(got.is_empty());
        assert!(!obj.prepared(9));
    }

    #[test]
    fn destroy_frees_plog_space_and_blocks_access() {
        let s = store(false);
        let obj = s
            .create(CreateOptions { slice_capacity: 4, ..Default::default() })
            .unwrap();
        obj.append_at(&recs(16, 0), &at(0)).unwrap();
        assert!(s.plog().physical_bytes() > 0);
        s.destroy(obj.id()).unwrap();
        assert_eq!(s.plog().physical_bytes(), 0);
        assert!(obj.append_at(&recs(1, 0), &at(0)).is_err());
        assert!(s.get(obj.id()).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn scm_cache_lowers_ack_latency_at_low_rate() {
        let no_scm = store(false);
        let with_scm = store(true);
        let o1 = no_scm
            .create(CreateOptions { slice_capacity: 4, ..Default::default() })
            .unwrap();
        let o2 = with_scm
            .create(CreateOptions { slice_capacity: 4, scm_cache: true, ..Default::default() })
            .unwrap();
        // Appends spaced far apart: drain backlog stays empty, SCM ack wins.
        let mut lat1 = 0u64;
        let mut lat2 = 0u64;
        for i in 0..8u64 {
            let now = i * common::clock::millis(100);
            let a1 = o1.append_at(&recs(4, 0), &at(now)).unwrap();
            let a2 = o2.append_at(&recs(4, 0), &at(now)).unwrap();
            lat1 += a1.ack_time - now;
            lat2 += a2.ack_time - now;
        }
        assert!(
            lat2 < lat1,
            "scm-staged acks ({lat2}) must beat direct plog acks ({lat1})"
        );
    }

    #[test]
    fn flush_persists_partial_slice() {
        let s = store(false);
        let obj = s.create(CreateOptions::default()).unwrap();
        obj.append_at(&recs(3, 0), &at(0)).unwrap();
        assert_eq!(obj.slice_count(), 0);
        obj.flush_at(&at(0)).unwrap();
        assert_eq!(obj.slice_count(), 1);
        assert!(obj.persisted_bytes() > 0);
        let (got, _) = obj.read_at(0, ReadCtrl::default(), &at(0)).unwrap();
        assert_eq!(got.len(), 3);
    }

    fn batched_store() -> StreamObjectStore {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 8,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        let committer = Arc::new(GroupCommitter::new(
            plog.clone(),
            plog::GroupCommitConfig::default(),
        ));
        StreamObjectStore::new(plog, 0, clock).with_committer(committer)
    }

    #[test]
    fn batched_append_matches_per_slice_appends() {
        // Same records, same virtual arrival: the group-committed object
        // must produce identical slices, acks and read results — while
        // paying one index WAL frame for the whole append instead of one
        // per slice.
        let plain = store(false);
        let batched = batched_store();
        let o1 = plain.create(CreateOptions { slice_capacity: 8, ..Default::default() }).unwrap();
        let o2 = batched.create(CreateOptions { slice_capacity: 8, ..Default::default() }).unwrap();
        let frames_before = batched.plog().index_for_tests().wal_frames();
        let a1 = o1.append_at(&recs(24, 0), &at(0)).unwrap();
        let a2 = o2.append_at(&recs(24, 0), &at(0)).unwrap();
        assert_eq!(a1, a2, "batched ack must match the per-slice ack exactly");
        assert_eq!(o2.slice_count(), 3);
        assert_eq!(
            batched.plog().index_for_tests().wal_frames() - frames_before,
            1,
            "three filled slices must commit under one index WAL frame"
        );
        assert_eq!(batched.metrics.counter("stream.batched_appends"), 3);
        let (r1, t1) = o1.read_at(0, ReadCtrl::default(), &at(a1.ack_time)).unwrap();
        let (r2, t2) = o2.read_at(0, ReadCtrl::default(), &at(a2.ack_time)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn failed_batched_append_restores_the_buffer() {
        let s = batched_store();
        let obj = s.create(CreateOptions { slice_capacity: 4, ..Default::default() }).unwrap();
        for d in 1..4 {
            s.plog().pool_for_tests().device(d).fail();
        }
        // Two filled slices, both doomed: one healthy device cannot hold
        // two replicas.
        assert!(obj.append_at(&recs(8, 0), &at(0)).is_err());
        assert_eq!(obj.slice_count(), 0);
        assert_eq!(obj.end_offset(), 8, "offsets stay assigned to the buffered records");
        assert_eq!(s.plog().physical_bytes(), 0, "failed group leaked extents");
        assert_eq!(s.metrics.counter("stream.batched_appends"), 0);
        // The records live on in the open buffer: once the pool heals, a
        // flush persists them and reads see every offset.
        for d in 1..4 {
            s.plog().pool_for_tests().device(d).heal();
        }
        obj.flush_at(&at(0)).unwrap();
        let (got, _) = obj.read_at(0, ReadCtrl::default(), &at(0)).unwrap();
        assert_eq!(got.len(), 8);
        for (i, (off, r)) in got.iter().enumerate() {
            assert_eq!(*off, i as u64);
            assert_eq!(r.timestamp, i as i64);
        }
    }

    #[test]
    fn create_rejects_bad_slice_capacity() {
        let s = store(false);
        assert!(s.create(CreateOptions { slice_capacity: 0, ..Default::default() }).is_err());
        assert!(s
            .create(CreateOptions { slice_capacity: 1000, ..Default::default() })
            .is_err());
    }
}
