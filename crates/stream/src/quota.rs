//! Per-partition rate limiting.
//!
//! "The quota configuration sets the maximum processing rate for each
//! stream" (§V-A). A token bucket over virtual time: capacity of one
//! second's worth of tokens, refilled continuously.
//!
//! Arithmetic is exact: the bucket holds **nano-tokens** (one token =
//! 10⁹ nano-tokens) in integers, and an elapsed span of `e` nanoseconds at
//! `rate` tokens/second refills exactly `e × rate` nano-tokens — no
//! floating point anywhere, so the same admission schedule produces the
//! same decisions byte for byte on every run and every platform (a unit
//! test pins this).

use common::clock::Nanos;
use common::ctx::IoCtx;
use common::{Error, Result};

/// Nano-tokens per token: refill math stays in integers because
/// `tokens/sec × elapsed_ns` *is* the nano-token count.
const NANO: u128 = 1_000_000_000;

/// Token-bucket limiter: at most `rate` messages per virtual second, with a
/// burst of one second's allowance.
#[derive(Debug)]
pub struct QuotaLimiter {
    rate_per_sec: u64,
    /// Current allowance in nano-tokens; capacity is `rate_per_sec × NANO`.
    nano_tokens: u128,
    last_refill: Nanos,
}

impl QuotaLimiter {
    /// A limiter admitting `rate_per_sec` messages per second.
    pub fn new(rate_per_sec: u64) -> Self {
        QuotaLimiter {
            rate_per_sec,
            nano_tokens: rate_per_sec as u128 * NANO,
            last_refill: 0,
        }
    }

    /// Configured rate.
    pub fn rate(&self) -> u64 {
        self.rate_per_sec
    }

    /// Try to admit `n` messages at `ctx`'s virtual time; returns
    /// `QuotaExceeded` when the bucket is empty.
    pub fn try_acquire(&mut self, n: u64, ctx: &IoCtx) -> Result<()> {
        self.refill(ctx.now);
        let need = n as u128 * NANO;
        if self.nano_tokens >= need {
            self.nano_tokens -= need;
            Ok(())
        } else {
            Err(Error::QuotaExceeded(format!(
                "requested {n}, {} tokens available at rate {}/s",
                self.nano_tokens / NANO,
                self.rate_per_sec
            )))
        }
    }

    fn refill(&mut self, t: Nanos) {
        if t <= self.last_refill {
            return;
        }
        let elapsed = (t - self.last_refill) as u128;
        let cap = self.rate_per_sec as u128 * NANO;
        // Exact: elapsed ns × (rate tokens/s) = elapsed × rate nano-tokens.
        self.nano_tokens = (self.nano_tokens + elapsed * self.rate_per_sec as u128).min(cap);
        self.last_refill = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::clock::{millis, secs};
    use common::ctx::IoCtx;

    #[test]
    fn admits_up_to_burst_then_rejects() {
        let mut q = QuotaLimiter::new(100);
        assert!(q.try_acquire(100, &IoCtx::new(0)).is_ok());
        assert!(matches!(q.try_acquire(1, &IoCtx::new(0)), Err(Error::QuotaExceeded(_))));
    }

    #[test]
    fn refills_with_time() {
        let mut q = QuotaLimiter::new(1000);
        q.try_acquire(1000, &IoCtx::new(0)).unwrap();
        assert!(q.try_acquire(1, &IoCtx::new(0)).is_err());
        // 100 ms later: 100 tokens refilled
        assert!(q.try_acquire(100, &IoCtx::new(millis(100))).is_ok());
        assert!(q.try_acquire(1, &IoCtx::new(millis(100))).is_err());
    }

    #[test]
    fn bucket_caps_at_one_second_of_tokens() {
        let mut q = QuotaLimiter::new(10);
        // A long idle period must not bank more than `rate` tokens.
        assert!(q.try_acquire(10, &IoCtx::new(secs(100))).is_ok());
        assert!(q.try_acquire(1, &IoCtx::new(secs(100))).is_err());
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let mut q = QuotaLimiter::new(10);
        q.try_acquire(5, &IoCtx::new(secs(1))).unwrap();
        // an earlier timestamp neither refills nor panics
        assert!(q.try_acquire(5, &IoCtx::new(millis(500))).is_ok());
        assert!(q.try_acquire(1, &IoCtx::new(millis(500))).is_err());
    }

    #[test]
    fn sustained_rate_matches_configuration() {
        let mut q = QuotaLimiter::new(500);
        let mut admitted = 0u64;
        // Offer 100 msgs every 100 ms for 10 virtual seconds at t >= 1s.
        for step in 0..100u64 {
            let now = secs(1) + step * millis(100);
            if q.try_acquire(100, &IoCtx::new(now)).is_ok() {
                admitted += 100;
            }
        }
        // 10 s at 500/s plus the initial burst: within [5000, 5600].
        assert!((5000..=5600).contains(&admitted), "admitted={admitted}");
    }

    #[test]
    fn sub_token_refills_are_exact_not_rounded() {
        // 3 tokens/s: one token takes 333,333,333.3 ns. Integer nano-token
        // math accumulates the fractional thirds exactly: after draining
        // the burst, 333 ms is one ns short of a token, 334 ms is over.
        let mut q = QuotaLimiter::new(3);
        q.try_acquire(3, &IoCtx::new(0)).unwrap();
        assert!(q.try_acquire(1, &IoCtx::new(millis(333))).is_err());
        assert!(q.try_acquire(1, &IoCtx::new(millis(334))).is_ok());
    }

    #[test]
    fn admission_decisions_are_pinned_for_a_fixed_schedule() {
        // The determinism contract: this exact (time, n) schedule admits
        // exactly this decision string, byte for byte, on every run and
        // every platform. f64 token math could drift per target; integer
        // nano-tokens cannot.
        let schedule: &[(Nanos, u64)] = &[
            (0, 7),
            (0, 4),
            (millis(50), 1),
            (millis(300), 2),
            (millis(300), 1),
            (millis(999), 4),
            (secs(1), 1),
            (secs(1) + millis(100), 1),
            (secs(1) + millis(100), 1),
            (secs(2), 9),
            (secs(2), 1),
            (millis(1500), 1), // time going backwards: no refill
            (secs(3), 10),
            (secs(3), 1),
        ];
        let decide = || {
            let mut q = QuotaLimiter::new(10);
            let mut out = String::new();
            for &(t, n) in schedule {
                out.push(if q.try_acquire(n, &IoCtx::new(t)).is_ok() { 'A' } else { 'R' });
            }
            out
        };
        let got = decide();
        assert_eq!(got, "ARAAAAAAAAARAR", "admission schedule drifted");
        // And byte-identical across limiter instances.
        assert_eq!(got, decide());
    }
}
