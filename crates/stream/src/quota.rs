//! Per-stream rate limiting.
//!
//! "The quota configuration sets the maximum processing rate for each
//! stream" (§V-A). A token bucket over virtual time: capacity of one
//! second's worth of tokens, refilled continuously.

use common::clock::Nanos;
use common::ctx::IoCtx;
use common::{Error, Result};

/// Token-bucket limiter: at most `rate` messages per virtual second, with a
/// burst of one second's allowance.
#[derive(Debug)]
pub struct QuotaLimiter {
    rate_per_sec: u64,
    tokens: f64,
    last_refill: Nanos,
}

impl QuotaLimiter {
    /// A limiter admitting `rate_per_sec` messages per second.
    pub fn new(rate_per_sec: u64) -> Self {
        QuotaLimiter { rate_per_sec, tokens: rate_per_sec as f64, last_refill: 0 }
    }

    /// Configured rate.
    pub fn rate(&self) -> u64 {
        self.rate_per_sec
    }

    /// Try to admit `n` messages at `ctx`'s virtual time; returns
    /// `QuotaExceeded` when the bucket is empty.
    pub fn try_acquire(&mut self, n: u64, ctx: &IoCtx) -> Result<()> {
        self.refill(ctx.now);
        if self.tokens >= n as f64 {
            self.tokens -= n as f64;
            Ok(())
        } else {
            Err(Error::QuotaExceeded(format!(
                "requested {n}, {:.0} tokens available at rate {}/s",
                self.tokens, self.rate_per_sec
            )))
        }
    }

    fn refill(&mut self, t: Nanos) {
        if t <= self.last_refill {
            return;
        }
        let elapsed = (t - self.last_refill) as f64 / 1e9;
        self.tokens =
            (self.tokens + elapsed * self.rate_per_sec as f64).min(self.rate_per_sec as f64);
        self.last_refill = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::clock::{millis, secs};
    use common::ctx::IoCtx;

    #[test]
    fn admits_up_to_burst_then_rejects() {
        let mut q = QuotaLimiter::new(100);
        assert!(q.try_acquire(100, &IoCtx::new(0)).is_ok());
        assert!(matches!(q.try_acquire(1, &IoCtx::new(0)), Err(Error::QuotaExceeded(_))));
    }

    #[test]
    fn refills_with_time() {
        let mut q = QuotaLimiter::new(1000);
        q.try_acquire(1000, &IoCtx::new(0)).unwrap();
        assert!(q.try_acquire(1, &IoCtx::new(0)).is_err());
        // 100 ms later: 100 tokens refilled
        assert!(q.try_acquire(100, &IoCtx::new(millis(100))).is_ok());
        assert!(q.try_acquire(1, &IoCtx::new(millis(100))).is_err());
    }

    #[test]
    fn bucket_caps_at_one_second_of_tokens() {
        let mut q = QuotaLimiter::new(10);
        // A long idle period must not bank more than `rate` tokens.
        assert!(q.try_acquire(10, &IoCtx::new(secs(100))).is_ok());
        assert!(q.try_acquire(1, &IoCtx::new(secs(100))).is_err());
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let mut q = QuotaLimiter::new(10);
        q.try_acquire(5, &IoCtx::new(secs(1))).unwrap();
        // an earlier timestamp neither refills nor panics
        assert!(q.try_acquire(5, &IoCtx::new(millis(500))).is_ok());
        assert!(q.try_acquire(1, &IoCtx::new(millis(500))).is_err());
    }

    #[test]
    fn sustained_rate_matches_configuration() {
        let mut q = QuotaLimiter::new(500);
        let mut admitted = 0u64;
        // Offer 100 msgs every 100 ms for 10 virtual seconds at t >= 1s.
        for step in 0..100u64 {
            let now = secs(1) + step * millis(100);
            if q.try_acquire(100, &IoCtx::new(now)).is_ok() {
                admitted += 100;
            }
        }
        // 10 s at 500/s plus the initial burst: within [5000, 5600].
        assert!((5000..=5600).contains(&admitted), "admitted={admitted}");
    }
}
