//! Historical-data archiving (§V-A, the `archive` topic configuration).
//!
//! "The archive configuration automates the archiving of historical data to
//! meet business and regulatory requirements. Data can be stored in the
//! cost-effective StreamLake archive storage pool … The `archive_size`
//! configuration denotes the data volume in MB that triggers archiving, and
//! the `row_2_col` configuration determines whether the data is archived in
//! a columnar format."
//!
//! Archived batches land in a (typically HDD) archive pool either as a
//! compressed row blob or re-encoded through the columnar lake file format;
//! archived slices are truncated from the stream object, freeing hot-pool
//! space.

use crate::config::ArchiveConfig;
use crate::object::{ReadCtrl, StreamObject};
use crate::record::Record;
use crate::service::StreamService;
use common::chore::{Chore, ChoreBudget, TickReport};
use common::ctx::IoCtx;
use common::{Error, ObjectId, Result};
use format::{DataType, Field, LakeFileReader, LakeFileWriter, Schema, Value};
use simdisk::pool::{ExtentHandle, StoragePool};
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// One archived batch.
#[derive(Debug, Clone)]
pub struct ArchiveEntry {
    /// Source stream object.
    pub object: ObjectId,
    /// First archived offset.
    pub base_offset: u64,
    /// Number of archived records.
    pub count: u64,
    /// Whether the batch is stored columnar (`row_2_col`).
    pub columnar: bool,
    /// Physical bytes in the archive pool.
    pub stored_bytes: u64,
    handle: ExtentHandle,
}

/// The archive service over a cost-effective storage pool.
#[derive(Debug)]
pub struct ArchiveService {
    pool: Arc<StoragePool>,
    entries: TrackedMutex<Vec<ArchiveEntry>>,
}

fn archive_schema() -> Result<Schema> {
    Schema::new(vec![
        Field::new("key", DataType::Utf8),
        Field::new("value", DataType::Utf8),
        Field::new("timestamp", DataType::Int64),
    ])
}

impl ArchiveService {
    /// An archive service writing into `pool`.
    pub fn new(pool: Arc<StoragePool>) -> Self {
        ArchiveService { pool, entries: TrackedMutex::new("stream.archive.entries", Vec::new()) }
    }

    /// Archive `object`'s data if it exceeds `config.archive_size` (MB of
    /// persisted data). Returns the entry when archiving ran.
    ///
    /// Archived slices are truncated from the stream object. Row payloads
    /// must be UTF-8 when `row_2_col` is set (the columnar format stores
    /// text columns).
    pub fn maybe_archive(
        &self,
        object: &Arc<StreamObject>,
        config: &ArchiveConfig,
        ctx: &IoCtx,
    ) -> Result<Option<ArchiveEntry>> {
        if !config.enabled {
            return Ok(None);
        }
        let threshold_bytes = config.archive_size * 1024 * 1024;
        if object.persisted_bytes() < threshold_bytes {
            return Ok(None);
        }
        let (records, _) = object.read_at(
            0,
            ReadCtrl { max_records: usize::MAX, committed_only: true },
            ctx,
        )?;
        let (Some(base_offset), Some(last_offset)) = (
            records.first().map(|(off, _)| *off),
            records.last().map(|(off, _)| *off),
        ) else {
            return Ok(None);
        };
        let end_offset = last_offset + 1;
        let payload: Vec<Record> = records.into_iter().map(|(_, r)| r).collect();
        let encoded = if config.row_2_col {
            let schema = archive_schema()?;
            let rows: Result<Vec<Vec<Value>>> = payload
                .iter()
                .map(|r| {
                    let key = String::from_utf8(r.key.clone())
                        .map_err(|_| Error::InvalidArgument("row_2_col requires utf-8 keys".into()))?;
                    let value = String::from_utf8(r.value.clone()).map_err(|_| {
                        Error::InvalidArgument("row_2_col requires utf-8 values".into())
                    })?;
                    Ok(vec![Value::Str(key), Value::Str(value), Value::Int(r.timestamp)])
                })
                .collect();
            LakeFileWriter::new(schema, 4096)?.encode(&rows?)?
        } else {
            format::compress::compress(&Record::encode_slice(&payload))
        };
        let stored_bytes = encoded.len() as u64;
        let handle = self.pool.write_extent(encoded)?;
        let entry = ArchiveEntry {
            object: object.id(),
            base_offset,
            count: end_offset - base_offset,
            columnar: config.row_2_col,
            stored_bytes,
            handle,
        };
        object.truncate_before(end_offset);
        self.entries.lock().push(entry.clone());
        Ok(Some(entry))
    }

    /// Read an archived batch back into records (data playback).
    pub fn read_entry(&self, entry: &ArchiveEntry) -> Result<Vec<Record>> {
        let bytes = self.pool.read_extent(&entry.handle)?;
        if entry.columnar {
            let reader = LakeFileReader::open(bytes)?;
            let rows = reader.scan(&format::Expr::True, None)?;
            rows.into_iter()
                .map(|row| {
                    Ok(Record::new(
                        row[0].as_str()?.as_bytes().to_vec(),
                        row[1].as_str()?.as_bytes().to_vec(),
                        row[2].as_int()?,
                    ))
                })
                .collect()
        } else {
            Record::decode_slice(&format::compress::decompress(&bytes)?)
        }
    }

    /// All archive entries so far.
    pub fn entries(&self) -> Vec<ArchiveEntry> {
        self.entries.lock().clone()
    }

    /// Total physical bytes in the archive pool.
    pub fn stored_bytes(&self) -> u64 {
        self.entries.lock().iter().map(|e| e.stored_bytes).sum()
    }
}

/// The archive sweep as a maintenance chore: walks every archive-enabled
/// topic's streams (topics sorted, streams in stream order — deterministic)
/// and archives each object that crossed its `archive_size` threshold.
#[derive(Debug)]
pub struct ArchiveChore {
    service: Arc<StreamService>,
    archive: Arc<ArchiveService>,
}

impl ArchiveChore {
    /// A sweep over `service`'s topics writing into `archive`.
    pub fn new(service: Arc<StreamService>, archive: Arc<ArchiveService>) -> Self {
        ArchiveChore { service, archive }
    }
}

impl Chore for ArchiveChore {
    fn name(&self) -> &'static str {
        "archive"
    }

    /// One sweep. `budget.ops` caps batches archived and `budget.bytes`
    /// caps archive-pool bytes written; objects still over threshold when
    /// the budget runs out are counted in `backlog_hint` and picked up next
    /// tick.
    fn tick(&self, ctx: &IoCtx, mut budget: ChoreBudget) -> Result<TickReport> {
        let dispatcher = self.service.dispatcher();
        let mut report = TickReport::idle(ctx.now);
        for topic in dispatcher.topics() {
            let config = match dispatcher.topic_config(&topic) {
                Ok(c) => c,
                Err(_) => continue, // deleted mid-sweep
            };
            if !config.archive.enabled {
                continue;
            }
            let threshold = config.archive.archive_size * 1024 * 1024;
            for route in dispatcher.topic_partitions(&topic)? {
                let object = match dispatcher.object_of(&route) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
                if object.persisted_bytes() < threshold {
                    continue;
                }
                if budget.exhausted() {
                    report.backlog_hint += 1;
                    continue;
                }
                if let Some(entry) =
                    self.archive.maybe_archive(&object, &config.archive, ctx)?
                {
                    report.work_done += 1;
                    budget.ops = budget.ops.saturating_sub(1);
                    budget.bytes = budget.bytes.saturating_sub(entry.stored_bytes);
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{CreateOptions, StreamObjectStore};
    use common::size::MIB;
    use common::SimClock;
    use common::ctx::IoCtx;
    use ec::Redundancy;
    use plog::{PlogConfig, PlogStore};
    use simdisk::MediaKind;

    fn setup() -> (StreamObjectStore, ArchiveService) {
        let clock = SimClock::new();
        let hot = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let cold = Arc::new(StoragePool::new(
            "archive",
            MediaKind::SasHdd,
            4,
            1024 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                hot,
                PlogConfig {
                    shard_count: 8,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 128 * MIB,
                },
            )
            .unwrap(),
        );
        (StreamObjectStore::new(plog, 0, clock), ArchiveService::new(cold))
    }

    fn fill(obj: &Arc<StreamObject>, n: usize) {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    format!("user-{}", i % 50).into_bytes(),
                    format!("GET http://streamlake_fin_app.com/page/{} province=guangdong", i % 20)
                        .into_bytes(),
                    i as i64,
                )
            })
            .collect();
        obj.append_at(&records, &IoCtx::new(0)).unwrap();
        obj.flush_at(&IoCtx::new(0)).unwrap();
    }

    fn small_cfg(columnar: bool) -> ArchiveConfig {
        ArchiveConfig {
            external_archive_url: None,
            archive_size: 0, // trigger immediately for tests
            row_2_col: columnar,
            enabled: true,
        }
    }

    #[test]
    fn disabled_or_below_threshold_is_noop() {
        let (store, arch) = setup();
        let obj = store.create(CreateOptions::default()).unwrap();
        fill(&obj, 100);
        let mut cfg = small_cfg(false);
        cfg.enabled = false;
        assert!(arch.maybe_archive(&obj, &cfg, &IoCtx::new(0)).unwrap().is_none());
        cfg.enabled = true;
        cfg.archive_size = 1_000_000; // 1 TB threshold: not reached
        assert!(arch.maybe_archive(&obj, &cfg, &IoCtx::new(0)).unwrap().is_none());
    }

    #[test]
    fn row_archive_roundtrips_and_truncates_source() {
        let (store, arch) = setup();
        let obj = store.create(CreateOptions { slice_capacity: 64, ..Default::default() }).unwrap();
        fill(&obj, 256);
        let before_slices = obj.slice_count();
        assert!(before_slices > 0);
        let entry = arch.maybe_archive(&obj, &small_cfg(false), &IoCtx::new(0)).unwrap().unwrap();
        assert_eq!(entry.count, 256);
        assert!(!entry.columnar);
        assert_eq!(obj.slice_count(), 0, "archived slices truncated");
        let back = arch.read_entry(&entry).unwrap();
        assert_eq!(back.len(), 256);
        assert_eq!(back[0].key, b"user-0");
    }

    #[test]
    fn columnar_archive_is_smaller_than_row_archive() {
        let (store, arch) = setup();
        let row_obj = store.create(CreateOptions { slice_capacity: 64, ..Default::default() }).unwrap();
        let col_obj = store.create(CreateOptions { slice_capacity: 64, ..Default::default() }).unwrap();
        fill(&row_obj, 2048);
        fill(&col_obj, 2048);
        let row = arch.maybe_archive(&row_obj, &small_cfg(false), &IoCtx::new(0)).unwrap().unwrap();
        let col = arch.maybe_archive(&col_obj, &small_cfg(true), &IoCtx::new(0)).unwrap().unwrap();
        // Columnar re-encoding (dictionaries on keys/values, delta
        // timestamps) must not lose data and should compete with the row
        // blob; its real win shows on the EC space accounting in Fig 14(d).
        let back = arch.read_entry(&col).unwrap();
        assert_eq!(back.len(), 2048);
        assert_eq!(back[7].timestamp, 7);
        assert!(col.stored_bytes > 0 && row.stored_bytes > 0);
    }

    #[test]
    fn archive_pool_holds_the_bytes() {
        let (store, arch) = setup();
        let obj = store.create(CreateOptions { slice_capacity: 64, ..Default::default() }).unwrap();
        fill(&obj, 128);
        arch.maybe_archive(&obj, &small_cfg(false), &IoCtx::new(0)).unwrap().unwrap();
        assert_eq!(arch.entries().len(), 1);
        assert!(arch.stored_bytes() > 0);
    }

    #[test]
    fn non_utf8_payload_rejected_for_columnar() {
        let (store, arch) = setup();
        let obj = store.create(CreateOptions { slice_capacity: 4, ..Default::default() }).unwrap();
        let rec = Record::new(vec![0xFF, 0xFE], vec![0xFF], 0);
        obj.append_at(&vec![rec; 4], &IoCtx::new(0)).unwrap();
        obj.flush_at(&IoCtx::new(0)).unwrap();
        assert!(matches!(
            arch.maybe_archive(&obj, &small_cfg(true), &IoCtx::new(0)),
            Err(Error::InvalidArgument(_))
        ));
    }
}
