//! Message records.
//!
//! A record is a key-value pair with a producer timestamp and optional
//! transactional/idempotence metadata. Records serialize to a compact wire
//! form for PLog persistence; a slice of up to 256 records is the unit the
//! stream object writes (§IV-A, Fig 4).

use common::varint;
use common::{Error, Result};

/// A key-value message record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Partitioning/message key (may be empty).
    pub key: Vec<u8>,
    /// Message payload.
    pub value: Vec<u8>,
    /// Producer-assigned timestamp (epoch milliseconds).
    pub timestamp: i64,
    /// Transaction id, when produced transactionally.
    pub txn: Option<u64>,
    /// `(producer_id, sequence)` for idempotent dedup, when present.
    pub producer_seq: Option<(u64, u64)>,
}

impl Record {
    /// A plain (non-transactional) record.
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>, timestamp: i64) -> Self {
        Record {
            key: key.into(),
            value: value.into(),
            timestamp,
            txn: None,
            producer_seq: None,
        }
    }

    /// Approximate in-memory size, used for quota and batch accounting.
    pub fn size_bytes(&self) -> usize {
        self.key.len() + self.value.len() + 24
    }

    /// The stable 64-bit hash of this record's key — the value every
    /// built-in [`crate::partition::Partitioner`] decision reduces, so
    /// clients can predict (and tests can assert) where a record lands.
    pub fn key_hash(&self) -> u64 {
        crate::partition::stable_key_hash(&self.key)
    }

    /// The partition of a `partition_count`-partition topic this record
    /// routes to under the default key-hash policy.
    pub fn partition_of(&self, partition_count: u32) -> u32 {
        crate::partition::partition_for_key(&self.key, partition_count)
    }

    /// Serialize into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        if self.txn.is_some() {
            flags |= 1;
        }
        if self.producer_seq.is_some() {
            flags |= 2;
        }
        out.push(flags);
        varint::encode_i64(self.timestamp, out);
        if let Some(t) = self.txn {
            varint::encode_u64(t, out);
        }
        if let Some((pid, seq)) = self.producer_seq {
            varint::encode_u64(pid, out);
            varint::encode_u64(seq, out);
        }
        varint::encode_u64(self.key.len() as u64, out);
        out.extend_from_slice(&self.key);
        varint::encode_u64(self.value.len() as u64, out);
        out.extend_from_slice(&self.value);
    }

    /// Decode one record; returns it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Record, usize)> {
        let flags = *buf
            .first()
            .ok_or_else(|| Error::Corruption("empty record buffer".into()))?;
        let mut off = 1usize;
        let (timestamp, n) = varint::decode_i64(&buf[off..])?;
        off += n;
        let txn = if flags & 1 != 0 {
            let (t, n) = varint::decode_u64(&buf[off..])?;
            off += n;
            Some(t)
        } else {
            None
        };
        let producer_seq = if flags & 2 != 0 {
            let (pid, n) = varint::decode_u64(&buf[off..])?;
            off += n;
            let (seq, n) = varint::decode_u64(&buf[off..])?;
            off += n;
            Some((pid, seq))
        } else {
            None
        };
        let (klen, n) = varint::decode_u64(&buf[off..])?;
        off += n;
        let key = buf
            .get(off..off + klen as usize)
            .ok_or_else(|| Error::Corruption("record truncated in key".into()))?
            .to_vec();
        off += klen as usize;
        let (vlen, n) = varint::decode_u64(&buf[off..])?;
        off += n;
        let value = buf
            .get(off..off + vlen as usize)
            .ok_or_else(|| Error::Corruption("record truncated in value".into()))?
            .to_vec();
        off += vlen as usize;
        Ok((Record { key, value, timestamp, txn, producer_seq }, off))
    }

    /// Serialize a slice of records (the PLog persistence unit).
    pub fn encode_slice(records: &[Record]) -> Vec<u8> {
        let mut out = Vec::with_capacity(records.iter().map(|r| r.size_bytes()).sum());
        varint::encode_u64(records.len() as u64, &mut out);
        for r in records {
            r.encode(&mut out);
        }
        out
    }

    /// Decode a slice produced by [`encode_slice`](Self::encode_slice).
    pub fn decode_slice(buf: &[u8]) -> Result<Vec<Record>> {
        let (count, mut off) = varint::decode_u64(buf)?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (r, n) = Record::decode(&buf[off..])?;
            off += n;
            out.push(r);
        }
        if off != buf.len() {
            return Err(Error::Corruption("trailing bytes after record slice".into()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_record_roundtrip() {
        let r = Record::new(b"k1".to_vec(), b"hello world".to_vec(), 1_656_806_400_000);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (back, used) = Record::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn transactional_metadata_roundtrips() {
        let mut r = Record::new(b"k".to_vec(), b"v".to_vec(), 7);
        r.txn = Some(99);
        r.producer_seq = Some((5, 12345));
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(Record::decode(&buf).unwrap().0, r);
    }

    #[test]
    fn slice_roundtrip_and_trailing_garbage() {
        let records: Vec<Record> = (0..10)
            .map(|i| Record::new(format!("k{i}").into_bytes(), vec![i as u8; 100], i))
            .collect();
        let enc = Record::encode_slice(&records);
        assert_eq!(Record::decode_slice(&enc).unwrap(), records);
        let mut bad = enc.clone();
        bad.push(0);
        assert!(Record::decode_slice(&bad).is_err());
    }

    #[test]
    fn truncation_is_corruption() {
        let r = Record::new(b"key".to_vec(), b"value".to_vec(), 1);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(Record::decode(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    proptest! {
        #[test]
        fn arbitrary_roundtrip(
            key in proptest::collection::vec(any::<u8>(), 0..64),
            value in proptest::collection::vec(any::<u8>(), 0..256),
            ts in any::<i64>(),
            txn in proptest::option::of(any::<u64>()),
            pseq in proptest::option::of((any::<u64>(), any::<u64>())),
        ) {
            let r = Record { key, value, timestamp: ts, txn, producer_seq: pseq };
            let mut buf = Vec::new();
            r.encode(&mut buf);
            let (back, used) = Record::decode(&buf).unwrap();
            prop_assert_eq!(back, r);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn slice_roundtrip_arbitrary(n in 0usize..64, seed in any::<u8>()) {
            let records: Vec<Record> = (0..n)
                .map(|i| Record::new(vec![seed, i as u8], vec![i as u8; i % 32], i as i64))
                .collect();
            prop_assert_eq!(
                Record::decode_slice(&Record::encode_slice(&records)).unwrap(),
                records
            );
        }
    }
}
