//! Exactly-once transactions (§V-A, "Delivery Guarantee" item 4).
//!
//! "The system provides exactly-once semantics through a transaction
//! manager and the two-phase commit protocol. This tracks participant
//! actions and ensures that all results in a transaction are visible or
//! invisible at the same time."
//!
//! Participants are the stream objects a transaction produced into. Phase
//! one (`prepare`) checks every participant still holds the transaction
//! open; phase two flips visibility on all of them. Any prepare failure
//! aborts the transaction on every participant.

use crate::object::StreamObject;
use common::{Error, Result, TxnId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

#[derive(Debug, Default)]
struct TxnState {
    participants: Vec<Arc<StreamObject>>,
}

/// The transaction coordinator.
#[derive(Debug)]
pub struct TxnManager {
    next: AtomicU64,
    active: TrackedMutex<BTreeMap<u64, TxnState>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

impl TxnManager {
    /// A fresh coordinator.
    pub fn new() -> Self {
        TxnManager { next: AtomicU64::new(1), active: TrackedMutex::new("stream.txn.active", BTreeMap::new()) }
    }

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.active.lock().insert(id, TxnState::default());
        TxnId(id)
    }

    /// Record that `txn` produced into `object` (idempotent per object).
    pub fn register_participant(&self, txn: TxnId, object: Arc<StreamObject>) -> Result<()> {
        let mut active = self.active.lock();
        let st = active
            .get_mut(&txn.raw())
            .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
        if !st.participants.iter().any(|p| p.id() == object.id()) {
            st.participants.push(object);
        }
        Ok(())
    }

    /// Number of participants currently registered for `txn`.
    pub fn participant_count(&self, txn: TxnId) -> usize {
        self.active
            .lock()
            .get(&txn.raw())
            .map_or(0, |s| s.participants.len())
    }

    /// Two-phase commit. On any prepare failure the transaction is aborted
    /// everywhere and `TxnAborted` is returned.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let st = self
            .active
            .lock()
            .remove(&txn.raw())
            .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
        // Phase 1: prepare — every participant must still hold the txn open.
        let all_prepared = st.participants.iter().all(|p| p.prepared(txn.raw()));
        if !all_prepared {
            for p in &st.participants {
                p.abort_txn(txn.raw());
            }
            return Err(Error::TxnAborted(format!(
                "transaction {txn}: a participant failed to prepare"
            )));
        }
        // Phase 2: commit everywhere. Participants answered prepare, so this
        // phase cannot fail (crash recovery would replay the decision).
        for p in &st.participants {
            p.commit_txn(txn.raw());
        }
        Ok(())
    }

    /// Abort `txn` on every participant.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let st = self
            .active
            .lock()
            .remove(&txn.raw())
            .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
        for p in &st.participants {
            p.abort_txn(txn.raw());
        }
        Ok(())
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ctx::IoCtx;
    use crate::object::{CreateOptions, ReadCtrl, StreamObjectStore};
    use crate::record::Record;
    use common::size::MIB;
    use common::SimClock;
    use ec::Redundancy;
    use plog::{PlogConfig, PlogStore};
    use simdisk::{MediaKind, StoragePool};

    fn object_store() -> StreamObjectStore {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 8,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        StreamObjectStore::new(plog, 0, clock)
    }

    fn txn_record(txn: TxnId, v: &[u8]) -> Record {
        let mut r = Record::new(b"k".to_vec(), v.to_vec(), 0);
        r.txn = Some(txn.raw());
        r
    }

    #[test]
    fn commit_makes_all_streams_visible_atomically() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let b = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"to-a")], &IoCtx::new(0)).unwrap();
        b.append_at(&[txn_record(txn, b"to-b")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.register_participant(txn, b.clone()).unwrap();
        assert_eq!(mgr.participant_count(txn), 2);

        let ctrl = ReadCtrl::default();
        assert!(a.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        assert!(b.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        mgr.commit(txn).unwrap();
        assert_eq!(a.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.len(), 1);
        assert_eq!(b.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.len(), 1);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn abort_hides_everywhere() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let b = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        b.append_at(&[txn_record(txn, b"y")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.register_participant(txn, b.clone()).unwrap();
        mgr.abort(txn).unwrap();
        let ctrl = ReadCtrl::default();
        assert!(a.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        assert!(b.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
    }

    #[test]
    fn failed_prepare_aborts_all_participants() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let b = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        b.append_at(&[txn_record(txn, b"y")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.register_participant(txn, b.clone()).unwrap();
        // Participant b fails before commit (destroyed object cannot prepare).
        store.destroy(b.id()).unwrap();
        assert!(matches!(mgr.commit(txn), Err(Error::TxnAborted(_))));
        // Survivor's records are aborted, never visible.
        assert!(a.read_at(0, ReadCtrl::default(), &IoCtx::new(0)).unwrap().0.is_empty());
    }

    #[test]
    fn unknown_txn_operations_fail() {
        let mgr = TxnManager::new();
        assert!(mgr.commit(TxnId(999)).is_err());
        assert!(mgr.abort(TxnId(999)).is_err());
    }

    #[test]
    fn double_commit_is_not_found() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a).unwrap();
        mgr.commit(txn).unwrap();
        assert!(matches!(mgr.commit(txn), Err(Error::NotFound(_))));
    }
}
