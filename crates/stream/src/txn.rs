//! Exactly-once transactions (§V-A, "Delivery Guarantee" item 4).
//!
//! "The system provides exactly-once semantics through a transaction
//! manager and the two-phase commit protocol. This tracks participant
//! actions and ensures that all results in a transaction are visible or
//! invisible at the same time."
//!
//! The coordinator is now a thin layer over [`MvccStore`]: each stream
//! transaction is an MVCC transaction record, and each participant
//! registration writes a provisional intent under `s/<txn>/<object>`.
//! The durable commit point is the MVCC record flip ([`commit_decide`]
//! writes one WAL frame); participant visibility flips happen during
//! *resolution*, so a coordinator crash between decide and resolve can be
//! recovered by replaying the surviving intents ([`MvccStore::decided`])
//! — atomicity no longer depends on the coordinator staying alive.
//!
//! [`commit_decide`]: MvccStore::commit_decide

use crate::object::StreamObject;
use common::{Error, Result, TxnId};
use kvstore::MvccStore;
use std::collections::BTreeMap;
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// Key prefix for stream-participant intents in the MVCC keyspace.
pub const PARTICIPANT_PREFIX: &[u8] = b"s/";

/// The MVCC user key recording that `txn` produced into `object`.
pub fn participant_key(txn: u64, object: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(PARTICIPANT_PREFIX.len() + 17);
    k.extend_from_slice(PARTICIPANT_PREFIX);
    k.extend_from_slice(&txn.to_be_bytes());
    k.push(b'/');
    k.extend_from_slice(&object.to_be_bytes());
    k
}

/// Extract the object id a participant-intent value points at.
pub fn participant_object(value: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(value.try_into().ok()?))
}

#[derive(Debug, Default)]
struct TxnState {
    participants: Vec<Arc<StreamObject>>,
}

/// The transaction coordinator.
#[derive(Debug)]
pub struct TxnManager {
    mvcc: Arc<MvccStore>,
    active: TrackedMutex<BTreeMap<u64, TxnState>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

impl TxnManager {
    /// A fresh coordinator over a private MVCC store.
    pub fn new() -> Self {
        TxnManager::with_mvcc(Arc::new(MvccStore::new()))
    }

    /// A coordinator over a shared MVCC store (so stream transactions can
    /// atomically span other subsystems writing the same store).
    pub fn with_mvcc(mvcc: Arc<MvccStore>) -> Self {
        TxnManager {
            mvcc,
            active: TrackedMutex::new("stream.txn.active", BTreeMap::new()),
        }
    }

    /// The MVCC store backing transaction records and intents.
    pub fn mvcc(&self) -> &Arc<MvccStore> {
        &self.mvcc
    }

    /// Begin a transaction: a durable PENDING record in the MVCC store.
    pub fn begin(&self) -> TxnId {
        let handle = self.mvcc.begin();
        self.active.lock().insert(handle.id, TxnState::default());
        TxnId(handle.id)
    }

    /// Record that `txn` produced into `object` (idempotent per object).
    /// Writes a provisional intent so the membership survives a
    /// coordinator crash.
    pub fn register_participant(&self, txn: TxnId, object: Arc<StreamObject>) -> Result<()> {
        let mut active = self.active.lock();
        let st = active
            .get_mut(&txn.raw())
            .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
        if !st.participants.iter().any(|p| p.id() == object.id()) {
            let key = participant_key(txn.raw(), object.id().raw());
            self.mvcc
                .put(txn.raw(), &key, &object.id().raw().to_be_bytes())?;
            st.participants.push(object);
        }
        Ok(())
    }

    /// Number of participants currently registered for `txn`.
    pub fn participant_count(&self, txn: TxnId) -> usize {
        self.active
            .lock()
            .get(&txn.raw())
            .map_or(0, |s| s.participants.len())
    }

    /// Phase 1 + the commit point: prepare every participant, then flip the
    /// MVCC record to COMMITTED (one WAL frame — the durable decision).
    /// Participant visibility does *not* change yet; callers follow up with
    /// [`resolve`](Self::resolve). Any prepare failure aborts everywhere.
    pub fn prepare_decide(&self, txn: TxnId) -> Result<u64> {
        let participants = {
            let active = self.active.lock();
            let st = active
                .get(&txn.raw())
                .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
            st.participants.clone()
        };
        // Phase 1: prepare — every participant must still hold the txn open.
        if !participants.iter().all(|p| p.prepared(txn.raw())) {
            for p in &participants {
                p.abort_txn(txn.raw());
            }
            self.active.lock().remove(&txn.raw());
            self.mvcc.abort(txn.raw())?;
            return Err(Error::TxnAborted(format!(
                "transaction {txn}: a participant failed to prepare"
            )));
        }
        match self.mvcc.commit_decide(txn.raw()) {
            Ok(commit_ts) => Ok(commit_ts),
            Err(e) => {
                // commit_decide already aborted the MVCC record; mirror that
                // on the participants and drop the coordinator entry.
                for p in &participants {
                    p.abort_txn(txn.raw());
                }
                self.active.lock().remove(&txn.raw());
                Err(e)
            }
        }
    }

    /// Phase 2: flip visibility on every participant, then resolve the MVCC
    /// intents into committed versions and delete the record.
    pub fn resolve(&self, txn: TxnId) -> Result<()> {
        let st = self
            .active
            .lock()
            .remove(&txn.raw())
            .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
        // The decision is durable; flips cannot fail (crash recovery would
        // replay them from the surviving intents).
        for p in &st.participants {
            p.commit_txn(txn.raw());
        }
        self.mvcc.resolve_committed(txn.raw())?;
        Ok(())
    }

    /// Two-phase commit. On any prepare failure the transaction is aborted
    /// everywhere and `TxnAborted` is returned.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.prepare_decide(txn)?;
        self.resolve(txn)
    }

    /// Abort `txn` on every participant and clean its MVCC intents.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let st = self
            .active
            .lock()
            .remove(&txn.raw())
            .ok_or_else(|| Error::NotFound(format!("transaction {txn}")))?;
        for p in &st.participants {
            p.abort_txn(txn.raw());
        }
        self.mvcc.abort(txn.raw())?;
        Ok(())
    }

    /// Drop the in-memory coordinator entry for `txn` without touching
    /// participants or the MVCC record. Recovery uses this after replaying
    /// a decided transaction's effects straight from its intents — the
    /// coordinator entry (if this process survived) is stale by then.
    pub fn forget(&self, txn: TxnId) {
        self.active.lock().remove(&txn.raw());
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::ctx::IoCtx;
    use crate::object::{CreateOptions, ReadCtrl, StreamObjectStore};
    use crate::record::Record;
    use common::size::MIB;
    use common::SimClock;
    use ec::Redundancy;
    use plog::{PlogConfig, PlogStore};
    use simdisk::{MediaKind, StoragePool};

    fn object_store() -> StreamObjectStore {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 8,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        StreamObjectStore::new(plog, 0, clock)
    }

    fn txn_record(txn: TxnId, v: &[u8]) -> Record {
        let mut r = Record::new(b"k".to_vec(), v.to_vec(), 0);
        r.txn = Some(txn.raw());
        r
    }

    #[test]
    fn commit_makes_all_streams_visible_atomically() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let b = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"to-a")], &IoCtx::new(0)).unwrap();
        b.append_at(&[txn_record(txn, b"to-b")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.register_participant(txn, b.clone()).unwrap();
        assert_eq!(mgr.participant_count(txn), 2);

        let ctrl = ReadCtrl::default();
        assert!(a.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        assert!(b.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        mgr.commit(txn).unwrap();
        assert_eq!(a.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.len(), 1);
        assert_eq!(b.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.len(), 1);
        assert_eq!(mgr.active_count(), 0);
        // Resolution also cleaned the MVCC side: no intents, no records.
        assert_eq!(mgr.mvcc().pending_intents(), 0);
        assert_eq!(mgr.mvcc().active_count(), 0);
    }

    #[test]
    fn abort_hides_everywhere() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let b = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        b.append_at(&[txn_record(txn, b"y")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.register_participant(txn, b.clone()).unwrap();
        mgr.abort(txn).unwrap();
        let ctrl = ReadCtrl::default();
        assert!(a.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        assert!(b.read_at(0, ctrl, &IoCtx::new(0)).unwrap().0.is_empty());
        assert_eq!(mgr.mvcc().pending_intents(), 0);
    }

    #[test]
    fn failed_prepare_aborts_all_participants() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let b = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        b.append_at(&[txn_record(txn, b"y")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.register_participant(txn, b.clone()).unwrap();
        // Participant b fails before commit (destroyed object cannot prepare).
        store.destroy(b.id()).unwrap();
        assert!(matches!(mgr.commit(txn), Err(Error::TxnAborted(_))));
        // Survivor's records are aborted, never visible.
        assert!(a.read_at(0, ReadCtrl::default(), &IoCtx::new(0)).unwrap().0.is_empty());
        // And the MVCC record + intents are gone.
        assert_eq!(mgr.mvcc().pending_intents(), 0);
        assert_eq!(mgr.mvcc().active_count(), 0);
    }

    #[test]
    fn unknown_txn_operations_fail() {
        let mgr = TxnManager::new();
        assert!(mgr.commit(TxnId(999)).is_err());
        assert!(mgr.abort(TxnId(999)).is_err());
    }

    #[test]
    fn double_commit_is_not_found() {
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a).unwrap();
        mgr.commit(txn).unwrap();
        assert!(matches!(mgr.commit(txn), Err(Error::NotFound(_))));
    }

    #[test]
    fn decide_without_resolve_leaves_replayable_intents() {
        // Simulates the coordinator crashing between the commit point and
        // resolution: the decision and the participant set must both be
        // recoverable from the MVCC store.
        let store = object_store();
        let a = store.create(CreateOptions::default()).unwrap();
        let mgr = TxnManager::new();
        let txn = mgr.begin();
        a.append_at(&[txn_record(txn, b"x")], &IoCtx::new(0)).unwrap();
        mgr.register_participant(txn, a.clone()).unwrap();
        mgr.prepare_decide(txn).unwrap();
        // Not yet visible: resolution has not run.
        assert!(a.read_at(0, ReadCtrl::default(), &IoCtx::new(0)).unwrap().0.is_empty());
        let decided = mgr.mvcc().decided().unwrap();
        assert_eq!(decided.len(), 1);
        assert_eq!(decided[0].txn, txn.raw());
        let (key, value) = &decided[0].writes[0];
        assert!(key.starts_with(PARTICIPANT_PREFIX));
        assert_eq!(
            participant_object(value.as_deref().unwrap()),
            Some(a.id().raw())
        );
        // A recovering coordinator replays the flip, then resolves.
        a.commit_txn(txn.raw());
        mgr.resolve(txn).unwrap();
        assert_eq!(a.read_at(0, ReadCtrl::default(), &IoCtx::new(0)).unwrap().0.len(), 1);
        assert_eq!(mgr.mvcc().pending_intents(), 0);
    }
}
