//! The stream dispatcher (§V-A).
//!
//! The dispatcher owns the messaging-service metadata: "the relationships
//! among topics, streams, stream workers, and stream objects are stored as
//! key-value pairs in a fault-tolerant key-value store". Topics are sets of
//! **partitions** — each an ordered log backed by a stream object pinned to
//! one PLog shard (`plog::placement::shard_for_partition`). The dispatcher
//! creates topics, assigns partitions to workers round-robin, routes
//! produce/fetch requests, and — crucially for Fig 14(c) — rescales the
//! worker set or the partition count *without data migration*: only KV
//! mappings change, each charged a small metadata-update cost in virtual
//! time.

use crate::config::TopicConfig;
use crate::object::{CreateOptions, StreamObject, StreamObjectStore};
use crate::partition::partition_for_key;
use common::clock::{micros, Nanos};
use common::ctx::{IoCtx, Phase};
use common::metrics::Metrics;
use common::{Error, ObjectId, Result, WorkerId};
use kvstore::SharedKv;
use std::collections::BTreeMap;
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// Virtual cost of one metadata update (KV write + topology refresh push).
pub const METADATA_OP_COST: Nanos = micros(500);

/// One partition's routing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionRoute {
    /// Partition index within its topic.
    pub partition_idx: u32,
    /// Stream object backing the partition.
    pub object_id: ObjectId,
    /// Worker currently serving the partition.
    pub worker: WorkerId,
}

/// Report of a rescaling operation (Fig 14(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescaleReport {
    /// Metadata entries created or updated.
    pub metadata_updates: u64,
    /// Bytes of message data moved between nodes (always 0 by design).
    pub bytes_migrated: u64,
    /// Virtual time the rescale took.
    pub elapsed: Nanos,
}

#[derive(Debug, Default)]
struct Topology {
    /// topic → per-partition routes.
    topics: BTreeMap<String, Vec<PartitionRoute>>,
    /// topic → config.
    configs: BTreeMap<String, TopicConfig>,
    workers: Vec<WorkerId>,
    next_worker_rr: usize,
}

/// The dispatcher service.
#[derive(Debug)]
pub struct StreamDispatcher {
    objects: Arc<StreamObjectStore>,
    kv: SharedKv,
    topo: TrackedMutex<Topology>,
    metrics: Metrics,
}

impl StreamDispatcher {
    /// Create a dispatcher over the given object store.
    pub fn new(objects: Arc<StreamObjectStore>) -> Self {
        Self::with_metrics(objects, Metrics::new())
    }

    /// Create a dispatcher reporting into an existing metrics registry.
    pub fn with_metrics(objects: Arc<StreamObjectStore>, metrics: Metrics) -> Self {
        StreamDispatcher {
            objects,
            kv: SharedKv::new(),
            topo: TrackedMutex::new("stream.dispatcher.topo", Topology::default()),
            metrics,
        }
    }

    /// Register a stream worker; newly created partitions may be assigned
    /// to it.
    pub fn register_worker(&self, id: WorkerId) {
        let mut topo = self.topo.lock();
        if !topo.workers.contains(&id) {
            topo.workers.push(id);
            self.kv.put(format!("worker/{}", id.raw()), b"up".to_vec());
        }
    }

    /// Deregister a worker, reassigning its partitions to the survivors.
    /// Returns the rescale report (metadata-only, no data moves).
    pub fn deregister_worker(&self, id: WorkerId, ctx: &IoCtx) -> Result<RescaleReport> {
        let mut topo = self.topo.lock();
        if topo.workers.len() <= 1 {
            return Err(Error::InvalidArgument("cannot remove the last worker".into()));
        }
        topo.workers.retain(|w| *w != id);
        self.kv.delete(format!("worker/{}", id.raw()));
        let workers = topo.workers.clone();
        let mut updates = 1u64;
        let mut rr = 0usize;
        for (topic, routes) in topo.topics.iter_mut() {
            for route in routes.iter_mut() {
                if route.worker == id {
                    route.worker = workers[rr % workers.len()];
                    rr += 1;
                    updates += 1;
                    self.kv.put(
                        route_key(topic, route.partition_idx),
                        encode_route(route),
                    );
                }
            }
        }
        ctx.record(Phase::Meta, ctx.now, updates * METADATA_OP_COST);
        Ok(RescaleReport {
            metadata_updates: updates,
            bytes_migrated: 0,
            elapsed: updates * METADATA_OP_COST,
        })
    }

    /// Currently registered workers.
    pub fn workers(&self) -> Vec<WorkerId> {
        self.topo.lock().workers.clone()
    }

    /// Create a topic with `config.stream_num` partitions, assigned
    /// round-robin (the paper: "streams are added to the stream workers in
    /// a round-robin manner"). Each partition is backed by a fresh stream
    /// object pinned to the shard `shard_for_partition` names, so the
    /// partition→shard mapping is a pure function both layers agree on.
    pub fn create_topic(&self, name: &str, config: TopicConfig, ctx: &IoCtx) -> Result<RescaleReport> {
        let mut topo = self.topo.lock();
        if topo.topics.contains_key(name) {
            return Err(Error::AlreadyExists(format!("topic {name}")));
        }
        if topo.workers.is_empty() {
            return Err(Error::InvalidArgument("no stream workers registered".into()));
        }
        if config.stream_num == 0 {
            return Err(Error::InvalidArgument("stream_num must be positive".into()));
        }
        let mut routes = Vec::with_capacity(config.stream_num as usize);
        let workers = topo.workers.clone();
        for idx in 0..config.stream_num {
            let obj = self.create_partition_object(name, idx, &config)?;
            let worker = workers[topo.next_worker_rr % workers.len()];
            topo.next_worker_rr += 1;
            let route = PartitionRoute { partition_idx: idx, object_id: obj.id(), worker };
            self.kv.put(route_key(name, idx), encode_route(&route));
            routes.push(route);
        }
        let updates = routes.len() as u64 + 1;
        self.kv
            .put(format!("topic/{name}/config"), config.to_json().into_bytes());
        topo.topics.insert(name.to_string(), routes);
        topo.configs.insert(name.to_string(), config);
        ctx.record(Phase::Meta, ctx.now, updates * METADATA_OP_COST);
        Ok(RescaleReport {
            metadata_updates: updates,
            bytes_migrated: 0,
            elapsed: updates * METADATA_OP_COST,
        })
    }

    /// Drop a topic and destroy its stream objects.
    ///
    /// Destroys are best-effort — the route tombstone is what removes the
    /// mapping — but failures are no longer silent: every partition whose
    /// backing object could not be (fully) reclaimed bumps
    /// `stream.topic_destroy_failures`, so leaked extents show up in the
    /// health report instead of vanishing.
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        let mut topo = self.topo.lock();
        let routes = topo
            .topics
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("topic {name}")))?;
        topo.configs.remove(name);
        let mut destroy_failures = 0u64;
        for r in &routes {
            match self.objects.destroy(r.object_id) {
                Ok(outcome) => destroy_failures += outcome.failed_deletes,
                // A racing destroy already removed the object; the
                // tombstone below is authoritative.
                Err(Error::NotFound(_)) => {}
                Err(_) => destroy_failures += 1,
            }
            self.kv.delete(route_key(name, r.partition_idx));
        }
        if destroy_failures > 0 {
            self.metrics.incr("stream.topic_destroy_failures", destroy_failures);
        }
        self.kv.delete(format!("topic/{name}/config"));
        Ok(())
    }

    /// Grow (shrinking is unsupported) a topic to `new_partition_num`
    /// partitions. Existing partitions and their data are untouched —
    /// Fig 14(c)'s migration-free elasticity.
    pub fn scale_topic(&self, name: &str, new_partition_num: u32, ctx: &IoCtx) -> Result<RescaleReport> {
        let mut topo = self.topo.lock();
        let current = topo
            .topics
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("topic {name}")))?
            .len() as u32;
        if new_partition_num < current {
            return Err(Error::Unsupported(
                "shrinking a topic would reorder keys; not supported".into(),
            ));
        }
        let config = topo.configs.get(name).cloned().unwrap_or_default();
        let workers = topo.workers.clone();
        let mut updates = 0u64;
        for idx in current..new_partition_num {
            let obj = self.create_partition_object(name, idx, &config)?;
            let worker = workers[topo.next_worker_rr % workers.len()];
            topo.next_worker_rr += 1;
            let route = PartitionRoute { partition_idx: idx, object_id: obj.id(), worker };
            self.kv.put(route_key(name, idx), encode_route(&route));
            topo.topics
                .get_mut(name)
                .ok_or_else(|| Error::NotFound(format!("topic {name}")))?
                .push(route);
            updates += 1;
        }
        if let Some(c) = topo.configs.get_mut(name) {
            c.stream_num = new_partition_num;
            self.kv
                .put(format!("topic/{name}/config"), c.to_json().into_bytes());
            updates += 1;
        }
        ctx.record(Phase::Meta, ctx.now, updates * METADATA_OP_COST);
        Ok(RescaleReport {
            metadata_updates: updates,
            bytes_migrated: 0,
            elapsed: updates * METADATA_OP_COST,
        })
    }

    /// The partition (and its object) that owns `key` within `topic` under
    /// the default key-hash policy.
    pub fn route(&self, topic: &str, key: &[u8]) -> Result<PartitionRoute> {
        let topo = self.topo.lock();
        let routes = topo
            .topics
            .get(topic)
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))?;
        let idx = partition_for_key(key, routes.len() as u32);
        Ok(routes[idx as usize].clone())
    }

    /// The route of one specific partition.
    pub fn route_partition(&self, topic: &str, partition_idx: u32) -> Result<PartitionRoute> {
        let topo = self.topo.lock();
        let routes = topo
            .topics
            .get(topic)
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))?;
        routes
            .get(partition_idx as usize)
            .cloned()
            .ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "partition {partition_idx} out of range for topic {topic} ({} partitions)",
                    routes.len()
                ))
            })
    }

    /// Number of partitions of `topic`.
    pub fn partition_count(&self, topic: &str) -> Result<u32> {
        self.topo
            .lock()
            .topics
            .get(topic)
            .map(|r| r.len() as u32)
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))
    }

    /// All partition routes of `topic`, in partition order.
    pub fn topic_partitions(&self, topic: &str) -> Result<Vec<PartitionRoute>> {
        self.topo
            .lock()
            .topics
            .get(topic)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))
    }

    /// All topic names, sorted (deterministic enumeration for maintenance
    /// sweeps).
    pub fn topics(&self) -> Vec<String> {
        self.topo.lock().topics.keys().cloned().collect()
    }

    /// The configuration of `topic`.
    pub fn topic_config(&self, topic: &str) -> Result<TopicConfig> {
        self.topo
            .lock()
            .configs
            .get(topic)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))
    }

    /// Resolve a route to its stream object.
    pub fn object_of(&self, route: &PartitionRoute) -> Result<Arc<StreamObject>> {
        self.objects.get(route.object_id)
    }

    /// Commit a consumer-group offset for `topic`'s partition
    /// `partition_idx`. Unfenced low-level write — group-aware callers go
    /// through `GroupCoordinator::commit`, which checks ownership first.
    pub fn commit_offset(&self, group: &str, topic: &str, partition_idx: u32, offset: u64) {
        self.kv.put(
            format!("group/{group}/{topic}/{partition_idx}"),
            offset.to_be_bytes().to_vec(),
        );
    }

    /// Fetch the committed offset for the partition in `group`.
    pub fn committed_offset(&self, group: &str, topic: &str, partition_idx: u32) -> Option<u64> {
        self.kv
            .get(format!("group/{group}/{topic}/{partition_idx}").as_bytes())
            .map(|b| u64::from_be_bytes(b.as_slice().try_into().unwrap_or([0; 8])))
    }

    /// The metadata KV store (inspection / tests).
    pub fn metadata(&self) -> &SharedKv {
        &self.kv
    }

    fn create_partition_object(
        &self,
        topic: &str,
        partition_idx: u32,
        config: &TopicConfig,
    ) -> Result<Arc<StreamObject>> {
        let shard_count = self.objects.plog().config().shard_count;
        let shard =
            plog::placement::shard_for_partition(topic, partition_idx, shard_count) as u32;
        self.objects.create(CreateOptions {
            scm_cache: config.scm_cache,
            shard_hint: Some(shard),
            ..Default::default()
        })
    }
}

fn route_key(topic: &str, idx: u32) -> String {
    format!("topic/{topic}/partition/{idx:08}")
}

fn encode_route(r: &PartitionRoute) -> Vec<u8> {
    format!("{}:{}:{}", r.partition_idx, r.object_id.raw(), r.worker.raw()).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::size::MIB;
    use common::SimClock;
    use ec::Redundancy;
    use plog::{PlogConfig, PlogStore};
    use simdisk::{MediaKind, StoragePool};

    fn dispatcher(workers: usize) -> StreamDispatcher {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 32,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        let store = Arc::new(StreamObjectStore::new(plog, 0, clock));
        let d = StreamDispatcher::new(store);
        for i in 0..workers {
            d.register_worker(WorkerId(i as u64));
        }
        d
    }

    #[test]
    fn create_topic_distributes_partitions_round_robin() {
        let d = dispatcher(3);
        d.create_topic("t", TopicConfig::with_partitions(9), &IoCtx::new(0)).unwrap();
        let routes = d.topic_partitions("t").unwrap();
        assert_eq!(routes.len(), 9);
        let mut per_worker = BTreeMap::new();
        for r in &routes {
            *per_worker.entry(r.worker).or_insert(0u32) += 1;
        }
        assert!(per_worker.values().all(|&c| c == 3), "{per_worker:?}");
    }

    #[test]
    fn duplicate_topic_rejected() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_partitions(1), &IoCtx::new(0)).unwrap();
        assert!(matches!(
            d.create_topic("t", TopicConfig::with_partitions(1), &IoCtx::new(0)),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn routing_is_stable_and_key_based() {
        let d = dispatcher(2);
        d.create_topic("t", TopicConfig::with_partitions(4), &IoCtx::new(0)).unwrap();
        let a = d.route("t", b"user-1").unwrap();
        let b = d.route("t", b"user-1").unwrap();
        assert_eq!(a, b, "same key must route identically");
        // Different keys spread over partitions.
        let hit: std::collections::HashSet<u32> = (0..100)
            .map(|i| d.route("t", format!("user-{i}").as_bytes()).unwrap().partition_idx)
            .collect();
        assert!(hit.len() >= 3);
    }

    #[test]
    fn partitions_map_to_their_declared_shards() {
        let d = dispatcher(2);
        d.create_topic("t", TopicConfig::with_partitions(8), &IoCtx::new(0)).unwrap();
        for route in d.topic_partitions("t").unwrap() {
            let obj = d.object_of(&route).unwrap();
            let want =
                plog::placement::shard_for_partition("t", route.partition_idx, 32) as u32;
            assert_eq!(obj.shard(), want, "partition {} pinned wrong", route.partition_idx);
        }
    }

    #[test]
    fn route_partition_bounds_checked() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_partitions(2), &IoCtx::new(0)).unwrap();
        assert_eq!(d.partition_count("t").unwrap(), 2);
        assert!(d.route_partition("t", 1).is_ok());
        assert!(matches!(d.route_partition("t", 2), Err(Error::InvalidArgument(_))));
        assert!(matches!(d.partition_count("nope"), Err(Error::NotFound(_))));
    }

    #[test]
    fn scale_topic_is_metadata_only_and_fast() {
        // Fig 14(c): 1000 → 10000 partitions in under 10 virtual seconds,
        // zero bytes migrated.
        let d = dispatcher(4);
        d.create_topic("big", TopicConfig::with_partitions(1000), &IoCtx::new(0)).unwrap();
        let report = d.scale_topic("big", 10_000, &IoCtx::new(0)).unwrap();
        assert_eq!(report.bytes_migrated, 0);
        assert_eq!(d.topic_partitions("big").unwrap().len(), 10_000);
        assert!(
            report.elapsed < common::clock::secs(10),
            "rescale took {} ns",
            report.elapsed
        );
    }

    #[test]
    fn shrink_is_unsupported() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_partitions(4), &IoCtx::new(0)).unwrap();
        assert!(matches!(
            d.scale_topic("t", 2, &IoCtx::new(0)),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn worker_removal_reassigns_without_migration() {
        let d = dispatcher(3);
        d.create_topic("t", TopicConfig::with_partitions(6), &IoCtx::new(0)).unwrap();
        let victim = WorkerId(1);
        let before: Vec<ObjectId> = d
            .topic_partitions("t")
            .unwrap()
            .iter()
            .map(|r| r.object_id)
            .collect();
        let report = d.deregister_worker(victim, &IoCtx::new(0)).unwrap();
        assert_eq!(report.bytes_migrated, 0);
        let after = d.topic_partitions("t").unwrap();
        assert!(after.iter().all(|r| r.worker != victim));
        // Stream objects unchanged: data stayed put.
        let after_ids: Vec<ObjectId> = after.iter().map(|r| r.object_id).collect();
        assert_eq!(before, after_ids);
    }

    #[test]
    fn cannot_remove_last_worker() {
        let d = dispatcher(1);
        assert!(d.deregister_worker(WorkerId(0), &IoCtx::new(0)).is_err());
    }

    #[test]
    fn consumer_group_offsets_roundtrip() {
        let d = dispatcher(1);
        assert_eq!(d.committed_offset("g", "t", 0), None);
        d.commit_offset("g", "t", 0, 41);
        d.commit_offset("g", "t", 0, 42);
        assert_eq!(d.committed_offset("g", "t", 0), Some(42));
    }

    #[test]
    fn delete_topic_destroys_objects() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_partitions(3), &IoCtx::new(0)).unwrap();
        assert_eq!(d.objects.len(), 3);
        d.delete_topic("t").unwrap();
        assert_eq!(d.objects.len(), 0);
        assert!(d.route("t", b"k").is_err());
    }

    #[test]
    fn delete_topic_counts_failed_destroys() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_partitions(2), &IoCtx::new(0)).unwrap();
        // Persist a slice per partition so each object owns PLog records.
        for route in d.topic_partitions("t").unwrap() {
            let obj = d.object_of(&route).unwrap();
            obj.append_at(
                &[crate::record::Record::new(b"k".to_vec(), b"v".to_vec(), 0)],
                &IoCtx::new(0),
            )
            .unwrap();
            obj.flush_at(&IoCtx::new(0)).unwrap();
        }
        // Corrupt every PLog index entry: destroys now hit
        // `Error::Corruption` when freeing slices.
        let plog = d.objects.plog();
        for (key, _) in plog.index_for_tests().scan_prefix(b"plog/") {
            plog.index_for_tests().put(key, vec![0xFF]);
        }
        assert_eq!(d.metrics.counter("stream.topic_destroy_failures"), 0);
        d.delete_topic("t").unwrap();
        assert_eq!(
            d.metrics.counter("stream.topic_destroy_failures"),
            2,
            "one failed slice reclamation per partition must be counted"
        );
        // The topology mapping is gone regardless — tombstones are
        // authoritative.
        assert!(d.route("t", b"k").is_err());
    }
}
