//! The stream dispatcher (§V-A).
//!
//! The dispatcher owns the messaging-service metadata: "the relationships
//! among topics, streams, stream workers, and stream objects are stored as
//! key-value pairs in a fault-tolerant key-value store". It creates topics,
//! assigns streams to workers round-robin, routes produce/fetch requests,
//! and — crucially for Fig 14(c) — rescales the worker set or the stream
//! count *without data migration*: only KV mappings change, each charged a
//! small metadata-update cost in virtual time.

use crate::config::TopicConfig;
use crate::object::{CreateOptions, StreamObject, StreamObjectStore};
use crate::placement_key;
use common::clock::{micros, Nanos};
use common::ctx::{IoCtx, Phase};
use common::{Error, ObjectId, Result, WorkerId};
use kvstore::SharedKv;
use std::collections::BTreeMap;
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// Virtual cost of one metadata update (KV write + topology refresh push).
pub const METADATA_OP_COST: Nanos = micros(500);

/// One stream's routing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRoute {
    /// Stream index within its topic.
    pub stream_idx: u32,
    /// Stream object backing the stream.
    pub object_id: ObjectId,
    /// Worker currently serving the stream.
    pub worker: WorkerId,
}

/// Report of a rescaling operation (Fig 14(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescaleReport {
    /// Metadata entries created or updated.
    pub metadata_updates: u64,
    /// Bytes of message data moved between nodes (always 0 by design).
    pub bytes_migrated: u64,
    /// Virtual time the rescale took.
    pub elapsed: Nanos,
}

#[derive(Debug, Default)]
struct Topology {
    /// topic → per-stream routes.
    topics: BTreeMap<String, Vec<StreamRoute>>,
    /// topic → config.
    configs: BTreeMap<String, TopicConfig>,
    workers: Vec<WorkerId>,
    next_worker_rr: usize,
}

/// The dispatcher service.
#[derive(Debug)]
pub struct StreamDispatcher {
    objects: Arc<StreamObjectStore>,
    kv: SharedKv,
    topo: TrackedMutex<Topology>,
}

impl StreamDispatcher {
    /// Create a dispatcher over the given object store.
    pub fn new(objects: Arc<StreamObjectStore>) -> Self {
        StreamDispatcher { objects, kv: SharedKv::new(), topo: TrackedMutex::new("stream.dispatcher.topo", Topology::default()) }
    }

    /// Register a stream worker; newly created streams may be assigned to it.
    pub fn register_worker(&self, id: WorkerId) {
        let mut topo = self.topo.lock();
        if !topo.workers.contains(&id) {
            topo.workers.push(id);
            self.kv.put(format!("worker/{}", id.raw()), b"up".to_vec());
        }
    }

    /// Deregister a worker, reassigning its streams to the survivors.
    /// Returns the rescale report (metadata-only, no data moves).
    pub fn deregister_worker(&self, id: WorkerId, ctx: &IoCtx) -> Result<RescaleReport> {
        let mut topo = self.topo.lock();
        if topo.workers.len() <= 1 {
            return Err(Error::InvalidArgument("cannot remove the last worker".into()));
        }
        topo.workers.retain(|w| *w != id);
        self.kv.delete(format!("worker/{}", id.raw()));
        let workers = topo.workers.clone();
        let mut updates = 1u64;
        let mut rr = 0usize;
        for (topic, routes) in topo.topics.iter_mut() {
            for route in routes.iter_mut() {
                if route.worker == id {
                    route.worker = workers[rr % workers.len()];
                    rr += 1;
                    updates += 1;
                    self.kv.put(
                        route_key(topic, route.stream_idx),
                        encode_route(route),
                    );
                }
            }
        }
        ctx.record(Phase::Meta, ctx.now, updates * METADATA_OP_COST);
        Ok(RescaleReport {
            metadata_updates: updates,
            bytes_migrated: 0,
            elapsed: updates * METADATA_OP_COST,
        })
    }

    /// Currently registered workers.
    pub fn workers(&self) -> Vec<WorkerId> {
        self.topo.lock().workers.clone()
    }

    /// Create a topic with `config.stream_num` streams, assigned round-robin
    /// (the paper: "streams are added to the stream workers in a round-robin
    /// manner"). Each stream is backed by a fresh stream object.
    pub fn create_topic(&self, name: &str, config: TopicConfig, ctx: &IoCtx) -> Result<RescaleReport> {
        let mut topo = self.topo.lock();
        if topo.topics.contains_key(name) {
            return Err(Error::AlreadyExists(format!("topic {name}")));
        }
        if topo.workers.is_empty() {
            return Err(Error::InvalidArgument("no stream workers registered".into()));
        }
        if config.stream_num == 0 {
            return Err(Error::InvalidArgument("stream_num must be positive".into()));
        }
        let mut routes = Vec::with_capacity(config.stream_num as usize);
        let workers = topo.workers.clone();
        for idx in 0..config.stream_num {
            let obj = self.objects.create(CreateOptions {
                scm_cache: config.scm_cache,
                ..Default::default()
            })?;
            let worker = workers[topo.next_worker_rr % workers.len()];
            topo.next_worker_rr += 1;
            let route = StreamRoute { stream_idx: idx, object_id: obj.id(), worker };
            self.kv.put(route_key(name, idx), encode_route(&route));
            routes.push(route);
        }
        let updates = routes.len() as u64 + 1;
        self.kv
            .put(format!("topic/{name}/config"), config.to_json().into_bytes());
        topo.topics.insert(name.to_string(), routes);
        topo.configs.insert(name.to_string(), config);
        ctx.record(Phase::Meta, ctx.now, updates * METADATA_OP_COST);
        Ok(RescaleReport {
            metadata_updates: updates,
            bytes_migrated: 0,
            elapsed: updates * METADATA_OP_COST,
        })
    }

    /// Drop a topic and destroy its stream objects.
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        let mut topo = self.topo.lock();
        let routes = topo
            .topics
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("topic {name}")))?;
        topo.configs.remove(name);
        for r in &routes {
            // Destroy during topic deletion is best-effort; NotFound from a
            // racing destroy is tolerable and the route tombstone below is
            // what removes the mapping.
            // slint:allow(R11): best-effort destroy, tombstone is authoritative
            let _ = self.objects.destroy(r.object_id);
            self.kv.delete(route_key(name, r.stream_idx));
        }
        self.kv.delete(format!("topic/{name}/config"));
        Ok(())
    }

    /// Grow (or shrink is unsupported) a topic to `new_stream_num` streams.
    /// Existing streams and their data are untouched — Fig 14(c)'s
    /// migration-free elasticity.
    pub fn scale_topic(&self, name: &str, new_stream_num: u32, ctx: &IoCtx) -> Result<RescaleReport> {
        let mut topo = self.topo.lock();
        let current = topo
            .topics
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("topic {name}")))?
            .len() as u32;
        if new_stream_num < current {
            return Err(Error::Unsupported(
                "shrinking a topic would reorder keys; not supported".into(),
            ));
        }
        let config = topo.configs.get(name).cloned().unwrap_or_default();
        let workers = topo.workers.clone();
        let mut updates = 0u64;
        for idx in current..new_stream_num {
            let obj = self.objects.create(CreateOptions {
                scm_cache: config.scm_cache,
                ..Default::default()
            })?;
            let worker = workers[topo.next_worker_rr % workers.len()];
            topo.next_worker_rr += 1;
            let route = StreamRoute { stream_idx: idx, object_id: obj.id(), worker };
            self.kv.put(route_key(name, idx), encode_route(&route));
            topo.topics
                .get_mut(name)
                .ok_or_else(|| Error::NotFound(format!("topic {name}")))?
                .push(route);
            updates += 1;
        }
        if let Some(c) = topo.configs.get_mut(name) {
            c.stream_num = new_stream_num;
            self.kv
                .put(format!("topic/{name}/config"), c.to_json().into_bytes());
            updates += 1;
        }
        ctx.record(Phase::Meta, ctx.now, updates * METADATA_OP_COST);
        Ok(RescaleReport {
            metadata_updates: updates,
            bytes_migrated: 0,
            elapsed: updates * METADATA_OP_COST,
        })
    }

    /// The stream (and its object) that owns `key` within `topic`.
    pub fn route(&self, topic: &str, key: &[u8]) -> Result<StreamRoute> {
        let topo = self.topo.lock();
        let routes = topo
            .topics
            .get(topic)
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))?;
        let idx = placement_key(key, routes.len());
        Ok(routes[idx].clone())
    }

    /// All stream routes of `topic`, in stream order.
    pub fn topic_routes(&self, topic: &str) -> Result<Vec<StreamRoute>> {
        self.topo
            .lock()
            .topics
            .get(topic)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))
    }

    /// All topic names, sorted (deterministic enumeration for maintenance
    /// sweeps).
    pub fn topics(&self) -> Vec<String> {
        self.topo.lock().topics.keys().cloned().collect()
    }

    /// The configuration of `topic`.
    pub fn topic_config(&self, topic: &str) -> Result<TopicConfig> {
        self.topo
            .lock()
            .configs
            .get(topic)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("topic {topic}")))
    }

    /// Resolve a route to its stream object.
    pub fn object_of(&self, route: &StreamRoute) -> Result<Arc<StreamObject>> {
        self.objects.get(route.object_id)
    }

    /// Commit a consumer-group offset for `topic/stream`.
    pub fn commit_offset(&self, group: &str, topic: &str, stream_idx: u32, offset: u64) {
        self.kv.put(
            format!("group/{group}/{topic}/{stream_idx}"),
            offset.to_be_bytes().to_vec(),
        );
    }

    /// Fetch the committed offset for `topic/stream` in `group`.
    pub fn committed_offset(&self, group: &str, topic: &str, stream_idx: u32) -> Option<u64> {
        self.kv
            .get(format!("group/{group}/{topic}/{stream_idx}").as_bytes())
            .map(|b| u64::from_be_bytes(b.as_slice().try_into().unwrap_or([0; 8])))
    }

    /// The metadata KV store (inspection / tests).
    pub fn metadata(&self) -> &SharedKv {
        &self.kv
    }
}

fn route_key(topic: &str, idx: u32) -> String {
    format!("topic/{topic}/stream/{idx:08}")
}

fn encode_route(r: &StreamRoute) -> Vec<u8> {
    format!("{}:{}:{}", r.stream_idx, r.object_id.raw(), r.worker.raw()).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::size::MIB;
    use common::SimClock;
    use ec::Redundancy;
    use plog::{PlogConfig, PlogStore};
    use simdisk::{MediaKind, StoragePool};

    fn dispatcher(workers: usize) -> StreamDispatcher {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 32,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        let store = Arc::new(StreamObjectStore::new(plog, 0, clock));
        let d = StreamDispatcher::new(store);
        for i in 0..workers {
            d.register_worker(WorkerId(i as u64));
        }
        d
    }

    #[test]
    fn create_topic_distributes_streams_round_robin() {
        let d = dispatcher(3);
        d.create_topic("t", TopicConfig::with_streams(9), &IoCtx::new(0)).unwrap();
        let routes = d.topic_routes("t").unwrap();
        assert_eq!(routes.len(), 9);
        let mut per_worker = BTreeMap::new();
        for r in &routes {
            *per_worker.entry(r.worker).or_insert(0u32) += 1;
        }
        assert!(per_worker.values().all(|&c| c == 3), "{per_worker:?}");
    }

    #[test]
    fn duplicate_topic_rejected() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_streams(1), &IoCtx::new(0)).unwrap();
        assert!(matches!(
            d.create_topic("t", TopicConfig::with_streams(1), &IoCtx::new(0)),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn routing_is_stable_and_key_based() {
        let d = dispatcher(2);
        d.create_topic("t", TopicConfig::with_streams(4), &IoCtx::new(0)).unwrap();
        let a = d.route("t", b"user-1").unwrap();
        let b = d.route("t", b"user-1").unwrap();
        assert_eq!(a, b, "same key must route identically");
        // Different keys spread over streams.
        let hit: std::collections::HashSet<u32> = (0..100)
            .map(|i| d.route("t", format!("user-{i}").as_bytes()).unwrap().stream_idx)
            .collect();
        assert!(hit.len() >= 3);
    }

    #[test]
    fn scale_topic_is_metadata_only_and_fast() {
        // Fig 14(c): 1000 → 10000 partitions in under 10 virtual seconds,
        // zero bytes migrated.
        let d = dispatcher(4);
        d.create_topic("big", TopicConfig::with_streams(1000), &IoCtx::new(0)).unwrap();
        let report = d.scale_topic("big", 10_000, &IoCtx::new(0)).unwrap();
        assert_eq!(report.bytes_migrated, 0);
        assert_eq!(d.topic_routes("big").unwrap().len(), 10_000);
        assert!(
            report.elapsed < common::clock::secs(10),
            "rescale took {} ns",
            report.elapsed
        );
    }

    #[test]
    fn shrink_is_unsupported() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_streams(4), &IoCtx::new(0)).unwrap();
        assert!(matches!(
            d.scale_topic("t", 2, &IoCtx::new(0)),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn worker_removal_reassigns_without_migration() {
        let d = dispatcher(3);
        d.create_topic("t", TopicConfig::with_streams(6), &IoCtx::new(0)).unwrap();
        let victim = WorkerId(1);
        let before: Vec<ObjectId> = d
            .topic_routes("t")
            .unwrap()
            .iter()
            .map(|r| r.object_id)
            .collect();
        let report = d.deregister_worker(victim, &IoCtx::new(0)).unwrap();
        assert_eq!(report.bytes_migrated, 0);
        let after = d.topic_routes("t").unwrap();
        assert!(after.iter().all(|r| r.worker != victim));
        // Stream objects unchanged: data stayed put.
        let after_ids: Vec<ObjectId> = after.iter().map(|r| r.object_id).collect();
        assert_eq!(before, after_ids);
    }

    #[test]
    fn cannot_remove_last_worker() {
        let d = dispatcher(1);
        assert!(d.deregister_worker(WorkerId(0), &IoCtx::new(0)).is_err());
    }

    #[test]
    fn consumer_group_offsets_roundtrip() {
        let d = dispatcher(1);
        assert_eq!(d.committed_offset("g", "t", 0), None);
        d.commit_offset("g", "t", 0, 41);
        d.commit_offset("g", "t", 0, 42);
        assert_eq!(d.committed_offset("g", "t", 0), Some(42));
    }

    #[test]
    fn delete_topic_destroys_objects() {
        let d = dispatcher(1);
        d.create_topic("t", TopicConfig::with_streams(3), &IoCtx::new(0)).unwrap();
        assert_eq!(d.objects.len(), 3);
        d.delete_topic("t").unwrap();
        assert_eq!(d.objects.len(), 0);
        assert!(d.route("t", b"k").is_err());
    }
}
