//! StreamLake's message streaming service (paper §IV-A and §V-A).
//!
//! The service stores message streams natively as **stream objects** in the
//! store layer — not as files — and serves them through stream workers
//! coordinated by a dispatcher:
//!
//! * [`record`] — key-value message records and their wire encoding;
//! * [`config`] — per-topic configuration mirroring the paper's Fig 8 JSON
//!   (`stream_num`, `quota`, `scm_cache`, `convert_2_table`, `archive`);
//! * [`quota`] — per-stream token-bucket rate limiting;
//! * [`object`] — the stream object: slices of ≤256 records appended to
//!   PLog shards, offset-addressed reads, transactional visibility;
//! * [`worker`] — stream workers with I/O aggregation and an SCM read
//!   cache;
//! * [`dispatcher`] — KV-backed topology (topics → streams → workers),
//!   round-robin assignment, migration-free rescaling;
//! * [`producer`] / [`consumer`] — the client APIs (idempotent produce,
//!   consumer-group offsets);
//! * [`txn`] — exactly-once transactions via a coordinator and two-phase
//!   commit;
//! * [`archive`] — size-triggered archiving with optional row→column
//!   conversion;
//! * [`service`] — the [`StreamService`] facade wiring it all together.

pub mod archive;
pub mod config;
pub mod consumer;
pub mod dispatcher;
pub mod object;
pub mod producer;
pub mod quota;
pub mod record;
pub mod service;
pub mod txn;
pub mod worker;

/// Map a message key to one of `n` streams (key-hash partitioning; empty
/// keys round-robin via a random draw is *not* used — they land on stream 0,
/// keeping routing deterministic for the simulation).
pub fn placement_key(key: &[u8], n: usize) -> usize {
    debug_assert!(n > 0);
    plog::placement::shard_for(key, n)
}

pub use archive::{ArchiveChore, ArchiveEntry, ArchiveService};
pub use config::TopicConfig;
pub use consumer::Consumer;
pub use dispatcher::StreamDispatcher;
pub use object::{ReadCtrl, StreamObject, StreamObjectStore};
pub use producer::Producer;
pub use record::Record;
pub use service::StreamService;
