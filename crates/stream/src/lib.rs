//! StreamLake's message streaming service (paper §IV-A and §V-A).
//!
//! The service stores message streams natively as **stream objects** in the
//! store layer — not as files — and serves them through stream workers
//! coordinated by a dispatcher. The unit of parallelism end to end is the
//! **partition**: an ordered log `(topic, partition_idx)` pinned to one
//! PLog shard, rate-limited by its own quota bucket, and owned by exactly
//! one member of each consumer group:
//!
//! * [`record`] — key-value message records and their wire encoding;
//! * [`partition`] — the [`Partition`] identity, the stable key hash, and
//!   pluggable [`Partitioner`] policies;
//! * [`config`] — per-topic configuration mirroring the paper's Fig 8 JSON
//!   (`stream_num`, `quota`, `scm_cache`, `convert_2_table`, `archive`);
//! * [`quota`] — per-partition token-bucket rate limiting in exact integer
//!   nano-tokens;
//! * [`object`] — the stream object: slices of ≤256 records appended to
//!   PLog shards, offset-addressed reads, transactional visibility;
//! * [`worker`] — stream workers with I/O aggregation and an SCM read
//!   cache;
//! * [`dispatcher`] — KV-backed topology (topics → partitions → workers),
//!   round-robin assignment, migration-free rescaling;
//! * [`group`] — consumer groups: membership, deterministic cooperative
//!   rebalancing, fenced offset commits, offset retention;
//! * [`producer`] / [`consumer`] — the client APIs (idempotent produce,
//!   group-member consume);
//! * [`txn`] — exactly-once transactions via a coordinator and two-phase
//!   commit;
//! * [`archive`] — size-triggered archiving with optional row→column
//!   conversion;
//! * [`service`] — the [`StreamService`] facade wiring it all together.

pub mod archive;
pub mod config;
pub mod consumer;
pub mod dispatcher;
pub mod group;
pub mod object;
pub mod partition;
pub mod producer;
pub mod quota;
pub mod record;
pub mod service;
pub mod txn;
pub mod worker;

pub use archive::{ArchiveChore, ArchiveEntry, ArchiveService};
pub use config::TopicConfig;
pub use consumer::{ConsumedRecord, Consumer};
pub use dispatcher::{PartitionRoute, StreamDispatcher};
pub use group::{
    AssignmentStrategy, GroupConfig, GroupCoordinator, OffsetRetentionChore, RebalanceEvent,
};
pub use object::{ReadCtrl, StreamObject, StreamObjectStore};
pub use partition::{
    partition_for_key, stable_key_hash, KeyHashPartitioner, Partition, Partitioner,
    RoundRobinPartitioner,
};
pub use producer::Producer;
pub use record::Record;
pub use service::{StreamService, StreamServiceOptions};
