//! Stream workers (§V-A).
//!
//! A worker is the data-service-layer endpoint serving a set of streams.
//! Produce requests cross the data bus (RDMA), get appended to the stream
//! object, and the ack travels back; fetch requests consult a local
//! consumption cache first ("a local cache is implemented at the stream
//! object client to speed up message consumption").

use crate::object::{AppendAck, ReadCtrl, StreamObject};
use crate::record::Record;
use common::clock::Nanos;
use common::ctx::{IoCtx, Phase};
use common::{Result, WorkerId};
use simdisk::{Bus, LruCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use common::lockwitness::TrackedMutex;

/// A stream worker with its stream-object client cache.
#[derive(Debug)]
pub struct StreamWorker {
    id: WorkerId,
    bus: Arc<Bus>,
    /// Consumption cache: (object id, base offset) → encoded record batch.
    cache: TrackedMutex<LruCache<(u64, u64)>>,
    /// Hot-path counters: atomics, not mutexes — produce/fetch bump these
    /// on every request and never need cross-counter consistency.
    produced: AtomicU64,
    fetched: AtomicU64,
}

impl StreamWorker {
    /// Create a worker with a `cache_bytes`-sized consumption cache.
    pub fn new(id: WorkerId, bus: Arc<Bus>, cache_bytes: u64) -> Self {
        StreamWorker {
            id,
            bus,
            cache: TrackedMutex::new("stream.worker.cache", LruCache::new(cache_bytes)),
            produced: AtomicU64::new(0),
            fetched: AtomicU64::new(0),
        }
    }

    /// Worker id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Handle a produce request: bus transfer + stream-object append +
    /// durable flush.
    ///
    /// The ack is only sent once the batch is persistent: the paper's
    /// delivery guarantee eliminates "unreliable components like file
    /// systems and page caches", so there is no in-memory-ack fast path.
    /// The producer batch is the I/O aggregation unit (§V-A "Efficient
    /// Transfer").
    pub fn produce(
        &self,
        object: &Arc<StreamObject>,
        records: &[Record],
        ctx: &IoCtx,
    ) -> Result<AppendAck> {
        let bytes: usize = records.iter().map(|r| r.size_bytes()).sum();
        let transfer = self.bus.transport().transfer_time(bytes as u64);
        ctx.record(Phase::Wan, ctx.now, transfer);
        let ack = object.append_at(records, &ctx.at(ctx.now + transfer))?;
        let durable = object.flush_at(&ctx.at(ack.ack_time))?;
        self.produced.fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok(AppendAck { base_offset: ack.base_offset, ack_time: durable.max(ack.ack_time) })
    }

    /// Handle a fetch request, serving from the consumption cache when the
    /// same batch was read before.
    pub fn fetch(
        &self,
        object: &Arc<StreamObject>,
        offset: u64,
        ctrl: ReadCtrl,
        ctx: &IoCtx,
    ) -> Result<(Vec<(u64, Record)>, Nanos)> {
        let cache_key = (object.id().raw(), offset);
        // Cached batches are only valid while the object hasn't grown past
        // what was cached; keep it simple and correct by keying on the end
        // offset too.
        let end = object.end_offset();
        let mut cache = self.cache.lock();
        if let Some(encoded) = cache.get(&cache_key) {
            // Cache hit: decode locally, no storage round trip.
            if let Ok(records) = Record::decode_slice(&encoded) {
                let out: Vec<(u64, Record)> = records
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| (offset + i as u64, r))
                    .take(ctrl.max_records)
                    .collect();
                // A cached batch that already reaches the end is complete.
                if out.last().map(|(o, _)| o + 1) == Some(end) || out.len() >= ctrl.max_records {
                    self.fetched.fetch_add(out.len() as u64, Ordering::Relaxed);
                    return Ok((out, ctx.now));
                }
            }
        }
        drop(cache);
        let (records, finish) = object.read_at(offset, ctrl, ctx)?;
        if !records.is_empty() && records.first().map(|(o, _)| *o) == Some(offset) {
            let contiguous: Vec<Record> = records
                .iter()
                .scan(offset, |expect, (o, r)| {
                    if *o == *expect {
                        *expect += 1;
                        Some(r.clone())
                    } else {
                        None
                    }
                })
                .collect();
            self.cache
                .lock()
                .put((object.id().raw(), offset), Record::encode_slice(&contiguous));
        }
        let transfer = self
            .bus
            .transport()
            .transfer_time(records.iter().map(|(_, r)| r.size_bytes() as u64).sum());
        ctx.record(Phase::Wan, finish, transfer);
        self.fetched.fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok((records, finish + transfer))
    }

    /// `(records produced, records fetched)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.produced.load(Ordering::Relaxed), self.fetched.load(Ordering::Relaxed))
    }

    /// `(hits, misses)` of the consumption cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{CreateOptions, StreamObjectStore};
    use common::size::MIB;
    use common::SimClock;
    use common::ctx::IoCtx;
    use ec::Redundancy;
    use plog::{PlogConfig, PlogStore};
    use simdisk::{MediaKind, StoragePool, Transport};

    fn setup() -> (StreamWorker, Arc<StreamObject>) {
        let clock = SimClock::new();
        let pool = Arc::new(StoragePool::new(
            "ssd",
            MediaKind::NvmeSsd,
            4,
            256 * MIB,
            clock.clone(),
        ));
        let plog = Arc::new(
            PlogStore::new(
                pool,
                PlogConfig {
                    shard_count: 8,
                    redundancy: Redundancy::Replicate { copies: 2 },
                    shard_capacity: 64 * MIB,
                },
            )
            .unwrap(),
        );
        let store = StreamObjectStore::new(plog, 0, clock.clone());
        let obj = store
            .create(CreateOptions { slice_capacity: 8, ..Default::default() })
            .unwrap();
        let bus = Arc::new(Bus::new(Transport::Rdma, clock));
        (StreamWorker::new(WorkerId(0), bus, MIB), obj)
    }

    fn recs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(format!("k{i}").into_bytes(), vec![0u8; 32], i as i64))
            .collect()
    }

    #[test]
    fn produce_charges_bus_transfer() {
        let (w, obj) = setup();
        let ack = w.produce(&obj, &recs(8), &IoCtx::new(0)).unwrap();
        assert!(ack.ack_time > 0, "bus + plog time must be charged");
        assert_eq!(ack.base_offset, Some(0));
        assert_eq!(w.stats().0, 8);
    }

    #[test]
    fn fetch_roundtrips_and_second_fetch_hits_cache() {
        let (w, obj) = setup();
        w.produce(&obj, &recs(8), &IoCtx::new(0)).unwrap();
        let ctrl = ReadCtrl::default();
        let (r1, _) = w.fetch(&obj, 0, ctrl, &IoCtx::new(0)).unwrap();
        assert_eq!(r1.len(), 8);
        let (hits_before, _) = w.cache_stats();
        let (r2, _) = w.fetch(&obj, 0, ctrl, &IoCtx::new(0)).unwrap();
        assert_eq!(r2.len(), 8);
        let (hits_after, _) = w.cache_stats();
        assert_eq!(hits_after, hits_before + 1, "second fetch must hit cache");
        assert_eq!(r1, r2);
    }

    #[test]
    fn cache_does_not_serve_stale_short_reads() {
        let (w, obj) = setup();
        w.produce(&obj, &recs(8), &IoCtx::new(0)).unwrap();
        w.fetch(&obj, 0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
        // More records arrive; a cached batch ending before the new end must
        // not satisfy an unbounded read.
        w.produce(&obj, &recs(8), &IoCtx::new(0)).unwrap();
        let (r, _) = w.fetch(&obj, 0, ReadCtrl::default(), &IoCtx::new(0)).unwrap();
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn bounded_fetch_respects_max_records() {
        let (w, obj) = setup();
        w.produce(&obj, &recs(16), &IoCtx::new(0)).unwrap();
        let ctrl = ReadCtrl { max_records: 5, committed_only: true };
        let (r, _) = w.fetch(&obj, 2, ctrl, &IoCtx::new(0)).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].0, 2);
    }
}
