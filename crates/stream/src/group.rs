//! Consumer groups: membership, deterministic cooperative rebalancing and
//! fenced offset commits.
//!
//! A [`GroupCoordinator`] tracks, per group, which members are alive, what
//! they subscribe to, and which partitions each one owns. Ownership moves
//! through a **cooperative, two-phase** rebalance:
//!
//! 1. a membership change (join, leave, session-timeout expiry) bumps the
//!    group **generation** and computes a target assignment; every member
//!    keeps the partitions it retains under the target and is asked to
//!    *revoke* the rest;
//! 2. each member commits final offsets for its revoked partitions, then
//!    acknowledges the generation ([`GroupCoordinator::ack`]); once every
//!    live member has acked, moved partitions are granted to their new
//!    owners and the group returns to [`GroupPhase::Stable`].
//!
//! Between revocation-ack and stabilization a moved partition is owned by
//! *nobody* — that gap is what makes the handoff exactly-once: the new
//! owner only starts reading after the old owner's final commit landed.
//!
//! Everything is deterministic: state lives in `BTreeMap`s, assignment
//! iterates members and partitions in sorted order, time comes from the
//! caller's [`IoCtx`], and every transition appends to a journal whose byte
//! serialization ([`GroupCoordinator::journal_bytes`]) is identical across
//! same-seed runs — the rebalance counterpart of the PR-5 tick journal.
//! Group metadata is mirrored into the dispatcher's KV store under `cg/`,
//! next to the `group/` offset keys, so the fault-tolerant KV remains the
//! source of truth the paper describes.

use crate::dispatcher::StreamDispatcher;
use crate::partition::Partition;
use common::chore::{Chore, ChoreBudget, TickReport};
use common::clock::{secs, Nanos};
use common::ctx::IoCtx;
use common::lockwitness::TrackedMutex;
use common::metrics::Metrics;
use common::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A member's identity within its group (unique per service instance).
pub type MemberId = String;

/// Partition-assignment strategy for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentStrategy {
    /// Contiguous ranges per topic: with `n` partitions and `m` members the
    /// first `n % m` members (in member-id order) take `ceil(n/m)`, the
    /// rest `floor(n/m)` — adjacent partitions stay together.
    Range,
    /// Partition `i` of each topic goes to member `i % m` (in member-id
    /// order) — maximally spread.
    RoundRobin,
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// A member whose last heartbeat is older than this is expired.
    pub session_timeout: Nanos,
    /// How partitions are divided among members.
    pub strategy: AssignmentStrategy,
    /// Committed offsets of a group that has been empty this long are
    /// dropped by the offset-retention chore.
    pub offset_retention: Nanos,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            session_timeout: secs(30),
            strategy: AssignmentStrategy::Range,
            offset_retention: secs(24 * 3600),
        }
    }
}

/// Where a group is in its rebalance cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GroupPhase {
    /// Every live member owns exactly its target partitions.
    #[default]
    Stable,
    /// A generation bump is in flight; members are revoking and acking.
    Rebalancing,
}

/// One entry of the deterministic rebalance journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceEvent {
    /// `member` joined (or updated its subscriptions), starting `generation`.
    MemberJoined { at: Nanos, group: String, member: MemberId, generation: u64 },
    /// `member` left gracefully or was expired by the session timeout.
    MemberLeft { at: Nanos, group: String, member: MemberId, generation: u64, expired: bool },
    /// Generation `generation` began; `revoked` lists the partitions each
    /// member must hand back, in (member, partition) order.
    RebalanceStarted {
        at: Nanos,
        group: String,
        generation: u64,
        revoked: Vec<(MemberId, Partition)>,
    },
    /// Every member acked `generation`; `assignment` is the full stable
    /// ownership map, members in id order, partitions sorted.
    RebalanceCompleted {
        at: Nanos,
        group: String,
        generation: u64,
        assignment: Vec<(MemberId, Vec<Partition>)>,
    },
    /// The retention chore dropped `offsets` committed offsets of an
    /// expired (long-empty) group.
    OffsetsExpired { at: Nanos, group: String, offsets: u64 },
}

impl RebalanceEvent {
    /// One-line, byte-stable serialization (journal rows).
    fn render(&self, out: &mut String) {
        match self {
            RebalanceEvent::MemberJoined { at, group, member, generation } => {
                out.push_str(&format!("join t={at} g={group} m={member} gen={generation}\n"));
            }
            RebalanceEvent::MemberLeft { at, group, member, generation, expired } => {
                let why = if *expired { "expired" } else { "leave" };
                out.push_str(&format!(
                    "left t={at} g={group} m={member} gen={generation} why={why}\n"
                ));
            }
            RebalanceEvent::RebalanceStarted { at, group, generation, revoked } => {
                let rows: Vec<String> =
                    revoked.iter().map(|(m, p)| format!("{m}:{p}")).collect();
                out.push_str(&format!(
                    "rebalance t={at} g={group} gen={generation} revoke=[{}]\n",
                    rows.join(" ")
                ));
            }
            RebalanceEvent::RebalanceCompleted { at, group, generation, assignment } => {
                let rows: Vec<String> = assignment
                    .iter()
                    .map(|(m, ps)| {
                        let ps: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                        format!("{m}=({})", ps.join(","))
                    })
                    .collect();
                out.push_str(&format!(
                    "stable t={at} g={group} gen={generation} assign=[{}]\n",
                    rows.join(" ")
                ));
            }
            RebalanceEvent::OffsetsExpired { at, group, offsets } => {
                out.push_str(&format!("offsets-expired t={at} g={group} n={offsets}\n"));
            }
        }
    }
}

#[derive(Debug, Clone, Default)]
struct MemberState {
    subscriptions: BTreeSet<String>,
    /// Partitions the member currently owns (may legally consume).
    assigned: BTreeSet<Partition>,
    /// Partitions the member must commit + release before acking.
    revoking: BTreeSet<Partition>,
    last_heartbeat: Nanos,
    /// Highest generation this member has acknowledged.
    acked_generation: u64,
}

#[derive(Debug, Default)]
struct GroupState {
    generation: u64,
    phase: GroupPhase,
    members: BTreeMap<MemberId, MemberState>,
    /// Target ownership for the current generation (granted at
    /// stabilization).
    target: BTreeMap<MemberId, BTreeSet<Partition>>,
    /// Virtual time the group became empty, for offset retention.
    empty_since: Option<Nanos>,
}

/// The consumer-group coordinator (one per [`crate::StreamService`]).
#[derive(Debug)]
pub struct GroupCoordinator {
    dispatcher: Arc<StreamDispatcher>,
    metrics: Metrics,
    config: GroupConfig,
    state: TrackedMutex<BTreeMap<String, GroupState>>,
    journal: TrackedMutex<Vec<RebalanceEvent>>,
}

impl GroupCoordinator {
    /// A coordinator persisting group metadata through `dispatcher`'s KV.
    pub fn new(dispatcher: Arc<StreamDispatcher>, metrics: Metrics, config: GroupConfig) -> Self {
        GroupCoordinator {
            dispatcher,
            metrics,
            config,
            state: TrackedMutex::new("stream.group.state", BTreeMap::new()),
            journal: TrackedMutex::new("stream.group.journal", Vec::new()),
        }
    }

    /// Coordinator configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// Join `group` as `member` subscribing to `topics` (or update the
    /// subscriptions of an existing member). Triggers a rebalance.
    pub fn join(&self, group: &str, member: &str, topics: &[String], ctx: &IoCtx) -> Result<()> {
        for t in topics {
            // Validate against live topology before mutating group state.
            self.dispatcher.partition_count(t)?;
        }
        let mut state = self.state.lock();
        let g = state.entry(group.to_string()).or_default();
        g.empty_since = None;
        let is_new = !g.members.contains_key(member);
        let subs: BTreeSet<String> = topics.iter().cloned().collect();
        let m = g.members.entry(member.to_string()).or_default();
        let unchanged = !is_new && m.subscriptions == subs;
        m.subscriptions = subs;
        m.last_heartbeat = ctx.now;
        if unchanged {
            return Ok(());
        }
        self.kv_put_member(group, member, &g.members[member].subscriptions);
        let generation = g.generation + 1;
        self.journal.lock().push(RebalanceEvent::MemberJoined {
            at: ctx.now,
            group: group.to_string(),
            member: member.to_string(),
            generation,
        });
        self.metrics.incr("stream.group.joins", 1);
        self.rebalance_locked(group, g, ctx.now);
        Ok(())
    }

    /// Leave `group` gracefully. The member's partitions move to the
    /// survivors in the triggered rebalance.
    pub fn leave(&self, group: &str, member: &str, ctx: &IoCtx) -> Result<()> {
        let mut state = self.state.lock();
        let g = state
            .get_mut(group)
            .ok_or_else(|| Error::NotFound(format!("consumer group {group}")))?;
        if g.members.remove(member).is_none() {
            return Err(Error::NotFound(format!("member {member} of group {group}")));
        }
        self.kv_delete_member(group, member);
        self.journal.lock().push(RebalanceEvent::MemberLeft {
            at: ctx.now,
            group: group.to_string(),
            member: member.to_string(),
            generation: g.generation + 1,
            expired: false,
        });
        self.metrics.incr("stream.group.leaves", 1);
        self.rebalance_locked(group, g, ctx.now);
        if g.members.is_empty() {
            g.empty_since = Some(ctx.now);
        }
        Ok(())
    }

    /// Record a heartbeat for `member` and expire any member of the group
    /// whose session timed out (each expiry triggers a rebalance).
    pub fn heartbeat(&self, group: &str, member: &str, ctx: &IoCtx) -> Result<()> {
        let mut state = self.state.lock();
        let g = state
            .get_mut(group)
            .ok_or_else(|| Error::NotFound(format!("consumer group {group}")))?;
        let m = g
            .members
            .get_mut(member)
            .ok_or_else(|| Error::NotFound(format!("member {member} of group {group}")))?;
        m.last_heartbeat = ctx.now;
        self.expire_locked(group, g, ctx.now);
        Ok(())
    }

    /// Expire timed-out members across *all* groups (crash detection for
    /// groups nobody is polling). Returns the number of expired members.
    pub fn expire_members(&self, ctx: &IoCtx) -> u64 {
        let mut state = self.state.lock();
        let mut expired = 0u64;
        for (name, g) in state.iter_mut() {
            let name = name.clone();
            expired += self.expire_locked(&name, g, ctx.now);
        }
        expired
    }

    /// The partitions `member` must commit and release before it can ack
    /// the current generation. Empty when the member is fully synced.
    pub fn revoked(&self, group: &str, member: &str) -> Result<Vec<Partition>> {
        let state = self.state.lock();
        let m = member_of(&state, group, member)?;
        Ok(m.revoking.iter().cloned().collect())
    }

    /// Whether `member` has acknowledged the group's current generation.
    pub fn is_synced(&self, group: &str, member: &str) -> Result<bool> {
        let state = self.state.lock();
        let g = state
            .get(group)
            .ok_or_else(|| Error::NotFound(format!("consumer group {group}")))?;
        let m = g
            .members
            .get(member)
            .ok_or_else(|| Error::NotFound(format!("member {member} of group {group}")))?;
        Ok(m.acked_generation == g.generation)
    }

    /// Acknowledge the current generation: the member declares its revoked
    /// partitions committed and released. When the last live member acks,
    /// moved partitions are granted and the group stabilizes. Returns the
    /// member's current owned set.
    pub fn ack(&self, group: &str, member: &str, ctx: &IoCtx) -> Result<BTreeSet<Partition>> {
        let mut state = self.state.lock();
        let g = state
            .get_mut(group)
            .ok_or_else(|| Error::NotFound(format!("consumer group {group}")))?;
        let generation = g.generation;
        let m = g
            .members
            .get_mut(member)
            .ok_or_else(|| Error::NotFound(format!("member {member} of group {group}")))?;
        m.revoking.clear();
        m.acked_generation = generation;
        self.maybe_stabilize_locked(group, g, ctx.now);
        Ok(g.members[member].assigned.clone())
    }

    /// The partitions `member` currently owns.
    pub fn assigned(&self, group: &str, member: &str) -> Result<BTreeSet<Partition>> {
        let state = self.state.lock();
        Ok(member_of(&state, group, member)?.assigned.clone())
    }

    /// Commit `offset` for `partition` on behalf of `member`.
    ///
    /// Fenced: the commit is only accepted while the member owns the
    /// partition — either assigned, or still held in its revoking set
    /// during a cooperative handoff. Anything else (a zombie from an older
    /// generation, a partition already moved on) is rejected, which is what
    /// keeps redelivery out of the protocol.
    pub fn commit(&self, group: &str, member: &str, partition: &Partition, offset: u64) -> Result<()> {
        {
            let state = self.state.lock();
            let m = member_of(&state, group, member)?;
            if !m.assigned.contains(partition) && !m.revoking.contains(partition) {
                self.metrics.incr("stream.group.fenced_commits", 1);
                return Err(Error::InvalidArgument(format!(
                    "fenced commit: member {member} of group {group} does not own {partition}"
                )));
            }
        }
        self.dispatcher.commit_offset(group, &partition.topic, partition.idx, offset);
        Ok(())
    }

    /// The committed offset of `partition` in `group`, if any.
    pub fn committed(&self, group: &str, partition: &Partition) -> Option<u64> {
        self.dispatcher.committed_offset(group, &partition.topic, partition.idx)
    }

    /// Whether `group` is stable (no rebalance in flight). Unknown groups
    /// are trivially stable.
    pub fn is_stable(&self, group: &str) -> bool {
        self.state
            .lock()
            .get(group)
            .map(|g| g.phase == GroupPhase::Stable)
            .unwrap_or(true)
    }

    /// The group's current generation (0 before the first join).
    pub fn generation(&self, group: &str) -> u64 {
        self.state.lock().get(group).map(|g| g.generation).unwrap_or(0)
    }

    /// Live members of `group`, in id order.
    pub fn members(&self, group: &str) -> Vec<MemberId> {
        self.state
            .lock()
            .get(group)
            .map(|g| g.members.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// The full current ownership map of `group`.
    pub fn assignment(&self, group: &str) -> BTreeMap<MemberId, BTreeSet<Partition>> {
        self.state
            .lock()
            .get(group)
            .map(|g| {
                g.members
                    .iter()
                    .map(|(m, s)| (m.clone(), s.assigned.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Subscribed partitions of `group` that no live member owns. Empty in
    /// any stable, fully-acked group — the coverage invariant the scale
    /// smoke test gates on.
    pub fn unassigned(&self, group: &str) -> Vec<Partition> {
        let state = self.state.lock();
        let Some(g) = state.get(group) else {
            return Vec::new();
        };
        let mut all: BTreeSet<Partition> = BTreeSet::new();
        let mut topics: BTreeSet<&String> = BTreeSet::new();
        for m in g.members.values() {
            topics.extend(m.subscriptions.iter());
        }
        for t in topics {
            if let Ok(n) = self.dispatcher.partition_count(t) {
                for idx in 0..n {
                    all.insert(Partition::new(t.clone(), idx));
                }
            }
        }
        for m in g.members.values() {
            for p in &m.assigned {
                all.remove(p);
            }
        }
        all.into_iter().collect()
    }

    /// Number of journal entries so far.
    pub fn journal_len(&self) -> usize {
        self.journal.lock().len()
    }

    /// The full journal, cloned.
    pub fn journal(&self) -> Vec<RebalanceEvent> {
        self.journal.lock().clone()
    }

    /// Byte-stable serialization of the journal: same seed ⇒ identical
    /// bytes, the property the scale test pins.
    pub fn journal_bytes(&self) -> Vec<u8> {
        let journal = self.journal.lock();
        let mut out = String::new();
        for ev in journal.iter() {
            ev.render(&mut out);
        }
        out.into_bytes()
    }

    /// Drop committed offsets of groups that have been empty longer than
    /// [`GroupConfig::offset_retention`]. Returns offsets dropped.
    pub fn retention_sweep(&self, ctx: &IoCtx) -> u64 {
        let mut state = self.state.lock();
        let mut dropped = 0u64;
        let expired: Vec<String> = state
            .iter()
            .filter(|(_, g)| {
                g.members.is_empty()
                    && g.empty_since
                        .map(|t| ctx.now.saturating_sub(t) >= self.config.offset_retention)
                        .unwrap_or(false)
            })
            .map(|(name, _)| name.clone())
            .collect();
        for group in expired {
            let kv = self.dispatcher.metadata();
            let prefix = format!("group/{group}/");
            let offsets = kv.scan_prefix(prefix.as_bytes());
            for (key, _) in &offsets {
                kv.delete(key.clone());
            }
            dropped += offsets.len() as u64;
            for (key, _) in kv.scan_prefix(format!("cg/{group}/").as_bytes()) {
                kv.delete(key);
            }
            state.remove(&group);
            self.journal.lock().push(RebalanceEvent::OffsetsExpired {
                at: ctx.now,
                group,
                offsets: offsets.len() as u64,
            });
        }
        if dropped > 0 {
            self.metrics.incr("stream.group.offsets_expired", dropped);
        }
        dropped
    }

    /// Groups whose offsets are still retained but whose member set is
    /// empty — the retention chore's backlog.
    fn empty_group_count(&self) -> u64 {
        self.state.lock().values().filter(|g| g.members.is_empty()).count() as u64
    }

    fn expire_locked(&self, group: &str, g: &mut GroupState, now: Nanos) -> u64 {
        let timeout = self.config.session_timeout;
        let dead: Vec<MemberId> = g
            .members
            .iter()
            .filter(|(_, m)| now.saturating_sub(m.last_heartbeat) >= timeout)
            .map(|(id, _)| id.clone())
            .collect();
        if dead.is_empty() {
            return 0;
        }
        for id in &dead {
            g.members.remove(id);
            self.kv_delete_member(group, id);
            self.journal.lock().push(RebalanceEvent::MemberLeft {
                at: now,
                group: group.to_string(),
                member: id.clone(),
                generation: g.generation + 1,
                expired: true,
            });
        }
        self.metrics.incr("stream.group.expired_members", dead.len() as u64);
        self.rebalance_locked(group, g, now);
        if g.members.is_empty() {
            g.empty_since = Some(now);
        }
        dead.len() as u64
    }

    /// Begin generation `g.generation + 1`: compute the target, mark moved
    /// partitions for revocation, journal the start, and stabilize
    /// immediately if nothing needs handing off.
    fn rebalance_locked(&self, group: &str, g: &mut GroupState, now: Nanos) {
        g.generation += 1;
        g.phase = GroupPhase::Rebalancing;
        g.target = self.compute_target(g);
        let mut revoked: Vec<(MemberId, Partition)> = Vec::new();
        for (id, m) in g.members.iter_mut() {
            let target = g.target.get(id).cloned().unwrap_or_default();
            let lost: Vec<Partition> =
                m.assigned.iter().filter(|p| !target.contains(*p)).cloned().collect();
            for p in lost {
                m.assigned.remove(&p);
                m.revoking.insert(p.clone());
                revoked.push((id.clone(), p));
            }
        }
        self.metrics.incr("stream.group.rebalances", 1);
        self.journal.lock().push(RebalanceEvent::RebalanceStarted {
            at: now,
            group: group.to_string(),
            generation: g.generation,
            revoked,
        });
        self.maybe_stabilize_locked(group, g, now);
    }

    /// Grant moved partitions and go stable once every member acked the
    /// current generation and holds nothing in its revoking set.
    fn maybe_stabilize_locked(&self, group: &str, g: &mut GroupState, now: Nanos) {
        if g.phase != GroupPhase::Rebalancing {
            return;
        }
        let generation = g.generation;
        let all_acked = g
            .members
            .values()
            .all(|m| m.acked_generation == generation && m.revoking.is_empty());
        if !all_acked {
            return;
        }
        for (id, m) in g.members.iter_mut() {
            m.assigned = g.target.get(id).cloned().unwrap_or_default();
        }
        g.phase = GroupPhase::Stable;
        let assignment: Vec<(MemberId, Vec<Partition>)> = g
            .members
            .iter()
            .map(|(id, m)| (id.clone(), m.assigned.iter().cloned().collect()))
            .collect();
        let kv = self.dispatcher.metadata();
        kv.put(format!("cg/{group}/generation"), generation.to_string().into_bytes());
        for (id, ps) in &assignment {
            let encoded: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
            kv.put(format!("cg/{group}/assign/{id}"), encoded.join(",").into_bytes());
        }
        self.journal.lock().push(RebalanceEvent::RebalanceCompleted {
            at: now,
            group: group.to_string(),
            generation,
            assignment,
        });
    }

    /// The target assignment for the group's live members, per strategy.
    /// Deterministic: members in id order, topics in name order.
    fn compute_target(&self, g: &GroupState) -> BTreeMap<MemberId, BTreeSet<Partition>> {
        let mut target: BTreeMap<MemberId, BTreeSet<Partition>> =
            g.members.keys().map(|id| (id.clone(), BTreeSet::new())).collect();
        let mut topics: BTreeMap<&String, Vec<&MemberId>> = BTreeMap::new();
        for (id, m) in &g.members {
            for t in &m.subscriptions {
                topics.entry(t).or_default().push(id);
            }
        }
        for (topic, subscribers) in topics {
            let Ok(n) = self.dispatcher.partition_count(topic) else {
                // Topic deleted since subscription: nothing to assign.
                continue;
            };
            let m = subscribers.len() as u32;
            if m == 0 {
                continue;
            }
            match self.config.strategy {
                AssignmentStrategy::Range => {
                    let base = n / m;
                    let extra = n % m;
                    let mut next = 0u32;
                    for (k, member) in subscribers.iter().enumerate() {
                        let take = base + if (k as u32) < extra { 1 } else { 0 };
                        for idx in next..next + take {
                            target
                                .entry((*member).clone())
                                .or_default()
                                .insert(Partition::new(topic.clone(), idx));
                        }
                        next += take;
                    }
                }
                AssignmentStrategy::RoundRobin => {
                    for idx in 0..n {
                        let member = subscribers[(idx % m) as usize];
                        target
                            .entry(member.clone())
                            .or_default()
                            .insert(Partition::new(topic.clone(), idx));
                    }
                }
            }
        }
        target
    }

    fn kv_put_member(&self, group: &str, member: &str, subs: &BTreeSet<String>) {
        let encoded: Vec<&str> = subs.iter().map(|s| s.as_str()).collect();
        self.dispatcher
            .metadata()
            .put(format!("cg/{group}/member/{member}"), encoded.join(",").into_bytes());
    }

    fn kv_delete_member(&self, group: &str, member: &str) {
        let kv = self.dispatcher.metadata();
        kv.delete(format!("cg/{group}/member/{member}"));
        kv.delete(format!("cg/{group}/assign/{member}"));
    }
}

fn member_of<'a>(
    state: &'a BTreeMap<String, GroupState>,
    group: &str,
    member: &str,
) -> Result<&'a MemberState> {
    state
        .get(group)
        .ok_or_else(|| Error::NotFound(format!("consumer group {group}")))?
        .members
        .get(member)
        .ok_or_else(|| Error::NotFound(format!("member {member} of group {group}")))
}

/// Background chore dropping committed offsets of long-empty groups, and
/// sweeping session-timed-out members of groups nobody polls. Registered
/// under the `core::chore` maintenance runtime by `StreamLake`.
#[derive(Debug)]
pub struct OffsetRetentionChore {
    coordinator: Arc<GroupCoordinator>,
}

impl OffsetRetentionChore {
    /// A chore sweeping `coordinator`.
    pub fn new(coordinator: Arc<GroupCoordinator>) -> Self {
        OffsetRetentionChore { coordinator }
    }
}

impl Chore for OffsetRetentionChore {
    fn name(&self) -> &'static str {
        "offset-retention"
    }

    fn tick(&self, ctx: &IoCtx, _budget: ChoreBudget) -> Result<TickReport> {
        let expired = self.coordinator.expire_members(ctx);
        let dropped = self.coordinator.retention_sweep(ctx);
        let work = expired + dropped;
        if work == 0 {
            let mut report = TickReport::idle(ctx.now);
            report.backlog_hint = self.coordinator.empty_group_count();
            return Ok(report);
        }
        Ok(TickReport {
            work_done: work,
            backlog_hint: self.coordinator.empty_group_count(),
            next_due: None,
            finished_at: ctx.now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopicConfig;
    use crate::service::tests::test_service;

    fn coordinator_with_topic(partitions: u32) -> Arc<GroupCoordinator> {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_partitions(partitions)).unwrap();
        svc.groups().clone()
    }

    fn join_and_settle(c: &GroupCoordinator, group: &str, members: &[&str]) {
        for m in members {
            c.join(group, m, &["t".to_string()], &IoCtx::new(0)).unwrap();
        }
        // Cooperative settle: everyone commits nothing and acks.
        for _ in 0..members.len() {
            for m in members {
                c.ack(group, m, &IoCtx::new(0)).unwrap();
            }
        }
    }

    #[test]
    fn single_member_owns_everything() {
        let c = coordinator_with_topic(6);
        join_and_settle(&c, "g", &["m1"]);
        assert!(c.is_stable("g"));
        let owned = c.assigned("g", "m1").unwrap();
        assert_eq!(owned.len(), 6);
        assert!(c.unassigned("g").is_empty());
    }

    #[test]
    fn range_assignment_is_contiguous_and_balanced() {
        let c = coordinator_with_topic(7);
        join_and_settle(&c, "g", &["a", "b", "c"]);
        let assign = c.assignment("g");
        let sizes: Vec<usize> = assign.values().map(|s| s.len()).collect();
        // 7 over 3 members: 3, 2, 2 in member order.
        assert_eq!(sizes, vec![3, 2, 2]);
        // Member "a" holds the leading contiguous range.
        let a: Vec<u32> = assign["a"].iter().map(|p| p.idx).collect();
        assert_eq!(a, vec![0, 1, 2]);
        assert!(c.unassigned("g").is_empty());
    }

    #[test]
    fn round_robin_spreads_alternating() {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_partitions(6)).unwrap();
        let c = Arc::new(GroupCoordinator::new(
            svc.dispatcher().clone(),
            Metrics::new(),
            GroupConfig { strategy: AssignmentStrategy::RoundRobin, ..Default::default() },
        ));
        join_and_settle(&c, "g", &["a", "b"]);
        let a: Vec<u32> = c.assigned("g", "a").unwrap().iter().map(|p| p.idx).collect();
        let b: Vec<u32> = c.assigned("g", "b").unwrap().iter().map(|p| p.idx).collect();
        assert_eq!(a, vec![0, 2, 4]);
        assert_eq!(b, vec![1, 3, 5]);
    }

    #[test]
    fn join_moves_partitions_cooperatively() {
        let c = coordinator_with_topic(4);
        join_and_settle(&c, "g", &["a"]);
        assert_eq!(c.assigned("g", "a").unwrap().len(), 4);
        let gen_before = c.generation("g");

        // b joins: a must first revoke the moved half...
        c.join("g", "b", &["t".to_string()], &IoCtx::new(0)).unwrap();
        assert!(!c.is_stable("g"));
        assert_eq!(c.generation("g"), gen_before + 1);
        let revoked = c.revoked("g", "a").unwrap();
        assert_eq!(revoked.len(), 2, "half the partitions move");
        // ...and until a acks, b owns nothing (the handoff gap).
        c.ack("g", "b", &IoCtx::new(0)).unwrap();
        assert!(c.assigned("g", "b").unwrap().is_empty());
        assert!(!c.is_stable("g"));
        // a acks → the group stabilizes and b owns the moved partitions.
        c.ack("g", "a", &IoCtx::new(0)).unwrap();
        assert!(c.is_stable("g"));
        assert_eq!(c.assigned("g", "a").unwrap().len(), 2);
        assert_eq!(c.assigned("g", "b").unwrap().len(), 2);
        assert!(c.unassigned("g").is_empty());
    }

    #[test]
    fn leave_returns_partitions_to_survivors() {
        let c = coordinator_with_topic(4);
        join_and_settle(&c, "g", &["a", "b"]);
        c.leave("g", "b", &IoCtx::new(0)).unwrap();
        c.ack("g", "a", &IoCtx::new(0)).unwrap();
        assert!(c.is_stable("g"));
        assert_eq!(c.assigned("g", "a").unwrap().len(), 4);
        assert!(c.assigned("g", "b").is_err(), "departed member is forgotten");
    }

    #[test]
    fn session_timeout_expires_crashed_members() {
        let c = coordinator_with_topic(4);
        join_and_settle(&c, "g", &["a", "b"]);
        // b stops heartbeating; a heartbeats 31 virtual seconds later.
        let late = IoCtx::new(secs(31));
        c.heartbeat("g", "a", &late).unwrap();
        assert_eq!(c.members("g"), vec!["a".to_string()]);
        c.ack("g", "a", &late).unwrap();
        assert!(c.is_stable("g"));
        assert_eq!(c.assigned("g", "a").unwrap().len(), 4);
        // The journal recorded the expiry, not a graceful leave.
        let bytes = String::from_utf8(c.journal_bytes()).unwrap();
        assert!(bytes.contains("why=expired"), "{bytes}");
    }

    #[test]
    fn commits_are_fenced_by_ownership() {
        let c = coordinator_with_topic(2);
        join_and_settle(&c, "g", &["a"]);
        let p0 = Partition::new("t", 0);
        c.commit("g", "a", &p0, 5).unwrap();
        assert_eq!(c.committed("g", &p0), Some(5));
        // A member that never owned the partition is fenced.
        c.join("g", "b", &["t".to_string()], &IoCtx::new(0)).unwrap();
        let b_owns = c.assigned("g", "b").unwrap();
        assert!(b_owns.is_empty());
        assert!(c.commit("g", "b", &p0, 9).is_err(), "unowned commit must be fenced");
        // During the handoff, a may still commit what it is revoking.
        for p in c.revoked("g", "a").unwrap() {
            c.commit("g", "a", &p, 7).unwrap();
        }
    }

    #[test]
    fn journal_is_deterministic_across_identical_runs() {
        let run = || {
            let c = coordinator_with_topic(8);
            join_and_settle(&c, "g", &["a", "b"]);
            c.join("g", "c", &["t".to_string()], &IoCtx::new(secs(1))).unwrap();
            for m in ["a", "b", "c"] {
                c.ack("g", m, &IoCtx::new(secs(1))).unwrap();
            }
            c.leave("g", "a", &IoCtx::new(secs(2))).unwrap();
            for m in ["b", "c"] {
                c.ack("g", m, &IoCtx::new(secs(2))).unwrap();
            }
            c.journal_bytes()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same schedule must journal byte-identically");
    }

    #[test]
    fn retention_chore_drops_offsets_of_long_empty_groups() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_partitions(2)).unwrap();
        let c = svc.groups().clone();
        join_and_settle(&c, "g", &["a"]);
        c.commit("g", "a", &Partition::new("t", 0), 3).unwrap();
        c.leave("g", "a", &IoCtx::new(0)).unwrap();
        let chore = OffsetRetentionChore::new(c.clone());
        // Before retention elapses: nothing dropped.
        let early = chore.tick(&IoCtx::new(secs(3600)), ChoreBudget::UNLIMITED).unwrap();
        assert_eq!(early.work_done, 0);
        assert_eq!(c.committed("g", &Partition::new("t", 0)), Some(3));
        // After 24h of emptiness: offsets and group state are gone.
        let late = chore.tick(&IoCtx::new(secs(24 * 3600)), ChoreBudget::UNLIMITED).unwrap();
        assert_eq!(late.work_done, 1);
        assert_eq!(c.committed("g", &Partition::new("t", 0)), None);
        assert_eq!(c.generation("g"), 0, "group record dropped");
    }
}
