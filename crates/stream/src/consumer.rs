//! The consumer client API (Fig 7).
//!
//! Consumers are **group members**: subscribing registers the member with
//! the [`crate::group::GroupCoordinator`], which assigns each subscribed
//! partition to exactly one live member. `poll` heartbeats, plays its part
//! of any in-flight cooperative rebalance (commit + release revoked
//! partitions, then ack the generation), and fetches only from the
//! partitions this member owns — so a group of N consumers delivers every
//! record exactly once. Committing stores positions under the group in the
//! dispatcher's KV store, fenced by ownership, so a restarted member in
//! the same group resumes where the group left off. Dropping a consumer
//! leaves the group gracefully; a crashed consumer (one that just stops
//! polling) is expired by the session timeout.

use crate::object::ReadCtrl;
use crate::partition::Partition;
use crate::record::Record;
use crate::service::StreamService;
use common::ctx::IoCtx;
use common::Result;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One record delivered by [`Consumer::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumedRecord {
    /// Topic the record came from.
    pub topic: String,
    /// Partition index within the topic.
    pub partition_idx: u32,
    /// Offset within the partition.
    pub offset: u64,
    /// The record itself.
    pub record: Record,
}

/// A consumer handle: one member of a consumer group.
#[derive(Debug)]
pub struct Consumer {
    svc: Arc<StreamService>,
    group: String,
    member: String,
    topics: Vec<String>,
    positions: BTreeMap<Partition, u64>,
    left: bool,
}

impl Consumer {
    pub(crate) fn new(svc: Arc<StreamService>, group: &str, member: String) -> Self {
        Consumer {
            svc,
            group: group.to_string(),
            member,
            topics: Vec::new(),
            positions: BTreeMap::new(),
            left: false,
        }
    }

    /// The consumer's group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// This member's id within the group.
    pub fn member_id(&self) -> &str {
        &self.member
    }

    /// Subscribe to `topic`: joins (or updates) this member's group
    /// registration, triggering a cooperative rebalance. Partitions are
    /// owned only after the group settles — the next `poll` plays this
    /// member's part.
    pub fn subscribe(&mut self, topic: &str) -> Result<()> {
        if self.topics.iter().any(|t| t == topic) {
            return Ok(());
        }
        let mut topics = self.topics.clone();
        topics.push(topic.to_string());
        let ctx = IoCtx::new(self.svc.clock().now());
        self.svc.groups().join(&self.group, &self.member, &topics, &ctx)?;
        self.topics = topics;
        self.left = false;
        Ok(())
    }

    /// Poll for up to `max_records` committed records across this member's
    /// assigned partitions, advancing local positions. Records within a
    /// partition arrive in order.
    ///
    /// Each poll heartbeats and, when a rebalance is in flight, performs
    /// the cooperative handoff: committing final offsets for revoked
    /// partitions, releasing them, and acking the new generation.
    pub fn poll(&mut self, max_records: usize, ctx: &IoCtx) -> Result<Vec<ConsumedRecord>> {
        if self.topics.is_empty() {
            return Ok(Vec::new());
        }
        let groups = self.svc.groups().clone();
        groups.heartbeat(&self.group, &self.member, ctx)?;
        if !groups.is_synced(&self.group, &self.member)? {
            // Phase 1 of the cooperative rebalance: commit and release
            // everything this member must hand off, then ack.
            for p in groups.revoked(&self.group, &self.member)? {
                if let Some(pos) = self.positions.remove(&p) {
                    groups.commit(&self.group, &self.member, &p, pos)?;
                }
            }
            groups.ack(&self.group, &self.member, ctx)?;
        }
        let assigned = groups.assigned(&self.group, &self.member)?;
        // Reconcile local positions with ownership: drop what moved away,
        // resume newly granted partitions from the group's committed
        // offsets.
        self.positions.retain(|p, _| assigned.contains(p));
        for p in &assigned {
            if !self.positions.contains_key(p) {
                let start = groups.committed(&self.group, p).unwrap_or(0);
                self.positions.insert(p.clone(), start);
            }
        }
        let mut out = Vec::new();
        for (partition, pos) in self.positions.iter_mut() {
            if out.len() >= max_records {
                break;
            }
            let route = self.svc.dispatcher().route_partition(&partition.topic, partition.idx)?;
            let ctrl = ReadCtrl {
                max_records: max_records - out.len(),
                committed_only: true,
            };
            let (records, _) = self.svc.fetch_from(&route, *pos, ctrl, ctx)?;
            for (offset, record) in records {
                *pos = (*pos).max(offset + 1);
                out.push(ConsumedRecord {
                    topic: partition.topic.clone(),
                    partition_idx: partition.idx,
                    offset,
                    record,
                });
            }
        }
        Ok(out)
    }

    /// Commit current positions to the group (fenced by ownership).
    pub fn commit(&self) -> Result<()> {
        for (partition, &pos) in &self.positions {
            self.svc.groups().commit(&self.group, &self.member, partition, pos)?;
        }
        Ok(())
    }

    /// The local position of `partition_idx` in `topic` (next offset to
    /// read), if this member owns it.
    pub fn position(&self, topic: &str, partition_idx: u32) -> Option<u64> {
        self.positions.get(&Partition::new(topic, partition_idx)).copied()
    }

    /// The partitions this member currently owns (after its last poll).
    pub fn assignment(&self) -> Vec<Partition> {
        self.positions.keys().cloned().collect()
    }

    /// Leave the group without the graceful drop-leave — simulates a
    /// crash: the coordinator only notices when the session times out.
    pub fn abandon(mut self) {
        self.left = true;
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        if self.left || self.topics.is_empty() {
            return;
        }
        // slint:allow(R10): Drop has no caller ctx; leave is a metadata-only KV update at current virtual time
        let ctx = IoCtx::new(self.svc.clock().now());
        // Graceful leave on drop; a failure here (e.g. the group was
        // already retired) leaves expiry to the session timeout.
        // slint:allow(R11): drop cannot propagate; timeout is the backstop
        let _ = self.svc.groups().leave(&self.group, &self.member, &ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopicConfig;
    use crate::service::tests::test_service;
    use common::ctx::IoCtx;

    fn produce_n(svc: &Arc<StreamService>, topic: &str, n: usize) {
        let mut p = svc.producer();
        p.set_batch_size(1);
        for i in 0..n {
            p.send(topic, format!("key-{i}").into_bytes(), format!("msg-{i}").into_bytes(), &IoCtx::new(0))
                .unwrap();
        }
        for route in svc.dispatcher().topic_partitions(topic).unwrap() {
            svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();
        }
    }

    #[test]
    fn poll_receives_everything_in_partition_order() {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_partitions(3)).unwrap();
        produce_n(&svc, "t", 30);
        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        let got = c.poll(100, &IoCtx::new(0)).unwrap();
        assert_eq!(got.len(), 30);
        // per-partition offsets strictly increase
        let mut last: BTreeMap<u32, u64> = BTreeMap::new();
        for r in &got {
            if let Some(&prev) = last.get(&r.partition_idx) {
                assert!(r.offset > prev);
            }
            last.insert(r.partition_idx, r.offset);
        }
        // the sole member owns every partition
        assert_eq!(c.assignment().len(), 3);
        // polling again finds nothing new
        assert!(c.poll(100, &IoCtx::new(0)).unwrap().is_empty());
    }

    #[test]
    fn committed_offsets_resume_group_position() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_partitions(1)).unwrap();
        produce_n(&svc, "t", 10);
        let mut c1 = svc.consumer("analytics");
        c1.subscribe("t").unwrap();
        assert_eq!(c1.poll(10, &IoCtx::new(0)).unwrap().len(), 10);
        c1.commit().unwrap();
        // c1 leaves; a new consumer in the same group starts after the
        // commit...
        drop(c1);
        produce_n(&svc, "t", 5);
        let mut c2 = svc.consumer("analytics");
        c2.subscribe("t").unwrap();
        assert_eq!(c2.poll(100, &IoCtx::new(0)).unwrap().len(), 5);
        // ...while a different group reads from the beginning.
        let mut c3 = svc.consumer("audit");
        c3.subscribe("t").unwrap();
        assert_eq!(c3.poll(100, &IoCtx::new(0)).unwrap().len(), 15);
    }

    #[test]
    fn two_members_split_the_topic_without_overlap() {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_partitions(4)).unwrap();
        produce_n(&svc, "t", 40);
        let mut c1 = svc.consumer("g");
        c1.subscribe("t").unwrap();
        let mut c2 = svc.consumer("g");
        c2.subscribe("t").unwrap();
        // Settle the cooperative rebalance, then drain both members.
        let mut seen: BTreeMap<(u32, u64), u32> = BTreeMap::new();
        let mut total = 0;
        for _ in 0..6 {
            for c in [&mut c1, &mut c2] {
                for r in c.poll(100, &IoCtx::new(0)).unwrap() {
                    *seen.entry((r.partition_idx, r.offset)).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        assert_eq!(total, 40, "every record delivered");
        assert!(seen.values().all(|&c| c == 1), "no double delivery");
        assert_eq!(c1.assignment().len(), 2);
        assert_eq!(c2.assignment().len(), 2);
    }

    #[test]
    fn max_records_bounds_a_poll() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_partitions(1)).unwrap();
        produce_n(&svc, "t", 20);
        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        assert_eq!(c.poll(7, &IoCtx::new(0)).unwrap().len(), 7);
        assert_eq!(c.poll(100, &IoCtx::new(0)).unwrap().len(), 13);
    }

    #[test]
    fn double_subscribe_is_idempotent() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_partitions(1)).unwrap();
        produce_n(&svc, "t", 3);
        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        c.subscribe("t").unwrap();
        assert_eq!(c.poll(100, &IoCtx::new(0)).unwrap().len(), 3, "no duplicate delivery");
    }

    #[test]
    fn transactional_records_invisible_until_commit() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_partitions(1)).unwrap();
        let txn = svc.txns().begin();
        let mut p = svc.producer();
        p.set_batch_size(1);
        p.send_in_txn(txn, "t", b"k".to_vec(), b"secret".to_vec(), &IoCtx::new(0)).unwrap();
        let route = svc.dispatcher().route("t", b"k").unwrap();
        svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();

        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        assert!(c.poll(10, &IoCtx::new(0)).unwrap().is_empty(), "open txn must be hidden");
        svc.txns().commit(txn).unwrap();
        let got = c.poll(10, &IoCtx::new(0)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record.value, b"secret");
    }
}
