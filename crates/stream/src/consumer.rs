//! The consumer client API (Fig 7).
//!
//! Consumers subscribe to topics and poll for new records across all of the
//! topic's streams. Positions are tracked per `(topic, stream)`; committing
//! stores them under the consumer group in the dispatcher's KV store, so a
//! restarted consumer in the same group resumes where the group left off.

use crate::object::ReadCtrl;
use crate::record::Record;
use crate::service::StreamService;
use common::ctx::IoCtx;
use common::Result;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One record delivered by [`Consumer::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumedRecord {
    /// Topic the record came from.
    pub topic: String,
    /// Stream index within the topic.
    pub stream_idx: u32,
    /// Offset within the stream.
    pub offset: u64,
    /// The record itself.
    pub record: Record,
}

/// A consumer handle in a consumer group.
#[derive(Debug)]
pub struct Consumer {
    svc: Arc<StreamService>,
    group: String,
    topics: Vec<String>,
    positions: BTreeMap<(String, u32), u64>,
}

impl Consumer {
    pub(crate) fn new(svc: Arc<StreamService>, group: &str) -> Self {
        Consumer { svc, group: group.to_string(), topics: Vec::new(), positions: BTreeMap::new() }
    }

    /// The consumer's group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Subscribe to `topic`, resuming from the group's committed offsets.
    pub fn subscribe(&mut self, topic: &str) -> Result<()> {
        if self.topics.iter().any(|t| t == topic) {
            return Ok(());
        }
        for route in self.svc.dispatcher().topic_routes(topic)? {
            let start = self
                .svc
                .dispatcher()
                .committed_offset(&self.group, topic, route.stream_idx)
                .unwrap_or(0);
            self.positions.insert((topic.to_string(), route.stream_idx), start);
        }
        self.topics.push(topic.to_string());
        Ok(())
    }

    /// Poll for up to `max_records` committed records across subscriptions,
    /// advancing local positions. Records within a stream arrive in order.
    pub fn poll(&mut self, max_records: usize, ctx: &IoCtx) -> Result<Vec<ConsumedRecord>> {
        let mut out = Vec::new();
        for topic in self.topics.clone() {
            if out.len() >= max_records {
                break;
            }
            for route in self.svc.dispatcher().topic_routes(&topic)? {
                if out.len() >= max_records {
                    break;
                }
                let slot = (topic.clone(), route.stream_idx);
                let pos = self.positions.entry(slot.clone()).or_insert(0);
                let ctrl = ReadCtrl {
                    max_records: max_records - out.len(),
                    committed_only: true,
                };
                let (records, _) = self.svc.fetch_from(&route, *pos, ctrl, ctx)?;
                for (offset, record) in records {
                    *pos = (*pos).max(offset + 1);
                    out.push(ConsumedRecord {
                        topic: topic.clone(),
                        stream_idx: route.stream_idx,
                        offset,
                        record,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Commit current positions to the group.
    pub fn commit(&self) {
        for ((topic, stream_idx), &pos) in &self.positions {
            self.svc
                .dispatcher()
                .commit_offset(&self.group, topic, *stream_idx, pos);
        }
    }

    /// The local position of `topic/stream_idx` (next offset to read).
    pub fn position(&self, topic: &str, stream_idx: u32) -> Option<u64> {
        self.positions.get(&(topic.to_string(), stream_idx)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopicConfig;
    use crate::service::tests::test_service;
    use common::ctx::IoCtx;

    fn produce_n(svc: &Arc<StreamService>, topic: &str, n: usize) {
        let mut p = svc.producer();
        p.set_batch_size(1);
        for i in 0..n {
            p.send(topic, format!("key-{i}").into_bytes(), format!("msg-{i}").into_bytes(), &IoCtx::new(0))
                .unwrap();
        }
        for route in svc.dispatcher().topic_routes(topic).unwrap() {
            svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();
        }
    }

    #[test]
    fn poll_receives_everything_in_stream_order() {
        let svc = test_service(2, false);
        svc.create_topic("t", TopicConfig::with_streams(3)).unwrap();
        produce_n(&svc, "t", 30);
        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        let got = c.poll(100, &IoCtx::new(0)).unwrap();
        assert_eq!(got.len(), 30);
        // per-stream offsets strictly increase
        let mut last: BTreeMap<u32, u64> = BTreeMap::new();
        for r in &got {
            if let Some(&prev) = last.get(&r.stream_idx) {
                assert!(r.offset > prev);
            }
            last.insert(r.stream_idx, r.offset);
        }
        // polling again finds nothing new
        assert!(c.poll(100, &IoCtx::new(0)).unwrap().is_empty());
    }

    #[test]
    fn committed_offsets_resume_group_position() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(1)).unwrap();
        produce_n(&svc, "t", 10);
        let mut c1 = svc.consumer("analytics");
        c1.subscribe("t").unwrap();
        assert_eq!(c1.poll(10, &IoCtx::new(0)).unwrap().len(), 10);
        c1.commit();
        // A new consumer in the same group starts after the commit...
        produce_n(&svc, "t", 5);
        let mut c2 = svc.consumer("analytics");
        c2.subscribe("t").unwrap();
        assert_eq!(c2.poll(100, &IoCtx::new(0)).unwrap().len(), 5);
        // ...while a different group reads from the beginning.
        let mut c3 = svc.consumer("audit");
        c3.subscribe("t").unwrap();
        assert_eq!(c3.poll(100, &IoCtx::new(0)).unwrap().len(), 15);
    }

    #[test]
    fn max_records_bounds_a_poll() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(1)).unwrap();
        produce_n(&svc, "t", 20);
        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        assert_eq!(c.poll(7, &IoCtx::new(0)).unwrap().len(), 7);
        assert_eq!(c.poll(100, &IoCtx::new(0)).unwrap().len(), 13);
    }

    #[test]
    fn double_subscribe_is_idempotent() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(1)).unwrap();
        produce_n(&svc, "t", 3);
        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        c.subscribe("t").unwrap();
        assert_eq!(c.poll(100, &IoCtx::new(0)).unwrap().len(), 3, "no duplicate delivery");
    }

    #[test]
    fn transactional_records_invisible_until_commit() {
        let svc = test_service(1, false);
        svc.create_topic("t", TopicConfig::with_streams(1)).unwrap();
        let txn = svc.txns().begin();
        let mut p = svc.producer();
        p.set_batch_size(1);
        p.send_in_txn(txn, "t", b"k".to_vec(), b"secret".to_vec(), &IoCtx::new(0)).unwrap();
        let route = svc.dispatcher().route("t", b"k").unwrap();
        svc.dispatcher().object_of(&route).unwrap().flush_at(&IoCtx::new(0)).unwrap();

        let mut c = svc.consumer("g");
        c.subscribe("t").unwrap();
        assert!(c.poll(10, &IoCtx::new(0)).unwrap().is_empty(), "open txn must be hidden");
        svc.txns().commit(txn).unwrap();
        let got = c.poll(10, &IoCtx::new(0)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record.value, b"secret");
    }
}
