//! Umbrella package of the StreamLake reproduction.
//!
//! This package exists to host the repository-level `examples/` and
//! `tests/` directories; the implementation lives in the workspace member
//! crates — start from [`streamlake`] (the system facade) and follow the
//! crate graph documented in `README.md` and `DESIGN.md`.
//!
//! ```
//! use streamlake::{StreamLake, StreamLakeConfig};
//!
//! let sl = StreamLake::new(StreamLakeConfig::small());
//! assert_eq!(sl.physical_bytes(), 0, "a fresh deployment stores nothing");
//! ```

pub use streamlake;
