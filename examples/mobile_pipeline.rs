//! The China Mobile analytic pipeline (§VII-A), both ways: on the
//! HDFS+Kafka baseline and on StreamLake, at laptop scale.
//!
//! Run with `cargo run --release --example mobile_pipeline`.

use common::ctx::IoCtx;
use baselines::{BaselinePipeline, MiniHdfs, MiniKafka};
use common::size::{human_bytes, MIB};
use common::SimClock;
use simdisk::{MediaKind, StoragePool};
use std::sync::Arc;
use streamlake::{StreamLake, StreamLakeConfig, StreamLakePipeline};
use workloads::packets::PacketGen;

const T0: i64 = 1_656_806_400; // July 3rd, 2022 (the Fig 13 query day)
const PACKETS: usize = 4_000;

fn main() {
    let mut gen = PacketGen::new(42, T0, 1000);
    let packets = gen.batch(PACKETS);
    let url = packets[0].url.clone();
    let logical: u64 = packets.iter().map(|p| p.to_wire().len() as u64).sum();
    println!(
        "workload: {PACKETS} DPI packets, {} logical",
        human_bytes(logical)
    );

    // --- baseline: independent Kafka + HDFS, a full copy per ETL stage --
    let clock = SimClock::new();
    let hdfs_pool = Arc::new(StoragePool::new(
        "hdfs",
        MediaKind::SasHdd,
        6,
        4096 * MIB,
        clock.clone(),
    ));
    let kafka_pool = Arc::new(StoragePool::new(
        "kafka",
        MediaKind::NvmeSsd,
        6,
        4096 * MIB,
        clock,
    ));
    let baseline = BaselinePipeline::new(
        MiniHdfs::new(hdfs_pool, 4 * MIB, 3),
        MiniKafka::new(kafka_pool, 3, MIB),
    );
    let b = baseline
        .run(&packets, &url, T0, T0 + 86_400, 0)
        .expect("baseline pipeline");

    // --- StreamLake: one copy, conversion + in-place commits ------------
    let pipeline = StreamLakePipeline::new(StreamLake::new(StreamLakeConfig::evaluation()));
    let s = pipeline
        .run(&packets, &url, T0, T0 + 86_400, &IoCtx::new(0))
        .expect("streamlake pipeline");

    println!("\n{:<28}{:>16}{:>16}", "", "HDFS+Kafka", "StreamLake");
    println!(
        "{:<28}{:>16}{:>16}",
        "storage (physical)",
        human_bytes(b.total_bytes()),
        human_bytes(s.physical_bytes),
    );
    println!(
        "{:<28}{:>15.2}s{:>15.2}s",
        "batch pipeline time",
        b.batch_time as f64 / 1e9,
        s.batch_time as f64 / 1e9,
    );
    println!(
        "{:<28}{:>16.0}{:>16.0}",
        "stream msgs/s", b.stream_msgs_per_sec, s.stream_msgs_per_sec,
    );
    println!(
        "{:<28}{:>16}{:>16}",
        "DAU provinces", b.query_rows, s.query_rows,
    );
    println!(
        "\nstorage ratio (baseline / streamlake): {:.2}x",
        b.total_bytes() as f64 / s.physical_bytes as f64
    );
    assert_eq!(b.query_rows, s.query_rows, "both pipelines must agree");
}
