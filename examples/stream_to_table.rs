//! Stream ⇄ table conversion (§V-B): produce log messages, convert them to
//! a lakehouse table with one background task, query with pushdown, time
//! travel to an earlier snapshot, and play rows back into a stream.
//!
//! Run with `cargo run --example stream_to_table`.

use common::ctx::IoCtx;
use format::{CmpOp, Expr, Predicate, Value};
use lake::conversion::{table_to_stream, ConversionTask};
use lake::ScanOptions;
use stream::config::ConvertToTable;
use stream::object::ReadCtrl;
use stream::record::Record;
use streamlake::{Query, QueryEngine, StreamLake, StreamLakeConfig};
use workloads::packets::{Packet, PacketGen};

const T0: i64 = 1_656_806_400;

fn main() {
    let sl = StreamLake::new(StreamLakeConfig::small());

    // Topic with the Fig 8 conversion configuration (scaled down).
    let mut cfg = stream::TopicConfig::with_streams(2);
    cfg.convert_2_table = ConvertToTable {
        table_schema: vec!["url:utf8".into(), "start_time:int64".into()],
        table_path: "/tables/tb_dpi_log_hours".into(),
        split_offset: 500,
        split_time: 36_000,
        delete_msg: false,
        enabled: true,
    };
    sl.stream().create_topic("dpi", cfg.clone()).expect("topic");
    sl.tables()
        .create_table(
            "tb_dpi_log_hours",
            PacketGen::schema(),
            Some(lake::catalog::PartitionSpec::hourly("start_time")),
            10_000,
            &IoCtx::new(0),
        )
        .expect("table");

    // Produce 1200 packets.
    let mut gen = PacketGen::new(7, T0, 500);
    let packets = gen.batch(1200);
    let mut producer = sl.producer();
    for p in &packets {
        producer.send("dpi", p.key(), p.to_wire(), &IoCtx::new(0)).expect("send");
    }
    producer.flush(&IoCtx::new(0)).expect("flush");

    // Run the conversion task over every stream of the topic.
    let mut converted = 0;
    for route in sl.stream().dispatcher().topic_partitions("dpi").expect("routes") {
        let object = sl.stream().dispatcher().object_of(&route).expect("object");
        let mut task = ConversionTask::new(
            object,
            "tb_dpi_log_hours",
            cfg.convert_2_table.clone(),
            Box::new(|r: &Record| Ok(Packet::from_wire(&r.value)?.to_row())),
        );
        if let Some(report) = task.run(sl.tables(), &IoCtx::new(0), true).expect("convert") {
            converted += report.records_converted;
        }
    }
    println!("converted {converted} stream records into table rows");

    // The DAU query of Fig 13, pushed down to storage.
    let q = Query::dau("tb_dpi_log_hours", &packets[0].url, T0, T0 + 86_400);
    let out = QueryEngine::new()
        .execute(sl.tables(), &q, &IoCtx::new(0))
        .expect("query");
    println!("DAU for {}:", packets[0].url);
    for (province, count) in &out.groups {
        println!("  {province:<12} {count}");
    }
    println!(
        "scan: {} files read, {} skipped by statistics",
        out.scan.files_scanned, out.scan.files_skipped
    );

    // Time travel: the table as of "before any data" does not exist, but
    // after the first commit every snapshot stays addressable.
    let snap = sl.tables().current_snapshot("tb_dpi_log_hours").expect("snapshot");
    println!("current snapshot id: {snap}");

    // Reverse conversion: play beijing's rows back into a fresh stream.
    let playback = sl
        .stream()
        .objects()
        .create(stream::object::CreateOptions::default())
        .expect("playback object");
    let n = table_to_stream(
        sl.tables(),
        "tb_dpi_log_hours",
        &ScanOptions::filtered(Expr::Pred(Predicate::cmp(
            "province",
            CmpOp::Eq,
            "beijing",
        ))),
        &playback,
        &|row: &Vec<Value>| {
            Record::new(
                row[0].as_str().unwrap().as_bytes().to_vec(),
                format!("{}|{}", row[0], row[1]).into_bytes(),
                row[1].as_int().unwrap(),
            )
        },
        &IoCtx::new(0),
    )
    .expect("playback");
    let (replayed, _) = playback
        .read_at(0, ReadCtrl::default(), &IoCtx::new(0))
        .expect("read playback");
    println!("played {n} beijing rows back as a stream ({} readable)", replayed.len());
    assert_eq!(n as usize, replayed.len());
}
