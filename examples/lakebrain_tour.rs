//! A tour of LakeBrain (§VI): train the RL compaction agent and compare it
//! with the static 30-second policy, then build a predicate-aware QD-tree
//! partitioning with the SPN cardinality estimator.
//!
//! Run with `cargo run --release --example lakebrain_tour`.

use lakebrain::cardinality::{CardinalityEstimator, ExactEstimator};
use lakebrain::compaction::{evaluate_policy, train_compaction_agent, DqnPolicy, IntervalPolicy};
use lakebrain::env::EnvConfig;
use lakebrain::partitioning::{bucket_assigner, evaluate_layout, full_assigner, qdtree_assigner};
use lakebrain::qdtree::{QdTree, QdTreeConfig};
use lakebrain::spn::Spn;
use workloads::queries::QueryGen;
use workloads::tpch::LineitemGen;

fn main() {
    // --- automatic compaction ------------------------------------------
    println!("== automatic compaction (RL vs 30s static) ==");
    let cfg = EnvConfig { partitions: 6, ..Default::default() };
    let agent = train_compaction_agent(cfg, 16, 120, 42);
    let mut dqn = DqnPolicy::new(agent);
    let mut interval = IntervalPolicy::every_30s();
    for (name, policy) in [
        ("lakebrain-dqn", &mut dqn as &mut dyn lakebrain::compaction::CompactionPolicy),
        ("interval-30s", &mut interval),
    ] {
        let (cost, util, conflicts) = evaluate_policy(policy, cfg, 200, 7);
        println!("  {name:<14} query-cost={cost:>7.1}  utilization={util:.3}  conflicts={conflicts}");
    }

    // --- predicate-aware partitioning -----------------------------------
    println!("\n== predicate-aware partitioning (lineitem) ==");
    let schema = LineitemGen::schema();
    let mut gen = LineitemGen::new(1);
    let rows = gen.generate_rows(6000);

    // Train the SPN on a 3% sample, as in §VII-E.
    let sample: Vec<_> = rows.iter().step_by(33).cloned().collect();
    let spn = Spn::learn(schema.clone(), &sample).with_total_rows(rows.len() as f64);

    let mut qg = QueryGen::new(2, schema.clone(), &rows);
    let mut workload: Vec<format::Expr> =
        (0..10).map(|_| qg.range_query("l_shipdate", 90)).collect();
    workload.extend(qg.workload(20, 2));

    // Show the estimator quality on one query.
    let exact = ExactEstimator::new(&schema, &rows);
    let q = &workload[0];
    println!(
        "  cardinality of workload[0]: exact={:.0} spn={:.0}",
        exact.estimate_rows(q),
        spn.estimate_rows(q)
    );

    let tree = QdTree::build(
        schema.clone(),
        &workload,
        &spn,
        QdTreeConfig { min_leaf_rows: 100.0, max_depth: 10 },
    );
    println!("  qd-tree built with {} leaf partitions", tree.leaf_count());

    let day = bucket_assigner(&schema, "l_shipdate", 30).expect("bucket");
    let qd = qdtree_assigner(&tree);
    for (name, assigner) in [
        ("full (no partition)", &full_assigner() as &Box<lakebrain::partitioning::Assigner>),
        ("day of l_shipdate", &day),
        ("ours (qd-tree)", &qd),
    ] {
        let report = evaluate_layout(&schema, &rows, assigner, &workload, 1024).expect("layout");
        println!(
            "  {name:<20} partitions={:<4} bytes skipped: {:>5.1}%",
            report.partitions,
            report.skip_fraction() * 100.0
        );
    }
}
