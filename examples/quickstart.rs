//! Quickstart: bring up a StreamLake deployment, stream some messages,
//! land rows in a lakehouse table, and read both back.
//!
//! Run with `cargo run --example quickstart`.

use common::ctx::IoCtx;
use format::{DataType, Field, Schema, Value};
use lake::ScanOptions;
use streamlake::{StreamLake, StreamLakeConfig};

fn main() {
    // A laptop-scale deployment: SSD + HDD pools, erasure-coded PLogs,
    // three stream workers — all simulated, all deterministic.
    let sl = StreamLake::new(StreamLakeConfig::small());

    // --- message streaming (the Fig 7 API shape) -----------------------
    sl.stream()
        .create_topic("topic_streamlake_test", stream::TopicConfig::with_streams(3))
        .expect("create topic");

    let mut producer = sl.producer();
    producer.set_batch_size(1);
    producer
        .send("topic_streamlake_test", "greeting", "Hello world", &IoCtx::new(0))
        .expect("send");

    let mut consumer = sl.consumer("quickstart-group");
    consumer.subscribe("topic_streamlake_test").expect("subscribe");
    for record in consumer.poll(10, &IoCtx::new(0)).expect("poll") {
        println!(
            "consumed from partition {} offset {}: {}",
            record.partition_idx,
            record.offset,
            String::from_utf8_lossy(&record.record.value)
        );
    }

    // --- lakehouse tables ----------------------------------------------
    let schema = Schema::new(vec![
        Field::new("name", DataType::Utf8),
        Field::new("visits", DataType::Int64),
    ])
    .expect("schema");
    sl.tables()
        .create_table("greetings", schema, None, 1000, &IoCtx::new(0))
        .expect("create table");
    sl.tables()
        .insert(
            "greetings",
            &[
                vec![Value::from("hello"), Value::Int(1)],
                vec![Value::from("world"), Value::Int(2)],
            ],
            &IoCtx::new(0),
        )
        .expect("insert");

    let result = sl
        .tables()
        .select("greetings", &ScanOptions::default(), &IoCtx::new(0))
        .expect("select");
    for row in &result.rows {
        println!("table row: {} -> {}", row[0], row[1]);
    }

    println!(
        "physical bytes stored (with redundancy): {}",
        common::size::human_bytes(sl.physical_bytes())
    );
}
